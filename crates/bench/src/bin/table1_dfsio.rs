//! Table 1 / Section 6.6 — TestDFSIO: HDFS bandwidth vs raw disk bandwidth.
//!
//! Really executes the TestDFSIO write and read jobs against simulated
//! instances of both clusters (verifying data integrity and read locality),
//! then reports modeled throughput. The paper's point: HDFS delivers only a
//! fraction of the hardware's sequential bandwidth — the 67 MB/s per node
//! Clydesdale's scans observe, against 560 MB/s raw on cluster A.

use clyde_bench::report::render_table;
use clyde_dfs::testdfsio;

fn main() {
    let file_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    eprintln!("running TestDFSIO write+read jobs ({file_mb} MB files) on both cluster models...");
    let reports = testdfsio::paper_table1(file_mb << 20).expect("TestDFSIO failed");

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.cluster.clone(),
                format!("{}", r.files),
                format!("{:.0}", r.raw_disk_mb_per_node),
                format!("{:.0}", r.read_mb_per_node),
                format!("{:.0}", r.write_mb_per_node),
                format!("{:.0}", r.aggregate_read_mb),
                format!("{:.0}", r.aggregate_write_mb),
                format!("{:.2}", r.read_locality),
            ]
        })
        .collect();
    println!("\nTable 1: TestDFSIO (MB/s)\n");
    println!(
        "{}",
        render_table(
            &[
                "cluster",
                "files",
                "raw-disk/node",
                "hdfs-read/node",
                "hdfs-write/node",
                "aggregate-read",
                "aggregate-write",
                "read-locality",
            ],
            &rows,
        )
    );
    println!("paper (Section 6.6): raw ~70 MB/s per disk (560 MB/s per node on A, 280 MB/s on B);");
    println!(
        "HDFS delivered only a fraction of that — Clydesdale's scans observed ~67 MB/s per node."
    );
}
