//! A Hive-like baseline engine (paper Sections 6.1 and 6.3).
//!
//! This is the comparator system of the paper's evaluation: SQL-ish star
//! queries executed the way Hive 0.x executed them, deliberately keeping
//! every inefficiency the paper measures:
//!
//! * tables stored in **RCFile** (PAX) — the configuration of Section 6.2;
//! * joins performed **one dimension at a time**, each as its own MapReduce
//!   job whose intermediate result is written to the DFS and read back by
//!   the next stage (Q2.1's three join stages read ~200 GB each);
//! * two join plans, selectable per query:
//!   [`JoinStrategy::Repartition`] — the sort-merge "common join" that
//!   shuffles both sides over the network — and [`JoinStrategy::MapJoin`] —
//!   the broadcast hash join of Figure 6, whose hash table is built on the
//!   master, disseminated through the distributed cache, and **reloaded and
//!   re-deserialized by every map task** (4,887 times in Q2.1's first
//!   stage), with one copy per map slot in memory — the cause of the
//!   cluster-A out-of-memory failures on Q3.1/Q4.1/Q4.2/Q4.3;
//! * a separate group-by MapReduce job and a final order-by job.

pub mod engine;
pub mod mapjoin;
pub mod repartition;
pub mod stages;
pub mod union;

pub use engine::{Hive, HiveResult, JoinStrategy};
