//! The analyzer's foundation is the lexer's totality: every rule above it
//! (masking, AST, call graph, lock graph) assumes `lex` never drops a byte
//! and never fails. Assert that two ways:
//!
//! 1. Exhaustively over the real workspace — every `.rs` file the scanner
//!    visits must round-trip (`concat(token texts) == input`) and re-lex to
//!    the identical stream, and `parse` must be total over it.
//! 2. Property-tested over adversarial fragments the workspace may not
//!    contain today: unterminated strings, stray quotes, raw strings,
//!    lifetimes vs. char literals, nested block comments.

use clyde_lint::lexer::{lex, Tok};
use clyde_lint::parse::parse;
use proptest::prelude::*;
use std::path::Path;

fn rendered(toks: &[Tok]) -> String {
    toks.iter().map(|t| t.text.as_str()).collect()
}

/// Round-trip + stable re-lex + total parse for one source string.
fn assert_total(src: &str, label: &str) {
    let toks = lex(src);
    let out = rendered(&toks);
    assert_eq!(out, src, "lexer dropped or altered bytes in {label}");
    let again = lex(&out);
    assert_eq!(
        toks.len(),
        again.len(),
        "re-lex changed the token count in {label}"
    );
    for (a, b) in toks.iter().zip(&again) {
        assert_eq!(a.kind, b.kind, "re-lex changed a kind in {label}");
        assert_eq!(a.text, b.text, "re-lex changed a text in {label}");
    }
    // The parser must accept whatever the lexer produced.
    let ast = parse(&toks);
    assert!(ast.sig.len() <= toks.len());
}

#[test]
fn every_workspace_file_roundtrips() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = clyde_lint::collect_files(&root).expect("walk workspace");
    assert!(
        files.len() > 40,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    for f in files {
        let src = std::fs::read_to_string(&f).expect("read source");
        assert_total(&src, &f.display().to_string());
    }
}

#[test]
fn fixtures_roundtrip_too() {
    // Fixture files are excluded from workspace scans but are exactly the
    // adversarial inputs the self-test feeds the lexer.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut n = 0;
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).expect("read fixture");
            assert_total(&src, &path.display().to_string());
            n += 1;
        }
    }
    assert!(n >= 6, "expected the per-rule fixtures, saw {n}");
}

proptest! {
    #[test]
    fn arbitrary_fragments_roundtrip(s in "[a-zA-Z0-9_ \\n\\t{}()\\[\\];:,.<>=+*/&|!'\"#-]{0,80}") {
        let toks = lex(&s);
        prop_assert_eq!(rendered(&toks), s);
    }

    #[test]
    fn stitched_rust_shapes_roundtrip(
        name in "[a-z_]{1,9}",
        lit in "[0-9]{1,6}",
        tail in "[\"'/*! \\n]{0,6}",
    ) {
        // Plausible-Rust prefix with an adversarial tail: the tail can open
        // a string, char, or comment that never closes — the lexer must
        // still account for every byte.
        let src = format!(
            "fn {name}() -> u32 {{\n    let x = {lit}; // c\n    x\n}}\n{tail}"
        );
        let toks = lex(&src);
        prop_assert_eq!(rendered(&toks), src.clone());
        let _ = parse(&toks);
    }
}
