//! The probe phase: fact rows against the dimension hash tables.
//!
//! Three implementations of the same logic:
//!
//! * [`probe_block_vec`] — the default vectorized kernel: fact predicates
//!   are evaluated over whole column slices into a reusable *selection
//!   vector*, each dimension table is probed batch-at-a-time over the
//!   surviving indices, and groups are aggregated under packed `u64` keys
//!   of dense per-join aux ids (see [`GroupLayout`]). Group `Row`s are
//!   rematerialized once per task at emit time, not once per fact row;
//! * [`probe_block`] — scalar B-CIF block iteration (Section 5.3): a
//!   row-at-a-time loop over typed column slices;
//! * [`probe_row`] — row-at-a-time over materialized rows, used when the
//!   block-iteration feature is ablated.
//!
//! All use **early-out** (Section 4.2): the first failed dimension probe
//! abandons the row — in the vectorized kernel the selection vector simply
//! shrinks after each join, so later joins probe fewer keys. All three
//! paths produce byte-identical results and identical [`ProbeStats`].
//! Aggregation happens *inside the task* into a group map (the combiner
//! pattern of Figure 4), so a map task emits one record per group, not per
//! fact row.

use crate::hashtable::DimTables;
use clyde_common::{ClydeError, FxHashMap, Result, Row, RowBlock, Schema};
use clyde_ssb::queries::{Aggregate, CompiledFactPred, StarQuery};

/// Index-resolved probe plan against a scan schema (the projected fact
/// columns actually read).
#[derive(Debug, Clone)]
pub struct ProbePlan {
    pub fact_preds: Vec<CompiledFactPred>,
    /// Scan-schema column index of each join's foreign key.
    pub fks: Vec<usize>,
    /// Scan-schema indices of the measure columns (`None` for count(*)).
    pub agg_a: Option<usize>,
    pub agg_b: Option<usize>,
    pub aggregate: Aggregate,
    /// For each group-by column: (join index, aux index within that join).
    pub group_src: Vec<(usize, usize)>,
}

impl ProbePlan {
    /// Compile a star query against the schema of the scanned columns.
    pub fn compile(query: &StarQuery, scan_schema: &Schema) -> Result<ProbePlan> {
        let fact_preds = query
            .fact_preds
            .iter()
            .map(|p| p.compile(scan_schema))
            .collect::<Result<_>>()?;
        let fks = query
            .joins
            .iter()
            .map(|j| scan_schema.index_of(&j.fk))
            .collect::<Result<_>>()?;
        let agg_cols = query.aggregate.columns();
        let agg_a = agg_cols
            .first()
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let agg_b = agg_cols
            .get(1)
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let group_src = query
            .group_by
            .iter()
            .map(|g| query.group_col_source(g))
            .collect::<Result<_>>()?;
        Ok(ProbePlan {
            fact_preds,
            fks,
            agg_a,
            agg_b,
            aggregate: query.aggregate.clone(),
            group_src,
        })
    }
}

/// Counters produced by the probe phase, feeding the cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Rows iterated.
    pub rows: u64,
    /// Individual hash-table probe operations performed (early-out makes
    /// this less than rows × joins).
    pub probes: u64,
    /// Rows surviving all predicates and probes.
    pub survivors: u64,
}

impl ProbeStats {
    pub fn add(&mut self, other: &ProbeStats) {
        self.rows += other.rows;
        self.probes += other.probes;
        self.survivors += other.survivors;
    }
}

const MAX_JOINS: usize = 8;

/// Probe one column block, accumulating partial sums per group into `acc`.
pub fn probe_block(
    block: &RowBlock,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    if plan.fks.len() > MAX_JOINS {
        return Err(ClydeError::Plan("too many dimension joins".into()));
    }
    // Typed views of the needed columns. Fact predicates, FKs and measures
    // are all i32 in SSB; non-i32 scan columns are never touched here.
    let i32_slices: Vec<Option<&[i32]>> = block
        .columns()
        .iter()
        .map(|c| match c {
            clyde_common::ColumnData::I32(v) => Some(v.as_slice()),
            _ => None,
        })
        .collect();
    let slice = |idx: usize| -> Result<&[i32]> {
        i32_slices[idx].ok_or_else(|| {
            ClydeError::Plan(format!(
                "scan column {idx} is not i32 but the probe needs it"
            ))
        })
    };
    let fk_slices: Vec<&[i32]> = plan.fks.iter().map(|&i| slice(i)).collect::<Result<_>>()?;
    let pred_slices: Vec<&[i32]> = plan
        .fact_preds
        .iter()
        .map(|p| slice(p.col()))
        .collect::<Result<_>>()?;
    let agg_a = plan.agg_a.map(slice).transpose()?;
    let agg_b = plan.agg_b.map(slice).transpose()?;

    let n = block.len();
    stats.rows += n as u64;
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    'rows: for i in 0..n {
        for (p, s) in plan.fact_preds.iter().zip(&pred_slices) {
            let ok = match *p {
                CompiledFactPred::Between { lo, hi, .. } => {
                    let v = s[i];
                    v >= lo && v <= hi
                }
                CompiledFactPred::Lt { value, .. } => s[i] < value,
            };
            if !ok {
                continue 'rows;
            }
        }
        for (j, fk_col) in fk_slices.iter().enumerate() {
            stats.probes += 1;
            match tables.tables[j].get(i64::from(fk_col[i])) {
                Some(aux) => matched[j] = Some(aux),
                None => continue 'rows, // early-out
            }
        }
        stats.survivors += 1;
        let key: Row = plan
            .group_src
            .iter()
            .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
            .collect();
        let measure = plan.aggregate.eval_i64(agg_a, agg_b, i);
        let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
        *slot = plan.aggregate.fold(*slot, measure);
    }
    Ok(())
}

/// One group-contributing join inside a [`GroupLayout`]: its dense aux ids
/// occupy `bits` bits of the packed key starting at `shift`.
#[derive(Debug, Clone, Copy)]
struct JoinPack {
    ji: usize,
    shift: u32,
    mask: u64,
}

/// Packed `u64` group-key layout for the vectorized kernel.
///
/// Each group-contributing join gets a bit field wide enough for that
/// dimension table's dense id space ([`crate::hashtable::DimHashTable::num_ids`]); the packed key
/// is the concatenation of the per-join ids. The aux `Row`s behind the ids
/// are only materialized by [`GroupLayout::rematerialize`] at emit time.
#[derive(Debug, Clone)]
pub struct GroupLayout {
    /// Distinct group-contributing joins, in first-appearance order.
    packs: Vec<JoinPack>,
    /// For each `group_src` entry: (index into `packs`, aux column index).
    src: Vec<(usize, usize)>,
    /// Per join index: the shift to OR its id at, if it contributes.
    shift_of: Vec<Option<u32>>,
    total_bits: u32,
}

/// Dense aggregation is used when the whole packed key space fits in this
/// many bits (64 Ki slots, ~512 KiB of `i64`).
const DENSE_BITS: u32 = 16;

impl GroupLayout {
    /// Compute the layout for a plan against built tables. Returns `None`
    /// when the packed key would not fit in 63 bits — the caller falls back
    /// to the scalar kernel with materialized `Row` keys.
    pub fn new(plan: &ProbePlan, tables: &DimTables) -> Option<GroupLayout> {
        let mut packs: Vec<JoinPack> = Vec::new();
        let mut src = Vec::with_capacity(plan.group_src.len());
        let mut shift = 0u32;
        for &(ji, ai) in &plan.group_src {
            let pi = match packs.iter().position(|p| p.ji == ji) {
                Some(pi) => pi,
                None => {
                    let n = tables.tables[ji].num_ids();
                    let bits = if n <= 1 {
                        0
                    } else {
                        64 - ((n - 1) as u64).leading_zeros()
                    };
                    packs.push(JoinPack {
                        ji,
                        shift,
                        mask: if bits == 0 { 0 } else { (1u64 << bits) - 1 },
                    });
                    shift += bits;
                    if shift > 63 {
                        return None;
                    }
                    packs.len() - 1
                }
            };
            src.push((pi, ai));
        }
        let njoins = tables.tables.len();
        let mut shift_of = vec![None; njoins];
        for p in &packs {
            shift_of[p.ji] = Some(p.shift);
        }
        Some(GroupLayout {
            packs,
            src,
            shift_of,
            total_bits: shift,
        })
    }

    /// Whether the packed key space is small enough for a dense array.
    pub fn dense_slots(&self) -> Option<usize> {
        (self.total_bits <= DENSE_BITS).then(|| 1usize << self.total_bits)
    }

    /// Expand a packed key back into the group-by `Row` (emit time).
    pub fn rematerialize(&self, key: u64, tables: &DimTables) -> Row {
        self.src
            .iter()
            .map(|&(pi, ai)| {
                let p = self.packs[pi];
                let id = ((key >> p.shift) & p.mask) as u32;
                tables.tables[p.ji].aux(id).at(ai).clone()
            })
            .collect()
    }
}

/// Per-thread group accumulator for the vectorized kernel: a dense array
/// when the packed key space is small (e.g. flight 1 has no group-by at
/// all), a hash map on `u64` keys otherwise. Either way the keys stay
/// packed ids — no `Row` allocation on the hot path.
#[derive(Debug)]
pub enum GroupAcc {
    Dense { slots: Vec<i64>, hit: Vec<bool> },
    Sparse(FxHashMap<u64, i64>),
}

impl GroupAcc {
    pub fn new(layout: &GroupLayout, aggregate: &Aggregate) -> GroupAcc {
        match layout.dense_slots() {
            Some(n) => GroupAcc::Dense {
                slots: vec![aggregate.identity(); n],
                hit: vec![false; n],
            },
            None => GroupAcc::Sparse(FxHashMap::default()),
        }
    }

    #[inline]
    fn fold(&mut self, key: u64, measure: i64, aggregate: &Aggregate) {
        match self {
            GroupAcc::Dense { slots, hit } => {
                let k = key as usize;
                slots[k] = aggregate.fold(slots[k], measure);
                hit[k] = true;
            }
            GroupAcc::Sparse(map) => {
                let slot = map.entry(key).or_insert_with(|| aggregate.identity());
                *slot = aggregate.fold(*slot, measure);
            }
        }
    }

    /// Fold another accumulator (same layout) into this one.
    pub fn merge(&mut self, other: GroupAcc, aggregate: &Aggregate) {
        for (key, v) in other.entries() {
            self.fold(key, v, aggregate);
        }
    }

    /// The populated (packed key, partial aggregate) pairs.
    pub fn entries(&self) -> Vec<(u64, i64)> {
        match self {
            GroupAcc::Dense { slots, hit } => slots
                .iter()
                .zip(hit)
                .enumerate()
                .filter(|(_, (_, &h))| h)
                .map(|(k, (&v, _))| (k as u64, v))
                .collect(),
            GroupAcc::Sparse(map) => map.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }
}

/// Reusable scratch for [`probe_block_vec`]: the selection vector and the
/// packed group keys of the rows it selects. One per probe thread, reused
/// across blocks so the hot loop never allocates.
#[derive(Debug, Default)]
pub struct SelBuf {
    sel: Vec<u32>,
    keys: Vec<u64>,
}

#[inline]
fn pred_ok(p: &CompiledFactPred, v: i32) -> bool {
    match *p {
        CompiledFactPred::Between { lo, hi, .. } => v >= lo && v <= hi,
        CompiledFactPred::Lt { value, .. } => v < value,
    }
}

/// Vectorized probe of one column block (the default kernel).
///
/// Same semantics and identical [`ProbeStats`] as [`probe_block`]: each
/// fact predicate and each join shrinks the selection vector, and a join
/// only probes indices that survived every earlier stage — early-out as
/// vector compaction. Aggregates land in `acc` under packed group-id keys;
/// use [`GroupLayout::rematerialize`] to recover the group `Row`s.
pub fn probe_block_vec(
    block: &RowBlock,
    plan: &ProbePlan,
    tables: &DimTables,
    layout: &GroupLayout,
    acc: &mut GroupAcc,
    buf: &mut SelBuf,
    stats: &mut ProbeStats,
) -> Result<()> {
    if plan.fks.len() > MAX_JOINS {
        return Err(ClydeError::Plan("too many dimension joins".into()));
    }
    let i32_slices: Vec<Option<&[i32]>> = block
        .columns()
        .iter()
        .map(|c| match c {
            clyde_common::ColumnData::I32(v) => Some(v.as_slice()),
            _ => None,
        })
        .collect();
    let slice = |idx: usize| -> Result<&[i32]> {
        i32_slices[idx].ok_or_else(|| {
            ClydeError::Plan(format!(
                "scan column {idx} is not i32 but the probe needs it"
            ))
        })
    };
    let fk_slices: Vec<&[i32]> = plan.fks.iter().map(|&i| slice(i)).collect::<Result<_>>()?;
    let pred_slices: Vec<&[i32]> = plan
        .fact_preds
        .iter()
        .map(|p| slice(p.col()))
        .collect::<Result<_>>()?;
    let agg_a = plan.agg_a.map(slice).transpose()?;
    let agg_b = plan.agg_b.map(slice).transpose()?;

    let n = block.len();
    stats.rows += n as u64;
    let SelBuf { sel, keys } = buf;

    // Predicate stage: build the selection vector. The first predicate
    // filters the full index range directly; later ones compact in place.
    sel.clear();
    match (plan.fact_preds.first(), pred_slices.first()) {
        (Some(p), Some(s)) => {
            for (i, &v) in s.iter().enumerate().take(n) {
                if pred_ok(p, v) {
                    sel.push(i as u32);
                }
            }
        }
        _ => sel.extend(0..n as u32),
    }
    for (p, s) in plan.fact_preds.iter().zip(&pred_slices).skip(1) {
        let mut w = 0;
        for r in 0..sel.len() {
            let i = sel[r];
            if pred_ok(p, s[i as usize]) {
                sel[w] = i;
                w += 1;
            }
        }
        sel.truncate(w);
    }

    // Join stage: probe each dimension over the surviving indices, packing
    // group-contributing ids into `keys` as the vector compacts.
    keys.clear();
    keys.resize(sel.len(), 0);
    for (j, fk_col) in fk_slices.iter().enumerate() {
        stats.probes += sel.len() as u64;
        let table = &tables.tables[j];
        let shift = layout.shift_of[j];
        let mut w = 0;
        for r in 0..sel.len() {
            let i = sel[r];
            if let Some(id) = table.get_id(i64::from(fk_col[i as usize])) {
                sel[w] = i;
                keys[w] = keys[r]
                    | match shift {
                        Some(sh) => u64::from(id) << sh,
                        None => 0,
                    };
                w += 1;
            }
        }
        sel.truncate(w);
        keys.truncate(w);
    }
    stats.survivors += sel.len() as u64;

    // Aggregate stage: fold each survivor's measure into its packed group.
    for (r, &i) in sel.iter().enumerate() {
        let measure = plan.aggregate.eval_i64(agg_a, agg_b, i as usize);
        acc.fold(keys[r], measure, &plan.aggregate);
    }
    Ok(())
}

/// Row-at-a-time probe (block iteration ablated): same semantics as
/// [`probe_block`] over a materialized row of the scan schema.
pub fn probe_row(
    row: &Row,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    stats.rows += 1;
    let geti = |idx: usize| -> Result<i64> {
        row.at(idx)
            .as_i64()
            .ok_or_else(|| ClydeError::Plan(format!("scan column {idx} is not an integer")))
    };
    for p in &plan.fact_preds {
        let ok = match *p {
            CompiledFactPred::Between { col, lo, hi } => {
                let v = geti(col)?;
                v >= i64::from(lo) && v <= i64::from(hi)
            }
            CompiledFactPred::Lt { col, value } => geti(col)? < i64::from(value),
        };
        if !ok {
            return Ok(());
        }
    }
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    for (j, &fk_idx) in plan.fks.iter().enumerate() {
        stats.probes += 1;
        match tables.tables[j].get(geti(fk_idx)?) {
            Some(aux) => matched[j] = Some(aux),
            None => return Ok(()),
        }
    }
    stats.survivors += 1;
    let key: Row = plan
        .group_src
        .iter()
        .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
        .collect();
    let measure = match (&plan.aggregate, plan.agg_a, plan.agg_b) {
        (Aggregate::SumColumn(_), Some(a), _)
        | (Aggregate::MinColumn(_), Some(a), _)
        | (Aggregate::MaxColumn(_), Some(a), _) => geti(a)?,
        (Aggregate::SumProduct(_, _), Some(a), Some(b)) => geti(a)? * geti(b)?,
        (Aggregate::SumDiff(_, _), Some(a), Some(b)) => geti(a)? - geti(b)?,
        (Aggregate::CountStar, _, _) => 1,
        _ => return Err(ClydeError::Plan("aggregate missing measure column".into())),
    };
    let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
    *slot = plan.aggregate.fold(*slot, measure);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::RowBlockBuilder;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::query_by_id;
    use clyde_ssb::schema;

    /// Shared fixture: SF 0.005 data, Q2.1 plan+tables.
    fn fixture() -> (
        clyde_ssb::SsbData,
        StarQuery,
        Schema,
        Vec<usize>,
        ProbePlan,
        DimTables,
    ) {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let scan_cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&scan_cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        (data, q, scan_schema, scan_cols, plan, tables)
    }

    fn block_of(data: &clyde_ssb::SsbData, scan_schema: &Schema, cols: &[usize]) -> RowBlock {
        let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
        let mut b = RowBlockBuilder::new(&dtypes);
        for lo in &data.lineorder {
            b.push_row(&lo.project(cols)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn block_probe_matches_reference() {
        let (data, q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();

        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(rows, expect);
        assert_eq!(stats.rows, data.lineorder.len() as u64);
        assert!(stats.survivors > 0);
    }

    #[test]
    fn row_probe_matches_block_probe() {
        let (data, _q, _scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &_scan_schema, &cols);
        let mut acc_block = FxHashMap::default();
        let mut st1 = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc_block, &mut st1).unwrap();

        let mut acc_row = FxHashMap::default();
        let mut st2 = ProbeStats::default();
        for lo in &data.lineorder {
            probe_row(&lo.project(&cols), &plan, &tables, &mut acc_row, &mut st2).unwrap();
        }
        assert_eq!(acc_block, acc_row);
        assert_eq!(st1, st2, "both paths must count identically");
    }

    #[test]
    fn early_out_reduces_probe_count() {
        // Build a variant of Q2.1 that probes the selective part join first
        // (Clydesdale is free to choose probe order; this tests early-out).
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        q.joins.rotate_left(1); // part, supplier, date
        assert_eq!(q.joins[0].dimension, "part");
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        // Part's category filter (≈ 1/25) gates the remaining probes, so
        // total probes stay far below rows × 3 joins.
        assert!(
            stats.probes < stats.rows * 2,
            "early-out broken: {} probes for {} rows",
            stats.probes,
            stats.rows
        );
        // But at least one probe per row happened.
        assert!(stats.probes >= stats.rows);
        // Early-out never changes results: reordered joins give the same
        // answer as the reference.
        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &query_by_id("Q2.1").unwrap()).unwrap();
        // Group-by order differs only if aux sources moved; Q2.1 groups by
        // (d_year, p_brand1) regardless of join order.
        assert_eq!(rows, expect);
    }

    #[test]
    fn fact_predicates_gate_probing() {
        // Q1.1 has fact predicates; rows failing them must not probe at all.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q1.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        assert!(stats.probes < stats.rows / 2, "predicates must gate probes");
        // Single group (no group-by).
        assert_eq!(acc.len(), 1);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(
            // clyde-lint: allow(unordered, reason=asserted single-entry map, no order to observe)
            acc.values().next().copied().unwrap(),
            expect[0].at(0).as_i64().unwrap()
        );
    }

    /// Run the vectorized kernel and rematerialize its packed groups.
    fn vec_probe(
        block: &RowBlock,
        plan: &ProbePlan,
        tables: &DimTables,
    ) -> (FxHashMap<Row, i64>, ProbeStats) {
        let layout = GroupLayout::new(plan, tables).expect("key fits");
        let mut acc = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut stats = ProbeStats::default();
        probe_block_vec(block, plan, tables, &layout, &mut acc, &mut buf, &mut stats).unwrap();
        // Distinct dimension rows can share aux values (e.g. 365 dates per
        // d_year), so distinct packed keys may rematerialize to the same
        // group row — emit-time merging must fold, not overwrite.
        let mut rows: FxHashMap<Row, i64> = FxHashMap::default();
        for (k, v) in acc.entries() {
            let key = layout.rematerialize(k, tables);
            let slot = rows.entry(key).or_insert_with(|| plan.aggregate.identity());
            *slot = plan.aggregate.fold(*slot, v);
        }
        (rows, stats)
    }

    #[test]
    fn vectorized_matches_scalar_exactly() {
        let (data, _q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar, "kernels must count identically");
    }

    #[test]
    fn vectorized_handles_fact_predicates_and_dense_acc() {
        // Q1.1: fact predicates plus no group-by — the packed key space is
        // a single slot, so the dense accumulator path runs.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q1.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let layout = GroupLayout::new(&plan, &tables).unwrap();
        assert_eq!(layout.dense_slots(), Some(1));
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar);
        assert!(
            st_vec.probes < st_vec.rows / 2,
            "predicates must gate probes"
        );
    }

    #[test]
    fn vectorized_early_out_counts_match_scalar() {
        // Selective join first (part): the selection vector shrinks after
        // join 1, so joins 2..n probe fewer keys — and the probe counter
        // must agree with the scalar early-out to the last probe.
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        q.joins.rotate_left(1);
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar);
        assert!(st_vec.probes < st_vec.rows * 2);
    }

    #[test]
    fn group_acc_merge_folds_partials() {
        let (data, _q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let layout = GroupLayout::new(&plan, &tables).unwrap();
        // Probe the same block into two accumulators, merge, and compare
        // against a doubled scalar run.
        let mut a = GroupAcc::new(&layout, &plan.aggregate);
        let mut b = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut st = ProbeStats::default();
        probe_block_vec(&block, &plan, &tables, &layout, &mut a, &mut buf, &mut st).unwrap();
        probe_block_vec(&block, &plan, &tables, &layout, &mut b, &mut buf, &mut st).unwrap();
        a.merge(b, &plan.aggregate);

        let mut scalar = FxHashMap::default();
        let mut st2 = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut scalar, &mut st2).unwrap();
        probe_block(&block, &plan, &tables, &mut scalar, &mut st2).unwrap();
        let mut merged: FxHashMap<Row, i64> = FxHashMap::default();
        for (k, v) in a.entries() {
            let key = layout.rematerialize(k, &tables);
            let slot = merged
                .entry(key)
                .or_insert_with(|| plan.aggregate.identity());
            *slot = plan.aggregate.fold(*slot, v);
        }
        assert_eq!(merged, scalar);
        assert_eq!(st, st2);
    }

    #[test]
    fn compile_rejects_missing_columns() {
        let q = query_by_id("Q2.1").unwrap();
        let tiny = Schema::new(vec![clyde_common::Field::i32("lo_partkey")]);
        assert!(ProbePlan::compile(&q, &tiny).is_err());
    }
}
