//! `MTMapRunner` — the multi-threaded map runner (paper Figure 5).
//!
//! One map task per node occupies every map slot. The runner:
//!
//! 1. obtains the dimension hash tables from per-node state, building them
//!    (single-threaded) only if this is the first task of the query on this
//!    node — JVM reuse means subsequent tasks find them ready;
//! 2. unpacks the multi-split: with **morsel parallelism** (the default)
//!    every thread pulls one block at a time from a shared source, so even a
//!    single constituent split's probe work spreads across all
//!    `host_threads` workers; with morsels ablated each thread claims whole
//!    parts, the paper's `getMultipleReaders()` shape (Section 5.1);
//! 3. each thread probes its blocks against the *shared, read-only* tables,
//!    aggregating into a thread-local group map;
//! 4. the merged per-task group map is emitted — one record per group, the
//!    combiner effect of Figure 4.
//!
//! ## Morsel determinism
//!
//! Which thread processes which morsel is a race, but the emitted records
//! are byte-identical across `host_threads` counts (shadow-checked in CI at
//! 1/2/8): every aggregate is an algebraic `i64` fold (commutative and
//! associative — sum/min/max/count), so the merged map's contents do not
//! depend on fold order; emit then sorts the groups. Belt and braces, the
//! thread-local accumulators are merged in ascending first-morsel-id order,
//! so even a non-commutative future fold would see a canonical order.

use crate::config::Features;
use crate::hashtable::DimTables;
use crate::probe::{
    probe_block, probe_block_vec, probe_row, GroupAcc, GroupLayout, KernelOpts, ProbePlan,
    ProbeStats, SelBuf,
};
use clyde_common::lockorder::Mutex;
use clyde_common::obs::{Phase, WallTimer};
use clyde_common::{rowcodec, ClydeError, Datum, FxHashMap, Result, Row, RowBlock, Schema};
use clyde_mapred::{BlockReader, MapRunner, MapTaskContext, Reader};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::StarQuery;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The Clydesdale map runner. Also handles the single-threaded ablation
/// (`features.multithreading == false`): the same code path with one thread
/// and per-task (unshared, per-slot-duplicated) hash tables.
pub struct MtMapRunner {
    pub query: Arc<StarQuery>,
    /// Schema of the scanned (projected) fact columns, in scan order.
    pub scan_schema: Schema,
    pub layout: SsbLayout,
    pub features: Features,
}

/// Shared morsel source: hands out `(morsel_id, block)` pairs across the
/// runner's threads. Deserializing the next block happens under the lock
/// (it is cheap — a columnar slice), probing happens outside it, so all
/// threads share the probe work of even a single constituent split.
struct MorselSource<'a, 'b> {
    ctx: &'a MapTaskContext<'b>,
    parts: usize,
    state: Mutex<MorselState>,
}

struct MorselState {
    next_part: usize,
    current: Option<Box<dyn BlockReader>>,
    next_morsel: u64,
}

impl<'a, 'b> MorselSource<'a, 'b> {
    fn new(ctx: &'a MapTaskContext<'b>, parts: usize) -> MorselSource<'a, 'b> {
        MorselSource {
            ctx,
            parts,
            state: Mutex::new(MorselState {
                next_part: 0,
                current: None,
                next_morsel: 0,
            }),
        }
    }

    /// The next morsel, or `None` when every part is drained. Morsel ids
    /// are assigned in hand-out order: dense, starting at 0.
    fn next(&self) -> Result<Option<(u64, RowBlock)>> {
        let mut st = self.state.lock();
        loop {
            if st.current.is_none() {
                if st.next_part >= self.parts {
                    return Ok(None);
                }
                let part = st.next_part;
                st.next_part += 1;
                st.current = Some(
                    self.ctx
                        .input
                        .open(self.ctx.split, part, &self.ctx.io)?
                        .into_blocks()?,
                );
            }
            match st.current.as_mut().expect("opened above").next_block()? {
                Some(block) => {
                    let id = st.next_morsel;
                    st.next_morsel += 1;
                    return Ok(Some((id, block)));
                }
                None => st.current = None,
            }
        }
    }
}

impl MtMapRunner {
    fn acquire_tables(&self, ctx: &MapTaskContext<'_>) -> Result<Arc<DimTables>> {
        let key = format!("clydesdale.tables.{}", self.query.id);
        let (tables, built) = ctx.node_state.get_or_try_init(&key, || {
            DimTables::build_all_with(&self.query.joins, self.features.dict_predicates, |dim| {
                // Dimensions come from the node-local cache (Figure 2); a
                // node that lost its copy re-fetches from the DFS.
                let path = self.layout.dim_bin(dim);
                let data = ctx.local_store.get_or_fetch(ctx.node, &path, &ctx.io.dfs)?;
                rowcodec::read_rows(&data)
            })
        })?;
        if built {
            ctx.add_cost(|c| c.build_rows += tables.build_rows);
            if self.features.multithreading {
                // One shared copy per node, alive for the whole job.
                ctx.charge_memory_shared(tables.mem_bytes)?;
                ctx.charge_memory_shared_fixed(tables.mem_fixed_bytes)?;
            } else {
                // Every slot holds its own copy — the configuration the
                // paper's Section 5.1 calls impractical.
                ctx.charge_memory_per_slot(tables.mem_bytes)?;
                ctx.charge_memory_per_slot_fixed(tables.mem_fixed_bytes)?;
            }
        }
        Ok(tables)
    }

    /// Morsel-driven probe: threads pull blocks from the shared source and
    /// never idle while another part still has blocks. Thread-local results
    /// land in `done` tagged with the first morsel id each thread handled.
    #[allow(clippy::too_many_arguments)]
    fn run_morsels(
        &self,
        ctx: &MapTaskContext<'_>,
        tables: &DimTables,
        plan: &ProbePlan,
        layout: &Option<GroupLayout>,
        kopts: KernelOpts,
        parts: usize,
        threads: usize,
        probe_ns: &AtomicU64,
    ) -> Result<(Vec<ThreadResult>, ProbeStats)> {
        let source = MorselSource::new(ctx, parts);
        let done: Mutex<Vec<ThreadResult>> = Mutex::new(Vec::with_capacity(threads));
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let source = &source;
                let done = &done;
                handles.push(scope.spawn(move || -> Result<()> {
                    let thread_start = WallTimer::start();
                    let mut res = ThreadResult {
                        first_morsel: u64::MAX,
                        acc: FxHashMap::default(),
                        vacc: layout
                            .as_ref()
                            .map(|l| GroupAcc::new(l, &self.query.aggregate)),
                        stats: ProbeStats::default(),
                    };
                    let mut buf = SelBuf::default();
                    while let Some((id, block)) = source.next()? {
                        res.first_morsel = res.first_morsel.min(id);
                        match (&mut res.vacc, layout) {
                            (Some(va), Some(l)) => probe_block_vec(
                                &block,
                                plan,
                                tables,
                                l,
                                va,
                                &mut buf,
                                &mut res.stats,
                                kopts,
                            )?,
                            _ => probe_block(&block, plan, tables, &mut res.acc, &mut res.stats)?,
                        }
                    }
                    done.lock().push(res);
                    probe_ns.fetch_add(thread_start.elapsed_ns(), Ordering::Relaxed);
                    Ok(())
                }));
            }
            for h in handles {
                h.join()
                    .map_err(|_| ClydeError::MapReduce("probe thread panicked".into()))??;
            }
            Ok(())
        })?;
        let mut results = done.into_inner();
        // Canonical merge order: ascending first morsel id (idle threads,
        // tagged u64::MAX, sort last and contribute nothing).
        results.sort_by_key(|r| r.first_morsel);
        let mut stats = ProbeStats::default();
        for r in &results {
            stats.add(&r.stats);
        }
        Ok((results, stats))
    }

    /// Whole-part probe (morsels ablated, or a row-shaped input): threads
    /// claim constituent splits and keep every block of a part to
    /// themselves — the paper's original Figure 5 shape.
    #[allow(clippy::too_many_arguments)]
    fn run_parts(
        &self,
        ctx: &MapTaskContext<'_>,
        tables: &DimTables,
        plan: &ProbePlan,
        layout: &Option<GroupLayout>,
        kopts: KernelOpts,
        parts: usize,
        threads: usize,
        probe_ns: &AtomicU64,
    ) -> Result<(Vec<ThreadResult>, ProbeStats)> {
        let next_part = AtomicUsize::new(0);
        let done: Mutex<Vec<ThreadResult>> = Mutex::new(Vec::with_capacity(threads));
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let next_part = &next_part;
                let done = &done;
                handles.push(scope.spawn(move || -> Result<()> {
                    let thread_start = WallTimer::start();
                    let mut res = ThreadResult {
                        first_morsel: u64::MAX,
                        acc: FxHashMap::default(),
                        vacc: layout
                            .as_ref()
                            .map(|l| GroupAcc::new(l, &self.query.aggregate)),
                        stats: ProbeStats::default(),
                    };
                    let mut buf = SelBuf::default();
                    loop {
                        let part = next_part.fetch_add(1, Ordering::Relaxed);
                        if part >= parts {
                            break;
                        }
                        res.first_morsel = res.first_morsel.min(part as u64);
                        match ctx.input.open(ctx.split, part, &ctx.io)? {
                            Reader::Blocks(mut r) => {
                                while let Some(block) = r.next_block()? {
                                    match (&mut res.vacc, layout) {
                                        (Some(va), Some(l)) => probe_block_vec(
                                            &block,
                                            plan,
                                            tables,
                                            l,
                                            va,
                                            &mut buf,
                                            &mut res.stats,
                                            kopts,
                                        )?,
                                        _ => probe_block(
                                            &block,
                                            plan,
                                            tables,
                                            &mut res.acc,
                                            &mut res.stats,
                                        )?,
                                    }
                                }
                            }
                            Reader::Rows(mut r) => {
                                while let Some((_, row)) = r.next()? {
                                    probe_row(&row, plan, tables, &mut res.acc, &mut res.stats)?;
                                }
                            }
                        }
                    }
                    done.lock().push(res);
                    probe_ns.fetch_add(thread_start.elapsed_ns(), Ordering::Relaxed);
                    Ok(())
                }));
            }
            for h in handles {
                h.join()
                    .map_err(|_| ClydeError::MapReduce("probe thread panicked".into()))??;
            }
            Ok(())
        })?;
        let mut results = done.into_inner();
        results.sort_by_key(|r| r.first_morsel);
        let mut stats = ProbeStats::default();
        for r in &results {
            stats.add(&r.stats);
        }
        Ok((results, stats))
    }
}

/// What one probe thread produced, tagged for canonical merge ordering.
struct ThreadResult {
    /// Lowest morsel id (or part index) this thread processed; `u64::MAX`
    /// when it got none.
    first_morsel: u64,
    acc: FxHashMap<Row, i64>,
    vacc: Option<GroupAcc>,
    stats: ProbeStats,
}

impl MapRunner for MtMapRunner {
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()> {
        let build_start = WallTimer::start();
        let tables = self.acquire_tables(ctx)?;
        ctx.note_wall_phase(Phase::HashBuild, build_start.elapsed_ns());
        let plan = ProbePlan::compile(&self.query, &self.scan_schema)?;
        // The vectorized kernel needs a packed group-key layout; fall back
        // to the scalar kernel when ablated or when the key would not fit.
        let layout = if self.features.vectorized {
            GroupLayout::new(&plan, &tables)
        } else {
            None
        };
        let kopts = KernelOpts::from_features(&self.features);

        let parts = ctx.split.spec.num_parts();
        // Block iteration is what makes morsels: a block is a morsel. The
        // row-reader ablation keeps the whole-part path.
        let morsels = self.features.morsel && self.features.block_iteration;
        // Spawn count is a host-execution knob; pricing uses `ctx.threads`.
        // Morsel sharing is finer than parts, so it is not capped by them.
        let threads = if morsels {
            (ctx.host_threads as usize).max(1)
        } else {
            (ctx.host_threads as usize).min(parts).max(1)
        };
        // Wall-clock spent probing, summed across the runner's threads
        // (observability only — simulated time comes from the cost model).
        let probe_ns = AtomicU64::new(0);

        let (results, stats) = if morsels {
            self.run_morsels(
                ctx, &tables, &plan, &layout, kopts, parts, threads, &probe_ns,
            )?
        } else {
            self.run_parts(
                ctx, &tables, &plan, &layout, kopts, parts, threads, &probe_ns,
            )?
        };

        ctx.note_wall_phase(Phase::Probe, probe_ns.into_inner());
        let emit_start = WallTimer::start();
        ctx.add_cost(|c| {
            if self.features.block_iteration {
                c.block_rows += stats.rows;
            } else {
                c.rowiter_rows += stats.rows;
            }
            c.probe_rows += stats.probes;
            c.prefetch_activations += stats.prefetch_activations;
        });

        // Merge thread results in first-morsel order (already sorted), then
        // rematerialize the packed-key groups once per task: distinct
        // dimension rows can share aux values, so fold (don't overwrite)
        // into the row-keyed map.
        let agg = &self.query.aggregate;
        let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
        let mut vacc = layout.as_ref().map(|l| GroupAcc::new(l, agg));
        for r in results {
            // clyde-lint: allow(unordered, reason=algebraic fold into a map is commutative; emit sorts)
            for (k, v) in r.acc {
                let slot = acc.entry(k).or_insert_with(|| agg.identity());
                // clyde-lint: allow(floatorder, reason=fixed-merge-order: i64-exact fold, results pre-sorted by first morsel)
                *slot = agg.fold(*slot, v);
            }
            if let (Some(va), Some(global)) = (r.vacc, vacc.as_mut()) {
                global.merge(va, agg);
            }
        }
        if let (Some(vacc), Some(l)) = (vacc, &layout) {
            for (key, v) in vacc.entries() {
                let row = l.rematerialize(key, &tables);
                let slot = acc.entry(row).or_insert_with(|| agg.identity());
                // clyde-lint: allow(floatorder, reason=fixed-merge-order: i64-exact fold over layout-ordered group keys)
                *slot = agg.fold(*slot, v);
            }
        }

        // Emit one record per group: key = group columns, value = partial sum.
        let mut groups: Vec<(Row, i64)> = acc.into_iter().collect();
        groups.sort(); // deterministic emission order
        for (key, sum) in groups {
            ctx.emit(&key, Row::new(vec![Datum::I64(sum)]));
        }
        ctx.note_wall_phase(Phase::Emit, emit_start.elapsed_ns());
        Ok(())
    }
}
