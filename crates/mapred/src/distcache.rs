//! The distributed cache.
//!
//! Hive's mapjoin plan (paper Section 6.1, Figure 6) builds a hash table on
//! the master, serializes and compresses it, and disseminates it through
//! Hadoop's distributed cache: the artifact is copied into HDFS, then each
//! node copies it to local storage **once per job** regardless of how many
//! map slots the node runs. Each map *task* still has to read and
//! deserialize it separately — the per-task reload the paper measures 4,887
//! repetitions of in Q2.1's first stage.
//!
//! This module reproduces those mechanics: publish once, per-node fetch
//! tracked for the dissemination cost, per-task loads left to the caller
//! (they are CPU, not cache, costs).

use bytes::Bytes;
use clyde_common::lockorder::Mutex;
use clyde_common::{ClydeError, FxHashMap, FxHashSet, Result};
use clyde_dfs::NodeId;

/// A per-job broadcast channel from the job client to every node.
#[derive(Default)]
pub struct DistCache {
    entries: Mutex<FxHashMap<String, Bytes>>,
    /// (key, node) pairs that have already paid the copy-to-local cost.
    fetched: Mutex<FxHashSet<(String, usize)>>,
    /// Total bytes that crossed the network to nodes (dissemination cost).
    disseminated: Mutex<u64>,
}

impl DistCache {
    pub fn new() -> DistCache {
        DistCache::default()
    }

    /// Publish an artifact from the job client (Hive master).
    pub fn publish(&self, key: impl Into<String>, data: Bytes) {
        self.entries.lock().insert(key.into(), data);
    }

    /// Fetch an artifact on `node`. The first fetch per (key, node) counts
    /// toward dissemination; later fetches are free local reads, mirroring
    /// the once-per-node copy semantics.
    pub fn fetch(&self, node: NodeId, key: &str) -> Result<Bytes> {
        let data = self
            .entries
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| ClydeError::MapReduce(format!("distributed cache miss: {key}")))?;
        let first = self.fetched.lock().insert((key.to_string(), node.0));
        if first {
            *self.disseminated.lock() += data.len() as u64;
        }
        Ok(data)
    }

    /// Total bytes copied to nodes so far.
    pub fn disseminated_bytes(&self) -> u64 {
        *self.disseminated.lock()
    }

    /// Number of published artifacts.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_fetch_roundtrip() {
        let c = DistCache::new();
        c.publish("ht", Bytes::from_static(b"table"));
        assert_eq!(
            c.fetch(NodeId(0), "ht").unwrap(),
            Bytes::from_static(b"table")
        );
        assert!(c.fetch(NodeId(0), "missing").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dissemination_counts_once_per_node() {
        let c = DistCache::new();
        c.publish("ht", Bytes::from_static(b"12345"));
        // Node 0 fetches 3 times (3 map tasks), node 1 once.
        c.fetch(NodeId(0), "ht").unwrap();
        c.fetch(NodeId(0), "ht").unwrap();
        c.fetch(NodeId(0), "ht").unwrap();
        c.fetch(NodeId(1), "ht").unwrap();
        assert_eq!(c.disseminated_bytes(), 10); // 5 bytes × 2 nodes
    }

    #[test]
    fn distinct_keys_tracked_separately() {
        let c = DistCache::new();
        c.publish("a", Bytes::from_static(b"xx"));
        c.publish("b", Bytes::from_static(b"yyy"));
        c.fetch(NodeId(0), "a").unwrap();
        c.fetch(NodeId(0), "b").unwrap();
        assert_eq!(c.disseminated_bytes(), 5);
    }
}
