//! The deterministic cost model.
//!
//! Queries in this reproduction really execute, but at laptop scale; the
//! paper's numbers come from 600 GB on physical clusters. This module closes
//! the gap: every task records hardware-independent *counters* (bytes
//! scanned, rows probed, hash entries built, records shuffled), and the cost
//! model prices those counters against a [`ClusterSpec`] using rates
//! calibrated to the paper's Section 6.3 breakdown of query 2.1:
//!
//! * effective HDFS scan bandwidth ≈ 70 MB/s per node (paper: 67 MB/s
//!   observed, far below the 560 MB/s raw — Section 6.6);
//! * per-task overheads of ~1.5 s and per-job (stage) overheads of ~10 s,
//!   which the paper notes become significant on cluster B;
//! * Java-era CPU rates: ~150 K rows/s single-threaded dimension hash-table
//!   build (27 s for Q2.1's three tables), ~7 MB/s hash-table
//!   deserialization (the dominant term of Hive's 9,180 s stage 3), ~80 K
//!   rows/s through Hive's row-at-a-time operator pipeline, and multi-
//!   million-row/s rates for Clydesdale's block-iterated probe loop.
//!
//! The model is a pure function of its inputs — no clocks, no randomness —
//! so simulated results are reproducible bit-for-bit.

use clyde_common::obs::{Phase, PhaseSlice};
use clyde_dfs::testdfsio::HdfsPerfModel;
use clyde_dfs::{ClusterSpec, NodeId};

const MB: f64 = (1 << 20) as f64;

/// Hardware-independent execution counters for one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCost {
    /// Bytes read from the DFS with a local replica.
    pub local_bytes: u64,
    /// Bytes read from the DFS over the network.
    pub remote_bytes: u64,
    /// Records moved one-at-a-time through the framework (Hadoop default
    /// iteration; Hive's operator pipeline).
    pub deser_rows: u64,
    /// Rows processed through block iteration (B-CIF).
    pub block_rows: u64,
    /// Rows materialized one-at-a-time inside Clydesdale (the
    /// block-iteration-off ablation; cheaper than `deser_rows` because no
    /// framework operator tree is involved).
    pub rowiter_rows: u64,
    /// Dimension rows scanned/inserted while building hash tables
    /// (single-threaded, per the paper's build phase).
    pub build_rows: u64,
    /// Fact rows probed against the dimension hash tables.
    pub probe_rows: u64,
    /// Map-output records and their encoded size.
    pub emit_records: u64,
    pub emit_bytes: u64,
    /// Bytes of serialized state (hash tables) loaded by this task — Hive
    /// pays this per task; Clydesdale once per node.
    pub state_load_bytes: u64,
    /// Bytes this task wrote to the DFS (job output / intermediates).
    pub output_bytes: u64,
    /// Threads this task used (Clydesdale's MTMapRunner uses all slots).
    pub threads: u32,
    /// Column chunks whose zone map was consulted before reading.
    pub zone_checked: u64,
    /// Of those, chunks skipped outright (no fetch, no decode).
    pub zone_skipped: u64,
    /// Records entering the map-side combiner (pre-combine emit count).
    pub combine_input_records: u64,
    /// Records leaving the map-side combiner (what actually shuffles).
    pub combine_output_records: u64,
    /// Sorted runs this (reduce) task merged — Hadoop's spill/merge stat.
    pub merge_runs: u64,
    /// Probe-kernel software-prefetch activations: joins whose dimension
    /// direct table was large enough to clear `PREFETCH_MIN_SLOTS`. Zero at
    /// small scale factors — the counter exists to prove the layer fires.
    pub prefetch_activations: u64,
}

impl TaskCost {
    pub fn new() -> TaskCost {
        TaskCost {
            threads: 1,
            ..TaskCost::default()
        }
    }

    /// Element-wise sum (threads take the max — they describe a mode, not a
    /// quantity).
    pub fn merge(&self, other: &TaskCost) -> TaskCost {
        TaskCost {
            local_bytes: self.local_bytes + other.local_bytes,
            remote_bytes: self.remote_bytes + other.remote_bytes,
            deser_rows: self.deser_rows + other.deser_rows,
            block_rows: self.block_rows + other.block_rows,
            rowiter_rows: self.rowiter_rows + other.rowiter_rows,
            build_rows: self.build_rows + other.build_rows,
            probe_rows: self.probe_rows + other.probe_rows,
            emit_records: self.emit_records + other.emit_records,
            emit_bytes: self.emit_bytes + other.emit_bytes,
            state_load_bytes: self.state_load_bytes + other.state_load_bytes,
            output_bytes: self.output_bytes + other.output_bytes,
            threads: self.threads.max(other.threads),
            zone_checked: self.zone_checked + other.zone_checked,
            zone_skipped: self.zone_skipped + other.zone_skipped,
            combine_input_records: self.combine_input_records + other.combine_input_records,
            combine_output_records: self.combine_output_records + other.combine_output_records,
            merge_runs: self.merge_runs + other.merge_runs,
            prefetch_activations: self.prefetch_activations + other.prefetch_activations,
        }
    }

    /// Scale every counter by `f` (used by the SF extrapolator). `dim_f`
    /// scales the dimension-driven counters (hash builds and state loads),
    /// which grow with dimension cardinality rather than fact cardinality.
    pub fn scaled(&self, fact_f: f64, dim_f: f64) -> TaskCost {
        let s = |v: u64, f: f64| ((v as f64) * f).round() as u64;
        TaskCost {
            local_bytes: s(self.local_bytes, fact_f),
            remote_bytes: s(self.remote_bytes, fact_f),
            deser_rows: s(self.deser_rows, fact_f),
            block_rows: s(self.block_rows, fact_f),
            rowiter_rows: s(self.rowiter_rows, fact_f),
            build_rows: s(self.build_rows, dim_f),
            probe_rows: s(self.probe_rows, fact_f),
            emit_records: s(self.emit_records, fact_f),
            emit_bytes: s(self.emit_bytes, fact_f),
            state_load_bytes: s(self.state_load_bytes, dim_f),
            output_bytes: s(self.output_bytes, fact_f),
            threads: self.threads,
            zone_checked: s(self.zone_checked, fact_f),
            zone_skipped: s(self.zone_skipped, fact_f),
            combine_input_records: s(self.combine_input_records, fact_f),
            combine_output_records: s(self.combine_output_records, fact_f),
            merge_runs: self.merge_runs,
            // Activations count (join, task) pairs: task count is held fixed
            // by the extrapolator, so they scale with neither axis.
            prefetch_activations: self.prefetch_activations,
        }
    }

    /// Divide into `n` equal per-task shares (rebuilding a task list at a
    /// different scale).
    pub fn split(&self, n: u64) -> TaskCost {
        let n = n.max(1);
        TaskCost {
            local_bytes: self.local_bytes / n,
            remote_bytes: self.remote_bytes / n,
            deser_rows: self.deser_rows / n,
            block_rows: self.block_rows / n,
            rowiter_rows: self.rowiter_rows / n,
            build_rows: self.build_rows / n,
            probe_rows: self.probe_rows / n,
            emit_records: self.emit_records / n,
            emit_bytes: self.emit_bytes / n,
            state_load_bytes: self.state_load_bytes / n,
            output_bytes: self.output_bytes / n,
            threads: self.threads,
            zone_checked: self.zone_checked / n,
            zone_skipped: self.zone_skipped / n,
            combine_input_records: self.combine_input_records / n,
            combine_output_records: self.combine_output_records / n,
            merge_runs: self.merge_runs / n,
            prefetch_activations: self.prefetch_activations / n,
        }
    }
}

/// Calibrated rates describing the paper's Hadoop/Java testbed.
#[derive(Debug, Clone)]
pub struct CostParams {
    pub hdfs: HdfsPerfModel,
    /// Scheduling/startup overhead per task, seconds.
    pub task_overhead_s: f64,
    /// Per-job (per-stage) submission + cleanup overhead, seconds.
    pub job_overhead_s: f64,
    /// Single-threaded dimension hash-table build, rows/second (includes
    /// reading and deserializing the dimension data).
    pub build_rows_per_s: f64,
    /// Hash-table (de)serialization bandwidth, bytes/second.
    pub state_deser_bw: f64,
    /// Hive-style row-at-a-time operator pipeline, rows/second per slot.
    pub framework_rows_per_s: f64,
    /// Clydesdale block-iterated scan+probe, rows/second per thread.
    pub block_rows_per_s: f64,
    /// Clydesdale row-at-a-time (block iteration off), rows/second per thread.
    pub rowiter_rows_per_s: f64,
    /// Hash-probe cost, probes/second per thread (on top of iteration).
    pub probe_rows_per_s: f64,
    /// Map-side sort/spill of emitted records, records/second per slot.
    pub sort_records_per_s: f64,
    /// Reduce-side merge + reduce function, records/second per reduce slot.
    pub reduce_rows_per_s: f64,
    /// Disk passes paid by shuffled bytes (map spill + reduce merge).
    pub shuffle_disk_passes: f64,
    /// Extra multiplier on charged task memory when pricing (tunability
    /// knob; 1.0 by default because engines charge realistic footprints —
    /// Hive's mapjoin charges Java-object-graph sizes, Clydesdale charges
    /// its compact shared tables).
    pub memory_expansion: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            hdfs: HdfsPerfModel::default(),
            task_overhead_s: 1.5,
            job_overhead_s: 10.0,
            build_rows_per_s: 150_000.0,
            state_deser_bw: 1.7 * MB,
            framework_rows_per_s: 55_000.0,
            block_rows_per_s: 9_000_000.0,
            rowiter_rows_per_s: 600_000.0,
            probe_rows_per_s: 20_000_000.0,
            sort_records_per_s: 1_000_000.0,
            reduce_rows_per_s: 140_000.0,
            shuffle_disk_passes: 2.0,
            memory_expansion: 1.0,
        }
    }
}

impl CostParams {
    /// Parameters describing the paper's testbed (the defaults).
    pub fn paper() -> CostParams {
        CostParams::default()
    }

    /// Duration of one **map** task, seconds, when `concurrency` tasks of
    /// this job share the node.
    ///
    /// Model: overhead + state load + single-threaded build, then the scan
    /// I/O and the probe/iteration CPU overlap (`max`), then output write.
    pub fn map_task_duration(
        &self,
        cluster: &ClusterSpec,
        cost: &TaskCost,
        concurrency: u32,
    ) -> f64 {
        let c = f64::from(concurrency.max(1));
        let threads = f64::from(cost.threads.max(1)) * cluster.node.cpu_factor;
        let cpu_f = cluster.node.cpu_factor;
        let read_bw = self.hdfs.effective_read_bw(&cluster.node) / c;
        let net_bw = cluster.network_bw / c;
        let write_bw = self
            .hdfs
            .effective_write_bw(&cluster.node, 3, cluster.network_bw)
            / c;

        let io_read = cost.local_bytes as f64 / read_bw + cost.remote_bytes as f64 / net_bw;
        let cpu = cost.deser_rows as f64 / (self.framework_rows_per_s * cpu_f)
            + cost.block_rows as f64 / (self.block_rows_per_s * threads)
            + cost.rowiter_rows as f64 / (self.rowiter_rows_per_s * threads)
            + cost.probe_rows as f64 / (self.probe_rows_per_s * threads)
            + cost.emit_records as f64 / (self.sort_records_per_s * cpu_f);
        let build = cost.build_rows as f64 / (self.build_rows_per_s * cpu_f);
        let load = cost.state_load_bytes as f64 / (self.state_deser_bw * cpu_f);
        let write = cost.output_bytes as f64 / write_bw;

        self.task_overhead_s + load + build + io_read.max(cpu) + write
    }

    /// Duration of one **reduce** task, seconds.
    pub fn reduce_task_duration(&self, cluster: &ClusterSpec, cost: &TaskCost) -> f64 {
        let write_bw = self
            .hdfs
            .effective_write_bw(&cluster.node, 3, cluster.network_bw);
        let cpu = cost.deser_rows as f64 / (self.reduce_rows_per_s * cluster.node.cpu_factor);
        let write = cost.output_bytes as f64 / write_bw;
        self.task_overhead_s + cpu + write
    }

    /// Decompose [`Self::map_task_duration`] into phase intervals. Starts are
    /// relative to the task's own start; the last interval ends exactly at
    /// the task's duration, so every priced second lands in one phase.
    ///
    /// The scan and the CPU pipeline (probe then emit/sort) run overlapped:
    /// both start when the build finishes and the window lasts
    /// `max(io_read, cpu)`, exactly as the duration formula prices it.
    pub fn map_task_phases(
        &self,
        cluster: &ClusterSpec,
        cost: &TaskCost,
        concurrency: u32,
    ) -> Vec<PhaseSlice> {
        let c = f64::from(concurrency.max(1));
        let threads = f64::from(cost.threads.max(1)) * cluster.node.cpu_factor;
        let cpu_f = cluster.node.cpu_factor;
        let read_bw = self.hdfs.effective_read_bw(&cluster.node) / c;
        let net_bw = cluster.network_bw / c;
        let write_bw = self
            .hdfs
            .effective_write_bw(&cluster.node, 3, cluster.network_bw)
            / c;

        let io_read = cost.local_bytes as f64 / read_bw + cost.remote_bytes as f64 / net_bw;
        let probe_cpu = cost.deser_rows as f64 / (self.framework_rows_per_s * cpu_f)
            + cost.block_rows as f64 / (self.block_rows_per_s * threads)
            + cost.rowiter_rows as f64 / (self.rowiter_rows_per_s * threads)
            + cost.probe_rows as f64 / (self.probe_rows_per_s * threads);
        let emit_cpu = cost.emit_records as f64 / (self.sort_records_per_s * cpu_f);
        let build = cost.build_rows as f64 / (self.build_rows_per_s * cpu_f);
        let load = cost.state_load_bytes as f64 / (self.state_deser_bw * cpu_f);
        let write = cost.output_bytes as f64 / write_bw;

        let mut phases = Vec::new();
        let mut t = 0.0;
        let push = |phases: &mut Vec<PhaseSlice>,
                    phase: Phase,
                    start: f64,
                    dur: f64,
                    note: Option<String>| {
            if dur > 0.0 {
                phases.push(PhaseSlice {
                    phase,
                    start_s: start,
                    dur_s: dur,
                    note,
                });
            }
        };
        push(&mut phases, Phase::Setup, t, self.task_overhead_s, None);
        t += self.task_overhead_s;
        push(
            &mut phases,
            Phase::StateLoad,
            t,
            load,
            Some(format!("{} bytes", cost.state_load_bytes)),
        );
        t += load;
        push(
            &mut phases,
            Phase::HashBuild,
            t,
            build,
            Some(format!("{} rows", cost.build_rows)),
        );
        t += build;
        push(
            &mut phases,
            Phase::Scan,
            t,
            io_read,
            Some(format!(
                "{} local + {} remote bytes",
                cost.local_bytes, cost.remote_bytes
            )),
        );
        push(
            &mut phases,
            Phase::Probe,
            t,
            probe_cpu,
            Some(format!(
                "{} probes, {} block rows",
                cost.probe_rows, cost.block_rows
            )),
        );
        push(
            &mut phases,
            Phase::Emit,
            t + probe_cpu,
            emit_cpu,
            Some(format!(
                "{} records, {} bytes",
                cost.emit_records, cost.emit_bytes
            )),
        );
        t += io_read.max(probe_cpu + emit_cpu);
        push(
            &mut phases,
            Phase::Write,
            t,
            write,
            Some(format!("{} bytes", cost.output_bytes)),
        );
        phases
    }

    /// Decompose [`Self::reduce_task_duration`] into phase intervals
    /// (relative starts), mirroring the pricing formula exactly.
    pub fn reduce_task_phases(&self, cluster: &ClusterSpec, cost: &TaskCost) -> Vec<PhaseSlice> {
        let write_bw = self
            .hdfs
            .effective_write_bw(&cluster.node, 3, cluster.network_bw);
        let cpu = cost.deser_rows as f64 / (self.reduce_rows_per_s * cluster.node.cpu_factor);
        let write = cost.output_bytes as f64 / write_bw;
        let mut phases = vec![PhaseSlice {
            phase: Phase::Setup,
            start_s: 0.0,
            dur_s: self.task_overhead_s,
            note: None,
        }];
        if cpu > 0.0 {
            phases.push(PhaseSlice {
                phase: Phase::Reduce,
                start_s: self.task_overhead_s,
                dur_s: cpu,
                note: Some(format!(
                    "{} records, {} runs merged",
                    cost.deser_rows, cost.merge_runs
                )),
            });
        }
        if write > 0.0 {
            phases.push(PhaseSlice {
                phase: Phase::Write,
                start_s: self.task_overhead_s + cpu,
                dur_s: write,
                note: Some(format!("{} bytes", cost.output_bytes)),
            });
        }
        phases
    }
}

/// Simulated time breakdown of one job (one MapReduce stage).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobCost {
    /// Client-side setup: building/publishing distributed-cache artifacts.
    pub setup_s: f64,
    /// Makespan of the map phase.
    pub map_s: f64,
    /// Network + spill time of the shuffle.
    pub shuffle_s: f64,
    /// Makespan of the reduce phase.
    pub reduce_s: f64,
    /// Job submission overhead.
    pub overhead_s: f64,
}

/// Fixed client-side cost of a cache hit: the catalog lookup plus the
/// metadata round-trip that replaces job submission. Deliberately far below
/// `job_overhead_s` — serving a stage from the result cache skips the
/// JobTracker entirely.
pub const CACHED_READ_OVERHEAD_S: f64 = 0.5;

impl CostParams {
    /// Price a stage served from the DFS result cache: no tasks, no shuffle,
    /// just a sequential read of the persisted output at the node's
    /// effective HDFS read bandwidth plus a small fixed lookup overhead.
    pub fn cached_read_cost(&self, cluster: &ClusterSpec, bytes: u64) -> JobCost {
        JobCost {
            setup_s: 0.0,
            map_s: 0.0,
            shuffle_s: 0.0,
            reduce_s: 0.0,
            overhead_s: CACHED_READ_OVERHEAD_S
                + bytes as f64 / self.hdfs.effective_read_bw(&cluster.node),
        }
    }
}

impl JobCost {
    pub fn total_s(&self) -> f64 {
        self.setup_s + self.map_s + self.shuffle_s + self.reduce_s + self.overhead_s
    }

    pub fn add(&self, other: &JobCost) -> JobCost {
        JobCost {
            setup_s: self.setup_s + other.setup_s,
            map_s: self.map_s + other.map_s,
            shuffle_s: self.shuffle_s + other.shuffle_s,
            reduce_s: self.reduce_s + other.reduce_s,
            overhead_s: self.overhead_s + other.overhead_s,
        }
    }
}

/// Makespan of a set of tasks with per-node slot concurrency: each node
/// finishes at `sum(task durations)/concurrency` (its slots drain the queue
/// in waves) — but never before its longest single task, which bounds the
/// phase when a node holds fewer tasks than slots. The phase ends when the
/// slowest node does.
pub fn makespan(durations: &[(NodeId, f64)], num_nodes: usize, concurrency: u32) -> f64 {
    let mut per_node = vec![0.0f64; num_nodes];
    let mut longest = vec![0.0f64; num_nodes];
    for &(node, d) in durations {
        per_node[node.0] += d;
        longest[node.0] = longest[node.0].max(d);
    }
    let c = f64::from(concurrency.max(1));
    per_node
        .iter()
        .zip(&longest)
        .fold(0.0f64, |acc, (t, &l)| acc.max((t / c).max(l)))
}

/// Network + disk time to move `shuffle_bytes` from mappers to reducers.
pub fn shuffle_time(params: &CostParams, cluster: &ClusterSpec, shuffle_bytes: u64) -> f64 {
    if shuffle_bytes == 0 {
        return 0.0;
    }
    let n = cluster.num_workers() as f64;
    let net = shuffle_bytes as f64 / (n * cluster.network_bw);
    let disk = params.shuffle_disk_passes * shuffle_bytes as f64 / (n * cluster.node.raw_disk_bw());
    net + disk
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> ClusterSpec {
        ClusterSpec::cluster_a()
    }

    #[test]
    fn merge_and_split_are_inverse_ish() {
        let mut c = TaskCost::new();
        c.local_bytes = 100;
        c.probe_rows = 10;
        let total = c.merge(&c).merge(&c).merge(&c);
        assert_eq!(total.local_bytes, 400);
        let per = total.split(4);
        assert_eq!(per.local_bytes, 100);
        assert_eq!(per.probe_rows, 10);
    }

    #[test]
    fn scaled_separates_fact_and_dim_counters() {
        let mut c = TaskCost::new();
        c.probe_rows = 1000;
        c.build_rows = 500;
        c.state_load_bytes = 64;
        let s = c.scaled(10.0, 2.0);
        assert_eq!(s.probe_rows, 10_000);
        assert_eq!(s.build_rows, 1_000);
        assert_eq!(s.state_load_bytes, 128);
    }

    #[test]
    fn io_bound_task_duration_tracks_bandwidth() {
        // A Clydesdale-like task: 10.8 GB local scan, one task per node, six
        // threads — the paper's Q2.1 map task took ~164 s for the probe
        // phase at 67 MB/s.
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.local_bytes = (10.8 * 1024.0 * MB) as u64;
        c.block_rows = 750_000_000;
        c.probe_rows = 750_000_000;
        c.threads = 6;
        let d = params.map_task_duration(&a(), &c, 1);
        assert!(d > 140.0 && d < 190.0, "duration {d}");
    }

    #[test]
    fn build_phase_matches_paper_q21() {
        // Paper: 27 s to build Date (2,556) + Part (2.0 M) + Supplier (2.0 M)
        // hash tables at SF1000.
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.build_rows = 2_556 + 2_000_000 + 2_000_000;
        let d = params.map_task_duration(&a(), &c, 1) - params.task_overhead_s;
        assert!((d - 27.0).abs() < 8.0, "build {d}");
    }

    #[test]
    fn concurrency_shares_bandwidth() {
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.local_bytes = 700 * (1 << 20);
        let solo = params.map_task_duration(&a(), &c, 1);
        let shared = params.map_task_duration(&a(), &c, 6);
        assert!(shared > solo * 4.0);
    }

    #[test]
    fn state_load_dominates_hive_style_tasks() {
        // Hive stage 3 of Q2.1: each task reloads a ~500 MB hash table.
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.state_load_bytes = 500 * (1 << 20);
        let d = params.map_task_duration(&a(), &c, 6);
        assert!(d > 60.0, "load-dominated task {d}");
    }

    #[test]
    fn makespan_takes_slowest_node() {
        let ds = vec![(NodeId(0), 10.0), (NodeId(0), 10.0), (NodeId(1), 5.0)];
        assert!((makespan(&ds, 2, 1) - 20.0).abs() < 1e-9);
        assert!((makespan(&ds, 2, 2) - 10.0).abs() < 1e-9);
        assert_eq!(makespan(&[], 2, 1), 0.0);
    }

    #[test]
    fn shuffle_time_scales_with_bytes_and_cluster() {
        let p = CostParams::paper();
        let t_small = shuffle_time(&p, &a(), 1 << 30);
        let t_big = shuffle_time(&p, &a(), 10 << 30);
        assert!(t_big > t_small * 9.0);
        let t_b = shuffle_time(&p, &ClusterSpec::cluster_b(), 10 << 30);
        assert!(t_b < t_big, "bigger cluster shuffles faster");
        assert_eq!(shuffle_time(&p, &a(), 0), 0.0);
    }

    #[test]
    fn map_phases_cover_exactly_the_priced_duration() {
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.local_bytes = 700 * (1 << 20);
        c.remote_bytes = 30 * (1 << 20);
        c.block_rows = 50_000_000;
        c.probe_rows = 50_000_000;
        c.build_rows = 400_000;
        c.state_load_bytes = 1 << 20;
        c.emit_records = 100_000;
        c.emit_bytes = 3_200_000;
        c.output_bytes = 1 << 20;
        c.threads = 6;
        for conc in [1u32, 6] {
            let phases = params.map_task_phases(&a(), &c, conc);
            let end = phases
                .iter()
                .map(|p| p.start_s + p.dur_s)
                .fold(0.0, f64::max);
            let d = params.map_task_duration(&a(), &c, conc);
            assert!((end - d).abs() < 1e-9, "phases end {end} != duration {d}");
            // Scan and probe overlap: same start after the build.
            let scan = phases.iter().find(|p| p.phase == Phase::Scan).unwrap();
            let probe = phases.iter().find(|p| p.phase == Phase::Probe).unwrap();
            assert!((scan.start_s - probe.start_s).abs() < 1e-12);
            // Emit follows the probe CPU.
            let emit = phases.iter().find(|p| p.phase == Phase::Emit).unwrap();
            assert!((emit.start_s - (probe.start_s + probe.dur_s)).abs() < 1e-12);
            // Write starts when the overlapped window closes.
            let write = phases.iter().find(|p| p.phase == Phase::Write).unwrap();
            let window_end = scan
                .start_s
                .max(0.0)
                .max(scan.start_s + scan.dur_s)
                .max(emit.start_s + emit.dur_s);
            assert!((write.start_s - window_end).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_phases_cover_exactly_the_priced_duration() {
        let params = CostParams::paper();
        let mut c = TaskCost::new();
        c.deser_rows = 2_000_000;
        c.output_bytes = 8 << 20;
        c.merge_runs = 8;
        let phases = params.reduce_task_phases(&a(), &c);
        let end = phases
            .iter()
            .map(|p| p.start_s + p.dur_s)
            .fold(0.0, f64::max);
        let d = params.reduce_task_duration(&a(), &c);
        assert!((end - d).abs() < 1e-9);
        let reduce = phases.iter().find(|p| p.phase == Phase::Reduce).unwrap();
        assert!(reduce.note.as_deref().unwrap().contains("8 runs merged"));
    }

    #[test]
    fn combiner_and_merge_counters_aggregate() {
        let mut c = TaskCost::new();
        c.combine_input_records = 100;
        c.combine_output_records = 10;
        c.merge_runs = 4;
        let total = c.merge(&c);
        assert_eq!(total.combine_input_records, 200);
        assert_eq!(total.combine_output_records, 20);
        assert_eq!(total.merge_runs, 8);
        let scaled = c.scaled(3.0, 1.0);
        assert_eq!(scaled.combine_input_records, 300);
        assert_eq!(scaled.merge_runs, 4, "runs scale with tasks, not rows");
        assert_eq!(total.split(2), c);
    }

    #[test]
    fn job_cost_totals() {
        let j = JobCost {
            setup_s: 1.0,
            map_s: 2.0,
            shuffle_s: 3.0,
            reduce_s: 4.0,
            overhead_s: 5.0,
        };
        assert!((j.total_s() - 15.0).abs() < 1e-12);
        assert!((j.add(&j).total_s() - 30.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_cost() -> impl Strategy<Value = TaskCost> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            1u32..16,
        )
            .prop_map(|(a, b, c, d, e, threads)| TaskCost {
                local_bytes: u64::from(a),
                remote_bytes: u64::from(b),
                deser_rows: u64::from(c),
                build_rows: u64::from(d),
                probe_rows: u64::from(e),
                threads,
                ..TaskCost::new()
            })
    }

    proptest! {
        /// Durations are non-negative, finite, and monotone in every
        /// counter: more work never takes less simulated time.
        #[test]
        fn durations_are_monotone(cost in arb_cost(), extra in 1u64..1_000_000) {
            let params = CostParams::paper();
            let cluster = ClusterSpec::cluster_a();
            let base = params.map_task_duration(&cluster, &cost, 1);
            prop_assert!(base.is_finite() && base >= params.task_overhead_s);
            for field in 0..5 {
                let mut bigger = cost;
                match field {
                    0 => bigger.local_bytes += extra,
                    1 => bigger.remote_bytes += extra,
                    2 => bigger.deser_rows += extra,
                    3 => bigger.build_rows += extra,
                    _ => bigger.state_load_bytes += extra,
                }
                let d = params.map_task_duration(&cluster, &bigger, 1);
                prop_assert!(d >= base, "field {field}: {d} < {base}");
            }
        }

        /// merge is commutative and split(n) preserves totals up to
        /// integer-division remainders.
        #[test]
        fn merge_commutes_and_split_conserves(a in arb_cost(), b in arb_cost(), n in 1u64..64) {
            prop_assert_eq!(a.merge(&b), b.merge(&a));
            let per = a.split(n);
            prop_assert!(per.local_bytes * n <= a.local_bytes);
            prop_assert!(a.local_bytes - per.local_bytes * n < n);
            prop_assert!(per.probe_rows * n <= a.probe_rows);
        }

        /// The faster cluster-B CPU never makes a task slower.
        #[test]
        fn cluster_b_cpu_is_never_slower(cost in arb_cost()) {
            let params = CostParams::paper();
            let mut a_shaped_b = ClusterSpec::cluster_a();
            a_shaped_b.node.cpu_factor = ClusterSpec::cluster_b().node.cpu_factor;
            let on_a = params.map_task_duration(&ClusterSpec::cluster_a(), &cost, 1);
            let on_b_cpu = params.map_task_duration(&a_shaped_b, &cost, 1);
            prop_assert!(on_b_cpu <= on_a + 1e-9);
        }
    }
}
