//! Job execution.
//!
//! The engine really runs jobs: one worker thread per simulated cluster node
//! drains that node's task queue, tasks read real bytes from the simulated
//! DFS, and the shuffle sorts and merges real records. Simulated time never
//! depends on wall-clock — it is derived afterwards from the recorded
//! [`TaskCost`] counters, so results and costs are
//! deterministic no matter how the OS schedules the threads.
//!
//! Failed map tasks are **re-executed** on alternate nodes up to the job's
//! attempt budget — Hadoop's fault-tolerance contract, one of the properties
//! the paper keeps by staying on an unmodified platform. Out-of-memory
//! failures are not retried: exhausting a deterministic resource model would
//! fail identically everywhere (and this is how the paper's cluster-A
//! mapjoin queries "did not complete").

use crate::cost::{CostParams, TaskCost};
use crate::distcache::DistCache;
use crate::history;
use crate::input::InputSplit;
use crate::job::{JobProfile, JobResult, JobSpec, OutputSpec, TaskProfile};
use crate::scheduler;
use crate::shuffle;
use crate::task::{
    MapOutputBuffer, MapTaskContext, MemoryLedger, MemoryTracker, NodeState, TaskIo,
};
use clyde_common::obs::{Obs, Phase, TaskKind};
use clyde_common::{keycodec, rowcodec, ClydeError, Result, Row};
use clyde_dfs::{Dfs, NodeId, NodeLocalStore};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Artifacts prepared by the job client before submission (Hive's master
/// builds mapjoin hash tables here).
#[derive(Default, Clone)]
pub struct ClientArtifacts {
    pub cache: Arc<DistCache>,
    /// Rows the client scanned/inserted building the artifacts.
    pub build_rows: u64,
}

/// Output of one executed map task, waiting for the shuffle.
struct TaskOutput {
    records: Vec<(Vec<u8>, Row)>,
    cost: TaskCost,
    node: NodeId,
    output_file: Option<String>,
    /// Measured wall-clock of the whole attempt (observability-only).
    wall_ns: u64,
    /// Wall-clock the runner attributed to specific phases.
    wall_phases: Vec<(Phase, u64)>,
}

/// Everything a map-task attempt needs, bundled so the first parallel wave
/// and the sequential retry path share one execution function.
struct MapTaskEnv<'a> {
    spec: &'a JobSpec,
    splits: &'a [InputSplit],
    dfs: &'a Arc<Dfs>,
    local: &'a Arc<NodeLocalStore>,
    cache: &'a Arc<DistCache>,
    node_states: &'a [Arc<NodeState>],
    memories: &'a [Arc<MemoryTracker>],
    ledger: &'a Arc<MemoryLedger>,
    concurrency: u32,
    threads: u32,
    map_only: bool,
}

impl MapTaskEnv<'_> {
    /// Execute one attempt of one map task on `node`.
    fn exec(&self, task_idx: usize, node: NodeId) -> Result<TaskOutput> {
        let wall_start = Instant::now();
        let split = &self.splits[task_idx];
        let io = TaskIo::new(Arc::clone(self.dfs), node);
        let out = Arc::new(MapOutputBuffer::new());
        let cost = Arc::new(Mutex::new(TaskCost {
            threads: self.threads,
            ..TaskCost::new()
        }));
        let state = if self.spec.reuse_jvm {
            Arc::clone(&self.node_states[node.0])
        } else {
            Arc::new(NodeState::new())
        };
        let memory = Arc::clone(&self.memories[node.0]);
        let ctx = MapTaskContext {
            conf: &self.spec.conf,
            split,
            input: &*self.spec.input,
            io: io.clone(),
            node,
            threads: self.threads,
            slot_concurrency: self.concurrency,
            node_state: state,
            memory: Arc::clone(&memory),
            ledger: Arc::clone(self.ledger),
            task_charges: Mutex::new(0),
            local_store: Arc::clone(self.local),
            dist_cache: Arc::clone(self.cache),
            out: Arc::clone(&out),
            cost: Arc::clone(&cost),
            wall_phases: Mutex::new(Vec::new()),
        };
        let run_result = self.spec.map_runner.run(&ctx);
        // Transient per-task memory dies with the attempt, success or not.
        memory.release(*ctx.task_charges.lock());
        let wall_phases = std::mem::take(&mut *ctx.wall_phases.lock());
        drop(ctx);
        run_result?;

        let mut task_cost = *cost.lock();
        task_cost.local_bytes += io.stats.local();
        task_cost.remote_bytes += io.stats.remote();
        task_cost.zone_checked += io.stats.zone_checked();
        task_cost.zone_skipped += io.stats.zone_skipped();

        let mut records = Arc::try_unwrap(out)
            .map_err(|_| ClydeError::MapReduce("collector leaked out of the map task".into()))?
            .into_records();

        let mut output_file = None;
        if self.map_only {
            match &self.spec.output {
                OutputSpec::Memory => {}
                OutputSpec::DfsDir(dir) => {
                    let rows: Vec<Row> = std::mem::take(&mut records)
                        .into_iter()
                        .map(|(k, v)| Ok(keycodec::decode_row(&k)?.concat(&v)))
                        .collect::<Result<_>>()?;
                    let path = format!("{dir}/part-m-{task_idx:05}");
                    // A previous attempt may have died between committing its
                    // file and reporting success; re-attempts supersede it.
                    if self.dfs.exists(&path) {
                        self.dfs.delete(&path)?;
                    }
                    let payload = rowcodec::write_rows(&rows);
                    task_cost.output_bytes += payload.len() as u64;
                    self.dfs.write_file(&path, None, &payload)?;
                    output_file = Some(path);
                }
            }
        } else {
            // Map-side sort (and combine) before the shuffle.
            shuffle::sort_records(&mut records);
            if let Some(comb) = &self.spec.combiner {
                task_cost.combine_input_records += records.len() as u64;
                records = shuffle::combine_sorted(records, &**comb)?;
                task_cost.combine_output_records += records.len() as u64;
            }
        }

        Ok(TaskOutput {
            records,
            cost: task_cost,
            node,
            output_file,
            wall_ns: wall_start.elapsed().as_nanos() as u64,
            wall_phases,
        })
    }

    /// Deterministic alternate node for retry `attempt` (1-based retries):
    /// walk the split's preferred hosts, then the whole cluster, skipping the
    /// node that just failed.
    fn retry_node(&self, task_idx: usize, failed: NodeId, attempt: u32) -> NodeId {
        let n = self.memories.len();
        let split = &self.splits[task_idx];
        let mut candidates: Vec<NodeId> = split.hosts.iter().copied().filter(|h| h.0 < n).collect();
        for i in 0..n {
            let node = NodeId(i);
            if !candidates.contains(&node) {
                candidates.push(node);
            }
        }
        candidates.retain(|c| *c != failed);
        if candidates.is_empty() {
            return failed; // single-node cluster: nowhere else to go
        }
        candidates[(attempt as usize - 1) % candidates.len()]
    }
}

/// The MapReduce engine bound to one simulated cluster.
pub struct Engine {
    dfs: Arc<Dfs>,
    local: Arc<NodeLocalStore>,
    params: CostParams,
    obs: Arc<Obs>,
}

impl Engine {
    pub fn new(dfs: Arc<Dfs>) -> Engine {
        let params = CostParams::paper();
        Engine::with_params(dfs, params)
    }

    pub fn with_params(dfs: Arc<Dfs>, params: CostParams) -> Engine {
        let nodes = dfs.cluster().num_workers();
        Engine {
            dfs,
            local: Arc::new(NodeLocalStore::new(nodes)),
            params,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability hub; every job run afterwards records its
    /// history, spans, and metrics there.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn local_store(&self) -> &Arc<NodeLocalStore> {
        &self.local
    }

    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Run a job with no client-side artifacts.
    pub fn run_job(&self, spec: &JobSpec) -> Result<JobResult> {
        self.run_job_with(spec, ClientArtifacts::default())
    }

    /// Run a job, making `client.cache` available to every task.
    pub fn run_job_with(&self, spec: &JobSpec, client: ClientArtifacts) -> Result<JobResult> {
        let io_scope = if self.obs.is_enabled() {
            Some(self.dfs.io_scope())
        } else {
            None
        };
        let cluster = self.dfs.cluster().clone();
        let n = cluster.num_workers();
        let splits = spec.input.splits(&self.dfs, &spec.conf)?;
        let concurrency = scheduler::concurrency_per_node(&cluster, spec.declared_task_memory);
        let assignment = scheduler::assign_map_tasks(&splits, &cluster);
        let threads = spec.task_threads.unwrap_or(1).max(1);

        let node_states: Vec<Arc<NodeState>> = (0..n).map(|_| Arc::new(NodeState::new())).collect();
        let memories: Vec<Arc<MemoryTracker>> = (0..n)
            .map(|_| Arc::new(MemoryTracker::new(cluster.node.memory_bytes)))
            .collect();
        let ledger = Arc::new(MemoryLedger::new());
        let env = MapTaskEnv {
            spec,
            splits: &splits,
            dfs: &self.dfs,
            local: &self.local,
            cache: &client.cache,
            node_states: &node_states,
            memories: &memories,
            ledger: &ledger,
            concurrency,
            threads,
            map_only: spec.reducer.is_none(),
        };

        let mut tasks_by_node: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in assignment.iter().enumerate() {
            tasks_by_node[node.0].push(i);
        }

        // --- Map phase, first wave: one worker thread per node. Failures
        // are collected, not fatal (except OOM). ---
        let outputs: Vec<Mutex<Option<TaskOutput>>> =
            splits.iter().map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<(usize, NodeId, ClydeError)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for (node_idx, task_list) in tasks_by_node.iter().enumerate() {
                if task_list.is_empty() {
                    continue;
                }
                let node = NodeId(node_idx);
                let env = &env;
                let outputs = &outputs;
                let failures = &failures;
                scope.spawn(move || {
                    for &task_idx in task_list {
                        match env.exec(task_idx, node) {
                            Ok(out) => *outputs[task_idx].lock() = Some(out),
                            Err(e) => failures.lock().push((task_idx, node, e)),
                        }
                    }
                });
            }
        });

        // --- Retry wave: re-execute failed tasks on alternate nodes. ---
        let mut failed_attempts = 0u32;
        let mut failures = failures.into_inner();
        failures.sort_by_key(|(idx, _, _)| *idx); // deterministic order
        let max_attempts = spec.max_task_attempts.max(1);
        for (task_idx, first_node, mut last_err) in failures {
            if last_err.is_oom() {
                return Err(last_err);
            }
            failed_attempts += 1;
            let mut done = false;
            let mut prev_node = first_node;
            for attempt in 1..max_attempts {
                let node = env.retry_node(task_idx, prev_node, attempt);
                match env.exec(task_idx, node) {
                    Ok(out) => {
                        *outputs[task_idx].lock() = Some(out);
                        done = true;
                        break;
                    }
                    Err(e) if e.is_oom() => return Err(e),
                    Err(e) => {
                        failed_attempts += 1;
                        last_err = e;
                        prev_node = node;
                    }
                }
            }
            if !done {
                return Err(ClydeError::MapReduce(format!(
                    "map task {task_idx} failed after {max_attempts} attempts: {last_err}"
                )));
            }
        }

        let mut task_outputs: Vec<TaskOutput> = Vec::with_capacity(splits.len());
        for o in outputs {
            task_outputs.push(o.into_inner().ok_or_else(|| {
                ClydeError::MapReduce("map task produced no output record".into())
            })?);
        }

        let map_tasks: Vec<TaskProfile> = task_outputs
            .iter()
            .map(|t| TaskProfile {
                node: t.node,
                cost: t.cost,
                wall_ns: t.wall_ns,
            })
            .collect();
        // Roll runner-attributed wall clock up to the job, in phase order.
        let mut wall_phases: Vec<(Phase, u64)> = Vec::new();
        for phase in Phase::all() {
            let ns: u64 = task_outputs
                .iter()
                .flat_map(|t| &t.wall_phases)
                .filter(|(p, _)| p == phase)
                .map(|(_, ns)| ns)
                .sum();
            if ns > 0 {
                wall_phases.push((*phase, ns));
            }
        }
        let total_map = map_tasks
            .iter()
            .fold(TaskCost::new(), |acc, t| acc.merge(&t.cost));
        let locality = {
            let total = total_map.local_bytes + total_map.remote_bytes;
            if total == 0 {
                1.0
            } else {
                total_map.local_bytes as f64 / total as f64
            }
        };

        let mut rows: Vec<Row> = Vec::new();
        let mut output_files: Vec<String> = Vec::new();
        let mut reduce_tasks: Vec<TaskProfile> = Vec::new();
        let mut shuffle_bytes = 0u64;

        if env.map_only {
            match &spec.output {
                OutputSpec::Memory => {
                    for t in &mut task_outputs {
                        for (k, v) in std::mem::take(&mut t.records) {
                            rows.push(keycodec::decode_row(&k)?.concat(&v));
                        }
                    }
                }
                OutputSpec::DfsDir(_) => {
                    output_files
                        .extend(task_outputs.iter_mut().filter_map(|t| t.output_file.take()));
                }
            }
        } else {
            let reducer = spec.reducer.as_ref().expect("reduce path requires reducer");
            let num_reducers = spec.num_reducers.max(1);
            // Partition every task's sorted output.
            type SortedRun = Vec<(Vec<u8>, Row)>;
            let mut runs: Vec<Vec<SortedRun>> = (0..num_reducers).map(|_| Vec::new()).collect();
            for t in &mut task_outputs {
                let mut per_part: Vec<SortedRun> = (0..num_reducers).map(|_| Vec::new()).collect();
                for (k, v) in std::mem::take(&mut t.records) {
                    let p = shuffle::partition_of(&k, num_reducers);
                    shuffle_bytes += (k.len() + v.heap_size()) as u64;
                    per_part[p].push((k, v));
                }
                for (p, run) in per_part.into_iter().enumerate() {
                    if !run.is_empty() {
                        runs[p].push(run);
                    }
                }
            }

            let reduce_nodes = scheduler::assign_reduce_tasks(num_reducers, &cluster);
            for (r, node) in reduce_nodes.iter().enumerate() {
                let wall_start = Instant::now();
                let task_runs = std::mem::take(&mut runs[r]);
                let mut cost = TaskCost::new();
                cost.merge_runs = task_runs.len() as u64;
                let merged = shuffle::merge_sorted_runs(task_runs);
                cost.deser_rows = merged.len() as u64;
                let mut out_rows = Vec::new();
                shuffle::reduce_sorted(&merged, &**reducer, &mut out_rows)?;
                match &spec.output {
                    OutputSpec::Memory => rows.append(&mut out_rows),
                    OutputSpec::DfsDir(dir) => {
                        let path = format!("{dir}/part-r-{r:05}");
                        let payload = rowcodec::write_rows(&out_rows);
                        cost.output_bytes = payload.len() as u64;
                        self.dfs.write_file(&path, None, &payload)?;
                        output_files.push(path);
                    }
                }
                reduce_tasks.push(TaskProfile {
                    node: *node,
                    cost,
                    wall_ns: wall_start.elapsed().as_nanos() as u64,
                });
            }
        }

        let profile = JobProfile {
            name: spec.name.clone(),
            map_tasks,
            reduce_tasks,
            map_concurrency: concurrency,
            shuffle_bytes,
            client_build_rows: client.build_rows,
            client_publish_bytes: client.cache.disseminated_bytes(),
            memory_per_slot: ledger.per_slot(),
            memory_shared: ledger.shared(),
            failed_attempts,
            split_locality: scheduler::locality_fraction(&splits, &assignment),
            wall_phases,
        };
        let cost = profile.price(&self.params, &cluster)?;
        if self.obs.is_enabled() {
            self.publish_job(&profile, &cost, &cluster, io_scope.as_ref());
        }
        Ok(JobResult {
            rows,
            output_files,
            profile,
            cost,
            locality,
        })
    }

    /// Record the finished job into the observability hub: history + spans
    /// plus the unified metrics (engine counters, scheduler locality, DFS
    /// I/O attributed to this job via the scoped snapshot).
    fn publish_job(
        &self,
        profile: &JobProfile,
        cost: &crate::cost::JobCost,
        cluster: &clyde_dfs::ClusterSpec,
        io_scope: Option<&clyde_dfs::IoScope<'_>>,
    ) {
        let hist = history::job_history(profile, cost, &self.params, cluster);
        let m = self.obs.metrics();
        m.counter_add("mapred.jobs", 1);
        m.counter_add("mapred.map_tasks", profile.map_tasks.len() as u64);
        m.counter_add("mapred.reduce_tasks", profile.reduce_tasks.len() as u64);
        m.counter_add("mapred.failed_attempts", u64::from(profile.failed_attempts));
        m.counter_add("mapred.shuffle.bytes", profile.shuffle_bytes);

        let total_map = profile.total_map_cost();
        let total_reduce = profile.total_reduce_cost();
        m.counter_add("mapred.emit.records", total_map.emit_records);
        m.counter_add("mapred.emit.bytes", total_map.emit_bytes);
        m.counter_add(
            "mapred.combine.input_records",
            total_map.combine_input_records,
        );
        m.counter_add(
            "mapred.combine.output_records",
            total_map.combine_output_records,
        );
        m.counter_add("mapred.shuffle.merged_runs", total_reduce.merge_runs);
        m.counter_add("dfs.scan.local_bytes", total_map.local_bytes);
        m.counter_add("dfs.scan.remote_bytes", total_map.remote_bytes);
        m.counter_add("dfs.zone.checked", total_map.zone_checked);
        m.counter_add("dfs.zone.skipped", total_map.zone_skipped);
        if let Some(scope) = io_scope {
            let delta = scope.delta();
            m.counter_add("dfs.io.local_read_bytes", delta.total_local_read());
            m.counter_add("dfs.io.remote_read_bytes", delta.total_remote_read());
            m.counter_add("dfs.io.written_bytes", delta.total_written());
        }
        m.gauge_set("scheduler.split_locality", profile.split_locality);
        m.gauge_set("mapred.scan_locality", hist.locality);
        for t in &hist.tasks {
            let name = match t.kind {
                TaskKind::Map => "mapred.map_task_sim_s",
                TaskKind::Reduce => "mapred.reduce_task_sim_s",
            };
            m.histogram_record(name, t.dur_s);
            m.histogram_record("mapred.task_wall_ms", t.wall_ns as f64 / 1e6);
        }
        self.obs.record_job(hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::VecInputFormat;
    use crate::input::{InputFormat, Reader};
    use crate::runner::{FnMapRunner, FnMapper, RowMapRunner};
    use crate::shuffle::FnReducer;
    use crate::JobConf;
    use clyde_common::row;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Wraps an input format, failing `open` for split 0 on its first
    /// `failures` calls — a crash-on-read fault injection.
    struct FlakyInputFormat {
        inner: VecInputFormat,
        failures: AtomicU32,
    }

    impl InputFormat for FlakyInputFormat {
        fn splits(&self, dfs: &Dfs, conf: &JobConf) -> Result<Vec<InputSplit>> {
            self.inner.splits(dfs, conf)
        }

        fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
            if split.index == 0
                && self
                    .failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        if v > 0 {
                            Some(v - 1)
                        } else {
                            None
                        }
                    })
                    .is_ok()
            {
                return Err(ClydeError::MapReduce("injected split-0 failure".into()));
            }
            self.inner.open(split, part, io)
        }
    }

    fn sum_job(input: Arc<dyn InputFormat>) -> JobSpec {
        let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&row![0i64], v.clone());
            Ok(())
        }));
        let mut spec = JobSpec::new("sum", input, Arc::new(mapper));
        spec.reducer = Some(Arc::new(FnReducer(
            |_k: &Row, values: &[Row], out: &mut Vec<Row>| {
                let s: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
                out.push(row![s]);
                Ok(())
            },
        )));
        spec.num_reducers = 1;
        spec
    }

    fn rows() -> Vec<Row> {
        (1..=10i64).map(|i| row![i]).collect()
    }

    #[test]
    fn transient_task_failure_is_retried_on_another_node() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 3),
            failures: AtomicU32::new(1),
        };
        let spec = sum_job(Arc::new(flaky));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
        assert_eq!(result.profile.failed_attempts, 1);
    }

    #[test]
    fn repeated_transient_failures_exhaust_then_succeed_within_budget() {
        let dfs = Dfs::for_tests(4);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 2),
            failures: AtomicU32::new(3), // attempts 1..3 fail, 4th succeeds
        };
        let spec = sum_job(Arc::new(flaky)); // max_task_attempts = 4
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
        assert_eq!(result.profile.failed_attempts, 3);
    }

    #[test]
    fn permanent_failure_fails_the_job_after_the_attempt_budget() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 2),
            failures: AtomicU32::new(u32::MAX), // never recovers
        };
        let spec = sum_job(Arc::new(flaky));
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.to_string().contains("4 attempts"), "{err}");
    }

    #[test]
    fn oom_is_not_retried() {
        let dfs = Dfs::for_tests(2); // 4 GB nodes
        let engine = Engine::new(Arc::clone(&dfs));
        let attempts = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&attempts);
        let runner = FnMapRunner(move |ctx: &MapTaskContext<'_>| {
            a2.fetch_add(1, Ordering::SeqCst);
            ctx.charge_memory_shared(1 << 40)?; // 1 TB
            Ok(())
        });
        let spec = JobSpec::new(
            "oom",
            Arc::new(VecInputFormat::new(rows(), 1)),
            Arc::new(runner),
        );
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.is_oom());
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "OOM must not retry");
    }

    #[test]
    fn node_death_mid_job_is_survived_by_retries() {
        // Data with replication 2 on 3 nodes; kill one node's replicas
        // before running: tasks preferring that node fail their reads and
        // retry elsewhere against surviving replicas.
        let dfs = Dfs::for_tests(3);
        let payload = rowcodec::write_rows(&rows());
        dfs.write_file("/in/part-00000", None, &payload).unwrap();
        let victim = dfs.hosts("/in/part-00000").unwrap()[0];

        struct DfsRowsFormat;
        impl InputFormat for DfsRowsFormat {
            fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                crate::formats::RowBinInputFormat::new("/in").splits(dfs, &JobConf::new())
            }
            fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                crate::formats::RowBinInputFormat::new("/in").open(split, part, io)
            }
        }

        let engine = Engine::new(Arc::clone(&dfs));
        dfs.kill_node(victim);
        let spec = sum_job(Arc::new(DfsRowsFormat));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
    }
}
