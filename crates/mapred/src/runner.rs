//! Map runners.
//!
//! The `MapRunner` is Hadoop's hook for owning the entire map-side loop
//! (paper Section 3): the default implementation opens the split's record
//! reader and applies the map function record by record; alternates — like
//! Clydesdale's multi-threaded `MTMapRunner` in `clydesdale::mtrunner` — can
//! be substituted per job without touching the framework.

use crate::task::MapTaskContext;
use clyde_common::{Result, Row};

/// Owns the execution of one map task.
pub trait MapRunner: Send + Sync {
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()>;
}

/// A map function over (key, value) records.
pub trait Mapper: Send + Sync {
    fn map(&self, key: &Row, value: &Row, ctx: &MapTaskContext<'_>) -> Result<()>;
}

/// The default MapRunner: open the reader, apply the map function to every
/// record. One record at a time — this is exactly the per-record framework
/// overhead the paper's Section 5.3 measures.
pub struct RowMapRunner<M: Mapper> {
    mapper: M,
}

impl<M: Mapper> RowMapRunner<M> {
    pub fn new(mapper: M) -> RowMapRunner<M> {
        RowMapRunner { mapper }
    }
}

impl<M: Mapper> MapRunner for RowMapRunner<M> {
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()> {
        // Multi-splits expose several parts; the default runner drains them
        // sequentially (only the multi-threaded runner fans them out).
        for part in 0..ctx.split.spec.num_parts() {
            let mut reader = ctx.input.open(ctx.split, part, &ctx.io)?.into_rows()?;
            let mut rows = 0u64;
            while let Some((key, value)) = reader.next()? {
                rows += 1;
                self.mapper.map(&key, &value, ctx)?;
            }
            ctx.add_cost(|c| c.deser_rows += rows);
        }
        Ok(())
    }
}

/// A [`Mapper`] from a closure, for tests and small examples.
pub struct FnMapper<F>(pub F)
where
    F: Fn(&Row, &Row, &MapTaskContext<'_>) -> Result<()> + Send + Sync;

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&Row, &Row, &MapTaskContext<'_>) -> Result<()> + Send + Sync,
{
    fn map(&self, key: &Row, value: &Row, ctx: &MapTaskContext<'_>) -> Result<()> {
        (self.0)(key, value, ctx)
    }
}

/// A complete [`MapRunner`] from a closure over the task context.
pub struct FnMapRunner<F>(pub F)
where
    F: Fn(&MapTaskContext<'_>) -> Result<()> + Send + Sync;

impl<F> MapRunner for FnMapRunner<F>
where
    F: Fn(&MapTaskContext<'_>) -> Result<()> + Send + Sync,
{
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()> {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conf::JobConf;
    use crate::input::{InputFormat, InputSplit, Reader, RecordReader, SplitSpec};
    use crate::task::TaskIo;
    use clyde_common::row;
    use clyde_dfs::Dfs;
    use std::sync::Arc;

    /// A multi-part format: part `p` of a Groups split yields the rows
    /// `[group*10, group*10+1)`.
    struct MultiPartFormat;

    struct OneRow(Option<Row>);

    impl RecordReader for OneRow {
        fn next(&mut self) -> Result<Option<(Row, Row)>> {
            Ok(self.0.take().map(|r| (Row::empty(), r)))
        }
    }

    impl InputFormat for MultiPartFormat {
        fn splits(&self, _dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
            Ok(vec![InputSplit {
                index: 0,
                spec: SplitSpec::Groups {
                    base: "/x".into(),
                    groups: vec![3, 7, 9],
                },
                hosts: vec![],
                bytes: 1,
            }])
        }

        fn open(&self, split: &InputSplit, part: usize, _io: &TaskIo) -> Result<Reader> {
            let SplitSpec::Groups { groups, .. } = &split.spec else {
                unreachable!("test split is Groups")
            };
            Ok(Reader::Rows(Box::new(OneRow(Some(row![
                (groups[part] * 10) as i64
            ])))))
        }
    }

    /// The default runner drains every constituent part of a multi-split
    /// sequentially (the single-threaded counterpart of MTMapRunner's
    /// `getMultipleReaders()` fan-out).
    #[test]
    fn default_runner_drains_all_parts_in_order() {
        use crate::engine::Engine;
        use crate::job::JobSpec;
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&Row::empty(), v.clone());
            Ok(())
        }));
        let spec = JobSpec::new("parts", Arc::new(MultiPartFormat), Arc::new(mapper));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![30i64], row![70i64], row![90i64]]);
        // Each materialized record was counted for the cost model.
        assert_eq!(result.profile.total_map_cost().deser_rows, 3);
    }

    #[test]
    fn fn_map_runner_bypasses_readers_entirely() {
        use crate::engine::Engine;
        use crate::formats::VecInputFormat;
        use crate::job::JobSpec;
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let runner = FnMapRunner(|ctx: &crate::task::MapTaskContext<'_>| {
            ctx.emit(&Row::empty(), row![ctx.split.index as i64]);
            Ok(())
        });
        let spec = JobSpec::new(
            "raw",
            Arc::new(VecInputFormat::new(vec![row![0i64]; 4], 2)),
            Arc::new(runner),
        );
        let result = engine.run_job(&spec).unwrap();
        let mut ids: Vec<i64> = result
            .rows
            .iter()
            .map(|r| r.at(0).as_i64().unwrap())
            .collect();
        ids.sort();
        assert_eq!(ids, vec![0, 1]);
    }
}
