//! `MTMapRunner` — the multi-threaded map runner (paper Figure 5).
//!
//! One map task per node occupies every map slot. The runner:
//!
//! 1. obtains the dimension hash tables from per-node state, building them
//!    (single-threaded) only if this is the first task of the query on this
//!    node — JVM reuse means subsequent tasks find them ready;
//! 2. unpacks the multi-split and hands each constituent split to one of its
//!    threads (`getMultipleReaders()`), so record deserialization is never a
//!    shared bottleneck (Section 5.1);
//! 3. each thread probes its blocks against the *shared, read-only* tables,
//!    aggregating into a thread-local group map;
//! 4. the merged per-task group map is emitted — one record per group, the
//!    combiner effect of Figure 4.

use crate::config::Features;
use crate::hashtable::DimTables;
use crate::probe::{
    probe_block, probe_block_vec, probe_row, GroupAcc, GroupLayout, ProbePlan, ProbeStats, SelBuf,
};
use clyde_common::lockorder::Mutex;
use clyde_common::obs::{Phase, WallTimer};
use clyde_common::{rowcodec, ClydeError, Datum, FxHashMap, Result, Row, Schema};
use clyde_mapred::{MapRunner, MapTaskContext, Reader};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::StarQuery;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The Clydesdale map runner. Also handles the single-threaded ablation
/// (`features.multithreading == false`): the same code path with one thread
/// and per-task (unshared, per-slot-duplicated) hash tables.
pub struct MtMapRunner {
    pub query: Arc<StarQuery>,
    /// Schema of the scanned (projected) fact columns, in scan order.
    pub scan_schema: Schema,
    pub layout: SsbLayout,
    pub features: Features,
}

impl MtMapRunner {
    fn acquire_tables(&self, ctx: &MapTaskContext<'_>) -> Result<Arc<DimTables>> {
        let key = format!("clydesdale.tables.{}", self.query.id);
        let (tables, built) = ctx.node_state.get_or_try_init(&key, || {
            DimTables::build_all(&self.query.joins, |dim| {
                // Dimensions come from the node-local cache (Figure 2); a
                // node that lost its copy re-fetches from the DFS.
                let path = self.layout.dim_bin(dim);
                let data = ctx.local_store.get_or_fetch(ctx.node, &path, &ctx.io.dfs)?;
                rowcodec::read_rows(&data)
            })
        })?;
        if built {
            ctx.add_cost(|c| c.build_rows += tables.build_rows);
            if self.features.multithreading {
                // One shared copy per node, alive for the whole job.
                ctx.charge_memory_shared(tables.mem_bytes)?;
            } else {
                // Every slot holds its own copy — the configuration the
                // paper's Section 5.1 calls impractical.
                ctx.charge_memory_per_slot(tables.mem_bytes)?;
            }
        }
        Ok(tables)
    }
}

impl MapRunner for MtMapRunner {
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()> {
        let build_start = WallTimer::start();
        let tables = self.acquire_tables(ctx)?;
        ctx.note_wall_phase(Phase::HashBuild, build_start.elapsed_ns());
        let plan = ProbePlan::compile(&self.query, &self.scan_schema)?;
        // The vectorized kernel needs a packed group-key layout; fall back
        // to the scalar kernel when ablated or when the key would not fit.
        let layout = if self.features.vectorized {
            GroupLayout::new(&plan, &tables)
        } else {
            None
        };

        let parts = ctx.split.spec.num_parts();
        // Spawn count is a host-execution knob; pricing uses `ctx.threads`.
        let threads = (ctx.host_threads as usize).min(parts).max(1);
        let next_part = AtomicUsize::new(0);
        let global_acc: Mutex<FxHashMap<Row, i64>> = Mutex::new(FxHashMap::default());
        let global_vacc: Option<Mutex<GroupAcc>> = layout
            .as_ref()
            .map(|l| Mutex::new(GroupAcc::new(l, &self.query.aggregate)));
        let global_stats: Mutex<ProbeStats> = Mutex::new(ProbeStats::default());
        // Wall-clock spent probing, summed across the runner's threads
        // (observability only — simulated time comes from the cost model).
        let probe_ns = AtomicU64::new(0);

        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let tables = &tables;
                let plan = &plan;
                let layout = &layout;
                let next_part = &next_part;
                let global_acc = &global_acc;
                let global_vacc = &global_vacc;
                let global_stats = &global_stats;
                let probe_ns = &probe_ns;
                handles.push(scope.spawn(move || -> Result<()> {
                    let thread_start = WallTimer::start();
                    let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
                    let mut vacc = layout
                        .as_ref()
                        .map(|l| GroupAcc::new(l, &self.query.aggregate));
                    let mut buf = SelBuf::default();
                    let mut stats = ProbeStats::default();
                    loop {
                        let part = next_part.fetch_add(1, Ordering::Relaxed);
                        if part >= parts {
                            break;
                        }
                        match ctx.input.open(ctx.split, part, &ctx.io)? {
                            Reader::Blocks(mut r) => {
                                while let Some(block) = r.next_block()? {
                                    match (&mut vacc, layout) {
                                        (Some(va), Some(l)) => probe_block_vec(
                                            &block, plan, tables, l, va, &mut buf, &mut stats,
                                        )?,
                                        _ => {
                                            probe_block(&block, plan, tables, &mut acc, &mut stats)?
                                        }
                                    }
                                }
                            }
                            Reader::Rows(mut r) => {
                                while let Some((_, row)) = r.next()? {
                                    probe_row(&row, plan, tables, &mut acc, &mut stats)?;
                                }
                            }
                        }
                    }
                    // Merge the thread-local aggregates with the query's
                    // fold (sum/min/max/count are all algebraic).
                    let agg = &self.query.aggregate;
                    if !acc.is_empty() {
                        let mut g = global_acc.lock();
                        // clyde-lint: allow(unordered, reason=algebraic fold into a map is commutative; emit sorts)
                        for (k, v) in acc {
                            let slot = g.entry(k).or_insert_with(|| agg.identity());
                            *slot = agg.fold(*slot, v);
                        }
                    }
                    if let (Some(va), Some(gv)) = (vacc, global_vacc) {
                        gv.lock().merge(va, agg);
                    }
                    global_stats.lock().add(&stats);
                    probe_ns.fetch_add(thread_start.elapsed_ns(), Ordering::Relaxed);
                    Ok(())
                }));
            }
            for h in handles {
                h.join()
                    .map_err(|_| ClydeError::MapReduce("probe thread panicked".into()))??;
            }
            Ok(())
        })?;

        ctx.note_wall_phase(Phase::Probe, probe_ns.into_inner());
        let emit_start = WallTimer::start();
        let stats = global_stats.into_inner();
        ctx.add_cost(|c| {
            if self.features.block_iteration {
                c.block_rows += stats.rows;
            } else {
                c.rowiter_rows += stats.rows;
            }
            c.probe_rows += stats.probes;
        });

        // Rematerialize the packed-key groups once per task: distinct
        // dimension rows can share aux values, so fold (don't overwrite)
        // into the row-keyed map.
        let mut acc = global_acc.into_inner();
        if let (Some(vacc), Some(l)) = (global_vacc, &layout) {
            let agg = &self.query.aggregate;
            for (key, v) in vacc.into_inner().entries() {
                let row = l.rematerialize(key, &tables);
                let slot = acc.entry(row).or_insert_with(|| agg.identity());
                *slot = agg.fold(*slot, v);
            }
        }

        // Emit one record per group: key = group columns, value = partial sum.
        let mut groups: Vec<(Row, i64)> = acc.into_iter().collect();
        groups.sort(); // deterministic emission order
        for (key, sum) in groups {
            ctx.emit(&key, Row::new(vec![Datum::I64(sum)]));
        }
        ctx.note_wall_phase(Phase::Emit, emit_start.elapsed_ns());
        Ok(())
    }
}
