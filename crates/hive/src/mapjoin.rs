//! The mapjoin (broadcast hash join) stage — paper Figure 6.
//!
//! The Hive master builds a hash table over the (filtered) dimension,
//! serializes it, and disseminates it through the distributed cache. Each
//! map task then loads and deserializes **its own copy** — once per task,
//! once per slot in memory — and probes its local splits of the larger
//! side. Both per-task reload cost (`state_load_bytes`) and per-slot memory
//! duplication (`charge_memory_per_slot`) are accounted, because they are
//! the two effects the paper blames for Hive's mapjoin behaviour
//! (Section 6.3's 4,887 reloads; Section 6.4's cluster-A OOMs).

use clyde_columnar::RcFileReader;
use clyde_common::{rowcodec, ClydeError, Datum, FxHashMap, Result, Row, Schema};
use clyde_dfs::Dfs;
use clyde_mapred::engine::ClientArtifacts;
use clyde_mapred::{DistCache, MapRunner, MapTaskContext, Reader};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::{fact_preds_eval_row, DimJoin, FactPred};
use clyde_ssb::schema as ssb_schema;
use std::sync::Arc;

/// Build the dimension hash table on the job client and publish it.
///
/// Returns the [`ClientArtifacts`] to submit the job with, plus the
/// in-memory footprint one copy of the table will occupy in a map task.
pub fn build_and_publish(
    dfs: &Arc<Dfs>,
    layout: &SsbLayout,
    join: &DimJoin,
    cache_key: &str,
) -> Result<(ClientArtifacts, u64)> {
    let dim_schema = ssb_schema::schema_of(&join.dimension)
        .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
    let reader = RcFileReader::open(dfs, &layout.table_rc(&join.dimension))?;
    let rows = reader.read_all_rows(dfs)?;
    let pred = join.predicate.compile(&dim_schema)?;
    let pk_idx = dim_schema.index_of(&join.pk)?;
    let aux_idx: Vec<usize> = join
        .aux
        .iter()
        .map(|a| dim_schema.index_of(a))
        .collect::<Result<_>>()?;

    let mut serialized: Vec<Row> = Vec::new();
    for r in &rows {
        if !pred.eval(r) {
            continue;
        }
        let mut entry = Row::with_capacity(1 + aux_idx.len());
        entry.push(r.at(pk_idx).clone());
        for &i in &aux_idx {
            entry.push(r.at(i).clone());
        }
        serialized.push(entry);
    }
    // Hive-era Java in-memory footprint per entry: HashMap$Entry + boxed
    // key + deserialized Writable row object graph (~560 B) plus ~120 B per
    // auxiliary field. Calibrated against Section 6.3 ("100MB compressed on
    // disk and about 500MB decompressed in memory" for Q2.1's 400 K-entry
    // Supplier table) and against the OOM boundary: with 6 slots each
    // holding a copy, the customer-joining queries (Q3.1, Q4.*) must exceed
    // cluster A's 16 GB but fit cluster B's 32 GB (Section 6.4). Clydesdale
    // avoids this footprint by design (compact shared tables), which is why
    // its memory model in `clydesdale::hashtable` is byte-accurate instead.
    let mem_bytes = serialized.len() as u64 * (560 + 120 * aux_idx.len() as u64);
    let payload = rowcodec::write_rows(&serialized);
    let cache = Arc::new(DistCache::new());
    cache.publish(cache_key, bytes::Bytes::from(payload));
    Ok((
        ClientArtifacts {
            cache,
            build_rows: rows.len() as u64,
        },
        mem_bytes,
    ))
}

/// The map task of a mapjoin stage: load the broadcast table, probe the
/// local split, emit joined rows (map-only; output goes to the stage's
/// DFS directory).
pub struct MapJoinRunner {
    pub cache_key: String,
    /// Index of the join's foreign key in the incoming row schema.
    pub fk_idx: usize,
    /// Fact predicates applied on the stream (first stage only) with the
    /// schema to resolve them against.
    pub fact_preds: Vec<FactPred>,
    pub input_schema: Schema,
    /// One copy of the hash table costs this much memory per map slot.
    pub table_mem_bytes: u64,
}

impl MapRunner for MapJoinRunner {
    fn run(&self, ctx: &MapTaskContext<'_>) -> Result<()> {
        // Every task reloads and re-deserializes the table: Hive has no JVM
        // reuse here (paper Section 6.4, reason four).
        let payload = ctx.dist_cache.fetch(ctx.node, &self.cache_key)?;
        // The reload cost is priced on the *materialized* (decompressed,
        // Java object graph) size, not the compact wire bytes: the paper's
        // stage 3 pays ~70 s per task re-inflating Supplier's 500 MB table.
        ctx.add_cost(|c| c.state_load_bytes += self.table_mem_bytes);
        ctx.charge_memory_per_slot(self.table_mem_bytes)?;
        let entries = rowcodec::read_rows(&payload)?;
        let mut table: FxHashMap<i64, Row> = FxHashMap::default();
        for e in entries {
            let pk = e
                .at(0)
                .as_i64()
                .ok_or_else(|| ClydeError::Plan("non-integer dimension key".into()))?;
            let aux = Row::new(e.values()[1..].to_vec());
            table.insert(pk, aux);
        }

        for part in 0..ctx.split.spec.num_parts() {
            let reader = ctx.input.open(ctx.split, part, &ctx.io)?;
            let mut rows_seen = 0u64;
            let Reader::Rows(mut r) = reader else {
                return Err(ClydeError::MapReduce(
                    "hive mapjoin expects row readers".into(),
                ));
            };
            while let Some((_, row)) = r.next()? {
                rows_seen += 1;
                if !self.fact_preds.is_empty()
                    && !fact_preds_eval_row(&self.fact_preds, &row, &self.input_schema)?
                {
                    continue;
                }
                let fk = row
                    .at(self.fk_idx)
                    .as_i64()
                    .ok_or_else(|| ClydeError::Plan("non-integer foreign key".into()))?;
                if let Some(aux) = table.get(&fk) {
                    ctx.emit(&Row::empty(), row.concat(aux));
                }
            }
            ctx.add_cost(|c| c.deser_rows += rows_seen);
        }
        Ok(())
    }
}

/// The output schema of a mapjoin stage: input columns + the join's aux.
pub fn joined_schema(input: &Schema, join: &DimJoin) -> Result<Schema> {
    let dim_schema = ssb_schema::schema_of(&join.dimension)
        .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
    let mut fields = input.fields().to_vec();
    for a in &join.aux {
        fields.push(dim_schema.field(dim_schema.index_of(a)?).clone());
    }
    Ok(Schema::new(fields))
}

/// Estimate of a decoded datum row set size, used in tests.
pub fn table_entry(pk: i64, aux: Vec<Datum>) -> Row {
    let mut r = Row::with_capacity(1 + aux.len());
    r.push(Datum::I64(pk));
    for d in aux {
        r.push(d);
    }
    r
}
