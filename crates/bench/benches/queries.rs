//! End-to-end wall-clock query execution through the full MapReduce stack
//! (real time of this implementation, not simulated cluster time):
//! Clydesdale vs both Hive plans on representative SSB queries.

use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_hive::{Hive, JoinStrategy};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn setup() -> (Arc<Dfs>, SsbLayout) {
    let dfs = Dfs::new(
        ClusterSpec::tiny(4),
        DfsOptions {
            block_size: 8 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(0.01, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 10_000,
            cif: true,
            rcfile: true,
            text: false,
            cluster_by_date: true,
        },
    )
    .expect("load");
    (dfs, layout)
}

fn bench_queries(c: &mut Criterion) {
    let (dfs, layout) = setup();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    clyde.warm_dimension_cache().expect("warm");
    let mapjoin = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin);
    let repart = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::Repartition);

    let mut group = c.benchmark_group("queries_sf0.01");
    group.sample_size(10);
    for id in ["Q1.1", "Q2.1", "Q4.3"] {
        let q = query_by_id(id).unwrap();
        group.bench_function(BenchmarkId::new("clydesdale", id), |b| {
            b.iter(|| clyde.query(&q).unwrap().rows.len());
        });
        group.bench_function(BenchmarkId::new("hive_mapjoin", id), |b| {
            b.iter(|| mapjoin.query(&q).unwrap().rows.len());
        });
        group.bench_function(BenchmarkId::new("hive_repartition", id), |b| {
            b.iter(|| repart.query(&q).unwrap().rows.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
