//! SSB table schemas and shared domains (paper Figure 1).

use clyde_common::{Field, Schema};

/// Table names as used in DFS paths and query descriptors.
pub const LINEORDER: &str = "lineorder";
pub const CUSTOMER: &str = "customer";
pub const SUPPLIER: &str = "supplier";
pub const PART: &str = "part";
pub const DATE: &str = "date";

/// The five TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index into [`REGIONS`].
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// SSB city: the nation name truncated/padded to 9 characters plus a digit
/// (`"UNITED KI1"`, `"CHINA    4"`). Queries 3.3/3.4 match on these.
pub fn city_name(nation: &str, digit: u32) -> String {
    format!("{:<9.9}{}", nation, digit % 10)
}

/// Month names used for `d_month` and the `d_yearmonth` abbreviation.
pub const MONTHS: [(&str, &str); 12] = [
    ("January", "Jan"),
    ("February", "Feb"),
    ("March", "Mar"),
    ("April", "Apr"),
    ("May", "May"),
    ("June", "Jun"),
    ("July", "Jul"),
    ("August", "Aug"),
    ("September", "Sep"),
    ("October", "Oct"),
    ("November", "Nov"),
    ("December", "Dec"),
];

pub const DAYS_OF_WEEK: [&str; 7] = [
    "Wednesday", // 1992-01-01 was a Wednesday
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
    "Monday",
    "Tuesday",
];

pub const SEASONS: [&str; 5] = ["Winter", "Spring", "Summer", "Fall", "Christmas"];

pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const MFGRS: u32 = 5; // MFGR#1 .. MFGR#5
pub const CATEGORIES_PER_MFGR: u32 = 5; // MFGR#11 .. MFGR#55
pub const BRANDS_PER_CATEGORY: u32 = 40; // MFGR#1101 style suffix 1..40

/// The `lineorder` fact table: 17 columns, as in SSB.
pub fn lineorder_schema() -> Schema {
    Schema::new(vec![
        Field::i32("lo_orderkey"),
        Field::i32("lo_linenumber"),
        Field::i32("lo_custkey"),
        Field::i32("lo_partkey"),
        Field::i32("lo_suppkey"),
        Field::i32("lo_orderdate"),
        Field::str("lo_orderpriority"),
        Field::i32("lo_shippriority"),
        Field::i32("lo_quantity"),
        Field::i32("lo_extendedprice"),
        Field::i32("lo_ordtotalprice"),
        Field::i32("lo_discount"),
        Field::i32("lo_revenue"),
        Field::i32("lo_supplycost"),
        Field::i32("lo_tax"),
        Field::i32("lo_commitdate"),
        Field::str("lo_shipmode"),
    ])
}

pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Field::i32("c_custkey"),
        Field::str("c_name"),
        Field::str("c_address"),
        Field::str("c_city"),
        Field::str("c_nation"),
        Field::str("c_region"),
        Field::str("c_phone"),
        Field::str("c_mktsegment"),
    ])
}

pub fn supplier_schema() -> Schema {
    Schema::new(vec![
        Field::i32("s_suppkey"),
        Field::str("s_name"),
        Field::str("s_address"),
        Field::str("s_city"),
        Field::str("s_nation"),
        Field::str("s_region"),
        Field::str("s_phone"),
    ])
}

pub fn part_schema() -> Schema {
    Schema::new(vec![
        Field::i32("p_partkey"),
        Field::str("p_name"),
        Field::str("p_mfgr"),
        Field::str("p_category"),
        Field::str("p_brand1"),
        Field::str("p_color"),
        Field::str("p_type"),
        Field::i32("p_size"),
        Field::str("p_container"),
    ])
}

pub fn date_schema() -> Schema {
    Schema::new(vec![
        Field::i32("d_datekey"),
        Field::str("d_date"),
        Field::str("d_dayofweek"),
        Field::str("d_month"),
        Field::i32("d_year"),
        Field::i32("d_yearmonthnum"),
        Field::str("d_yearmonth"),
        Field::i32("d_daynuminweek"),
        Field::i32("d_daynuminyear"),
        Field::i32("d_weeknuminyear"),
        Field::str("d_sellingseason"),
    ])
}

/// Schema of a table by name.
pub fn schema_of(table: &str) -> Option<Schema> {
    match table {
        LINEORDER => Some(lineorder_schema()),
        CUSTOMER => Some(customer_schema()),
        SUPPLIER => Some(supplier_schema()),
        PART => Some(part_schema()),
        DATE => Some(date_schema()),
        _ => None,
    }
}

/// Primary-key column of a dimension table.
pub fn dimension_pk(table: &str) -> Option<&'static str> {
    match table {
        CUSTOMER => Some("c_custkey"),
        SUPPLIER => Some("s_suppkey"),
        PART => Some("p_partkey"),
        DATE => Some("d_datekey"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nations_map_to_valid_regions() {
        assert_eq!(NATIONS.len(), 25);
        for (n, r) in NATIONS {
            assert!(r < REGIONS.len(), "{n} has bad region");
        }
        // Each region has exactly 5 nations (TPC-H invariant).
        for region in 0..5 {
            assert_eq!(NATIONS.iter().filter(|(_, r)| *r == region).count(), 5);
        }
    }

    #[test]
    fn city_names_match_query_literals() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("UNITED KINGDOM", 5), "UNITED KI5");
        assert_eq!(city_name("CHINA", 3), "CHINA    3");
        assert_eq!(city_name("UNITED STATES", 0), "UNITED ST0");
        assert_eq!(city_name("PERU", 9).len(), 10);
    }

    #[test]
    fn schemas_have_expected_shapes() {
        assert_eq!(lineorder_schema().len(), 17);
        assert_eq!(customer_schema().len(), 8);
        assert_eq!(supplier_schema().len(), 7);
        assert_eq!(part_schema().len(), 9);
        assert_eq!(date_schema().len(), 11);
        assert!(schema_of("lineorder").is_some());
        assert!(schema_of("nope").is_none());
    }

    #[test]
    fn dimension_pks() {
        assert_eq!(dimension_pk(DATE), Some("d_datekey"));
        assert_eq!(dimension_pk(LINEORDER), None);
    }
}
