//! Property test: the three probe kernels are interchangeable.
//!
//! For any SSB query, any generator seed, and any block-size partitioning
//! of the fact table, the vectorized kernel ([`probe_block_vec`]) — under
//! **every [`KernelOpts`] ablation combination** — the scalar block kernel
//! ([`probe_block`]) and the row-at-a-time fallback ([`probe_row`]) must
//! produce identical group aggregates, identical [`ProbeStats`] (rows,
//! probes **and survivors** — early-out must shrink the selection vector
//! exactly as the scalar loop skips), and all must agree with the trusted
//! single-process reference executor. Dimension tables built with
//! dictionary-compiled predicates must behave identically to plain
//! string-comparison builds.

use clyde_common::{FxHashMap, Row, RowBlock, RowBlockBuilder, Schema};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::{all_queries, reference_answer, schema};
use clydesdale::hashtable::DimTables;
use clydesdale::probe::{
    probe_block, probe_block_vec, probe_row, GroupAcc, GroupLayout, KernelOpts, ProbePlan,
    ProbeStats, SelBuf,
};
use proptest::prelude::*;

/// Chunk the projected fact rows into blocks of `block_rows`.
fn blocks_of(
    rows: &[Row],
    scan_schema: &Schema,
    cols: &[usize],
    block_rows: usize,
) -> Vec<RowBlock> {
    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    rows.chunks(block_rows.max(1))
        .map(|chunk| {
            let mut b = RowBlockBuilder::new(&dtypes);
            for r in chunk {
                b.push_row(&r.project(cols)).unwrap();
            }
            b.finish()
        })
        .collect()
}

/// Run the vectorized kernel over `blocks` and rematerialize its packed
/// groups into plain rows (folding — distinct dimension rows can share aux
/// values).
fn run_vec(
    blocks: &[RowBlock],
    plan: &ProbePlan,
    tables: &DimTables,
    layout: &GroupLayout,
    opts: KernelOpts,
) -> (FxHashMap<Row, i64>, ProbeStats) {
    let mut acc = GroupAcc::new(layout, &plan.aggregate);
    let mut buf = SelBuf::default();
    let mut st = ProbeStats::default();
    for b in blocks {
        probe_block_vec(b, plan, tables, layout, &mut acc, &mut buf, &mut st, opts).unwrap();
    }
    let mut folded: FxHashMap<Row, i64> = FxHashMap::default();
    for (k, v) in acc.entries() {
        let key = layout.rematerialize(k, tables);
        let slot = folded
            .entry(key)
            .or_insert_with(|| plan.aggregate.identity());
        *slot = plan.aggregate.fold(*slot, v);
    }
    (folded, st)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Vectorized (all ablation combinations) == scalar block ==
    /// row-at-a-time == reference, for every query shape, over arbitrary
    /// seeds and block boundaries, with and without dictionary-compiled
    /// dimension predicates.
    #[test]
    fn kernels_agree_with_each_other_and_the_reference(
        qi in 0usize..13,
        seed in 0u64..1_000,
        block_rows in 1usize..3_000,
    ) {
        let data = SsbGen::new(0.002, seed).gen_all();
        let q = &all_queries()[qi];
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(q, &scan_schema).unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        let blocks = blocks_of(&data.lineorder, &scan_schema, &cols, block_rows);

        // Scalar block kernel.
        let mut acc_scalar = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        for b in &blocks {
            probe_block(b, &plan, &tables, &mut acc_scalar, &mut st_scalar).unwrap();
        }

        // Row-at-a-time kernel.
        let mut acc_row = FxHashMap::default();
        let mut st_row = ProbeStats::default();
        for lo in &data.lineorder {
            probe_row(&lo.project(&cols), &plan, &tables, &mut acc_row, &mut st_row).unwrap();
        }
        prop_assert_eq!(&acc_row, &acc_scalar, "{}: row != scalar", q.id);
        prop_assert_eq!(st_row, st_scalar, "{}: row stats != scalar", q.id);
        prop_assert_eq!(st_scalar.rows, data.lineorder.len() as u64);

        // Vectorized kernel: every ablation-flag combination must match
        // the scalar kernel bit for bit, counters included.
        let layout = GroupLayout::new(&plan, &tables).expect("packed key fits for SSB");
        for opts in KernelOpts::all_combinations() {
            let (acc_vec, st_vec) = run_vec(&blocks, &plan, &tables, &layout, opts);
            prop_assert_eq!(&acc_vec, &acc_scalar,
                "{}: vectorized({:?}) != scalar", q.id, opts);
            prop_assert_eq!(st_vec, st_scalar,
                "{}: vectorized({:?}) stats != scalar", q.id, opts);
        }

        // Dictionary-compiled dimension predicates: same tables, same
        // probe order, same answers as the plain string-comparison build.
        let dict_tables = DimTables::build_all_with(&q.joins, true, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        prop_assert_eq!(dict_tables.probe_order(), tables.probe_order(),
            "{}: dict build changes probe order", q.id);
        let dict_layout = GroupLayout::new(&plan, &dict_tables).expect("packed key fits");
        let (acc_dict, st_dict) =
            run_vec(&blocks, &plan, &dict_tables, &dict_layout, KernelOpts::all_on());
        prop_assert_eq!(&acc_dict, &acc_scalar, "{}: dict tables != scalar", q.id);
        prop_assert_eq!(st_dict, st_scalar, "{}: dict stats != scalar", q.id);

        // And the reference executor blesses the shared answer.
        let mut rows: Vec<Row> = acc_scalar
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = reference_answer(&data, q).unwrap();
        prop_assert_eq!(rows, expect, "{}: kernels disagree with reference", q.id);
    }
}
