//! Quickstart: load a small Star Schema Benchmark dataset onto the simulated
//! cluster and run one star-join query through Clydesdale.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;

fn main() {
    // 1. A simulated 4-node cluster with a DFS using the co-locating block
    //    placement policy (so CIF column files of a row group share nodes).
    let dfs = Dfs::new(
        ClusterSpec::tiny(4),
        DfsOptions {
            block_size: 4 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );

    // 2. Generate and load SSB at scale factor 0.01 (60 K fact rows):
    //    fact table in CIF, dimension masters in the DFS.
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.01, 46);
    println!(
        "loading SSB SF0.01: {} lineorder rows, {} customers, {} parts...",
        gen.num_lineorders(),
        gen.num_customers(),
        gen.num_parts()
    );
    let opts = loader::LoadOpts {
        rows_per_group: 5_000, // several row groups per node
        ..Default::default()
    };
    loader::load(&dfs, gen, &layout, &opts).expect("load failed");

    // 3. Stand up Clydesdale and cache dimension tables on every node's
    //    local disk (the paper's Figure 2 deployment step).
    let clyde = Clydesdale::new(dfs, layout);
    clyde.warm_dimension_cache().expect("warm failed");

    // 4. Run SSB query 2.1: revenue by year and brand for one part category
    //    sold through American suppliers.
    let query = query_by_id("Q2.1").expect("known query");
    println!("\n{}", clyde.explain(&query).expect("explain"));
    let result = clyde.query(&query).expect("query failed");

    println!("\nQ2.1: revenue by (year, brand), category MFGR#12, suppliers in AMERICA\n");
    println!("{:>6}  {:<10}  {:>14}", "year", "brand", "revenue");
    for row in result.rows.iter().take(15) {
        println!("{:>6}  {:<10}  {:>14}", row.at(0), row.at(1), row.at(2));
    }
    if result.rows.len() > 15 {
        println!("... and {} more groups", result.rows.len() - 15);
    }

    println!(
        "\nexecution: {} map task(s), {:.0}% local scan, {} fact rows probed",
        result.profile.map_tasks.len(),
        result.locality * 100.0,
        result.profile.total_map_cost().block_rows,
    );
    println!(
        "simulated time on this 4-node cluster: {:.1}s (map {:.1}s, shuffle {:.2}s, reduce {:.2}s)",
        result.total_s(),
        result.cost.map_s,
        result.cost.shuffle_s,
        result.cost.reduce_s,
    );
}
