//! `clyde-lint`: the determinism & concurrency invariant catalog, enforced
//! by lightweight source scanning.
//!
//! The workspace's load-bearing guarantee is that traces, metric snapshots,
//! and query results are byte-identical across runs, fault plans, and thread
//! counts. That property is easy to break silently — iterate a `HashMap`
//! into a report, read the wall clock in a cost path, seed an RNG from
//! entropy — so this crate checks it mechanically on every CI run:
//!
//! * **D001 `unordered`** — no unordered `HashMap`/`HashSet` iteration may
//!   feed output. Every iteration over a hash container must be sorted
//!   nearby (`.sort*()` within the next few lines, or collected into a
//!   `BTreeMap`/`BTreeSet`), end in an order-insensitive reduction
//!   (`sum`/`count`/`min`/`max`/`all`/`any`) on the same line, or carry an
//!   explicit pragma naming why the order cannot escape.
//! * **D002 `wallclock`** — `Instant::now` / `SystemTime` are banned outside
//!   the audited wall-phase module (`crates/common/src/obs/wall.rs`);
//!   everything else measures wall time through `WallTimer`.
//! * **D003 `entropy`** — no entropy-seeded randomness (`thread_rng`,
//!   `from_entropy`, `OsRng`, `RandomState`, …). All randomness must flow
//!   from explicit seeds through the splitmix64 plumbing
//!   (`crates/mapred/src/fault.rs`, `SsbGen`).
//! * **D004 `concurrency`** — `thread::spawn`/`thread::scope`, `Mutex`,
//!   `RwLock`, and `Condvar` only appear in the audited concurrency modules
//!   (the runners, the engine, the lock-order checker, and the handful of
//!   shared-state holders listed in [`D004_AUDITED`]), so shared mutable
//!   state cannot creep into task code paths unreviewed.
//! * **D005 `metricname`** — every `counter_add`/`gauge_set`/
//!   `histogram_record` call site names its metric with a string literal
//!   drawn from the registered namespaces (`mapred.*`, `dfs.*`,
//!   `scheduler.*`, `probe.*`). Literal names keep the metric surface
//!   greppable and snapshot-diffable; the namespace registry keeps tools
//!   like `clyde-profdiff` and the CI metric goldens from silently missing
//!   a renamed counter. The `scheduler.*` namespace is additionally
//!   *closed*: the job server's queue/tenant series are a CI gate surface
//!   (`workload-gate` reads them), so a literal `scheduler.` name must be
//!   one of [`D005_SCHEDULER_METRICS`] — a new series is registered there
//!   first, then emitted.
//!
//! Violations are suppressed by a pragma on the offending line or the line
//! directly above:
//!
//! ```text
//! // clyde-lint: allow(unordered, reason=order-insensitive fold into counter)
//! ```
//!
//! The reason is mandatory; a pragma without one is itself an error (P001).
//! Scanning is line/token based over comment- and string-stripped source —
//! deliberately not a rustc plugin, so it runs in milliseconds with no
//! nightly dependency and its rules stay greppable.

use std::fmt;
use std::path::{Path, PathBuf};

/// The invariant catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D001: unordered hash-container iteration.
    Unordered,
    /// D002: wall-clock read outside the wall-phase module.
    WallClock,
    /// D003: entropy-seeded randomness.
    Entropy,
    /// D004: concurrency primitive outside an audited module.
    Concurrency,
    /// D005: metric name that is not a literal in a registered namespace.
    MetricName,
    /// P001: malformed `clyde-lint` pragma.
    BadPragma,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::Unordered => "D001",
            Rule::WallClock => "D002",
            Rule::Entropy => "D003",
            Rule::Concurrency => "D004",
            Rule::MetricName => "D005",
            Rule::BadPragma => "P001",
        }
    }

    /// The name used in `allow(...)` pragmas.
    pub fn pragma_name(self) -> &'static str {
        match self {
            Rule::Unordered => "unordered",
            Rule::WallClock => "wallclock",
            Rule::Entropy => "entropy",
            Rule::Concurrency => "concurrency",
            Rule::MetricName => "metricname",
            Rule::BadPragma => "pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: `file:line: CODE message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Modules allowed to read the wall clock (D002).
pub const D002_ALLOWED: &[&str] = &["crates/common/src/obs/wall.rs"];

/// Audited concurrency modules (D004): every `Mutex`/`RwLock`/spawn site in
/// these files has been reviewed for lock ordering (and runs under the
/// debug-build lock-order checker); everything else must stay lock-free.
pub const D004_AUDITED: &[&str] = &[
    // The checker itself and the observability hub's internal state.
    "crates/common/src/lockorder.rs",
    "crates/common/src/obs/mod.rs",
    "crates/common/src/obs/span.rs",
    "crates/common/src/obs/metrics.rs",
    // The multi-threaded map runner (paper Figure 5): the shared morsel
    // source (one mutex around reader state, held only to slice the next
    // block) and the thread-result sink; plus parallel dimension builds.
    // Audited 2026-08: no nested lock acquisition — `MorselSource::next`
    // and the `done` sink take one lock each and never both.
    "crates/core/src/mtrunner.rs",
    "crates/core/src/hashtable.rs",
    // The MapReduce engine, task context, and distributed cache.
    "crates/mapred/src/engine.rs",
    "crates/mapred/src/task.rs",
    "crates/mapred/src/distcache.rs",
    // DFS shared state: block stores, namespace, per-node I/O counters.
    "crates/dfs/src/local.rs",
    "crates/dfs/src/dfs.rs",
    "crates/dfs/src/metrics.rs",
    // NOT listed, deliberately: the multi-job server and slot scheduler
    // (`crates/mapred/src/server.rs`, `crates/mapred/src/scheduler.rs`,
    // `crates/core/src/server.rs`). Audited 2026-08: the server executes
    // admitted jobs *sequentially* through the audited engine and derives
    // the concurrent timeline in a pure discrete-event simulation, so the
    // whole layer is lock-free by design — concurrency lives only in data
    // (SimJob/Placement), never in threads. Keeping these files off the
    // allowlist means D004 fires the moment anyone reintroduces real
    // threading there (see `d004_job_server_layer_stays_lock_free`).
];

/// A parsed `allow(rule, reason=...)` suppression pragma.
#[derive(Debug, Clone)]
struct Pragma {
    line: usize,
    rule_name: String,
}

/// Replace comments and string/char literals with spaces, preserving line
/// structure, so rule patterns never match prose or literals. Returns the
/// masked text plus every comment with its line number (for pragma parsing).
fn mask_source(src: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut comment_line = 0usize;
    let mut line = 1usize;
    let mut st = St::Code;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    comment_line = line;
                    cur_comment.clear();
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is 'ident not
                    // followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && b.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        st = St::Char;
                        out.push(' ');
                    }
                }
                '\n' => {
                    line += 1;
                    out.push('\n');
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    comments.push((comment_line, std::mem::take(&mut cur_comment)));
                    st = St::Code;
                    line += 1;
                    out.push('\n');
                } else {
                    cur_comment.push(c);
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    line += 1;
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    if next == Some('\n') {
                        line += 1;
                        out.pop();
                        out.pop();
                        out.push_str(" \n");
                    }
                    i += 2;
                    continue;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                } else if c == '\n' {
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                } else if c == '\n' {
                    // Unterminated char (really a lifetime in odd position).
                    st = St::Code;
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    if st == St::LineComment {
        comments.push((comment_line, cur_comment));
    }
    (out, comments)
}

/// Parse pragmas out of the file's comments. Malformed pragmas become P001
/// violations.
fn parse_pragmas(
    file: &Path,
    comments: &[(usize, String)],
    violations: &mut Vec<Violation>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("clyde-lint:") else {
            continue;
        };
        let rest = text[pos + "clyde-lint:".len()..].trim();
        let ok = (|| -> Option<Pragma> {
            let body = rest.strip_prefix("allow(")?;
            let body = body.strip_suffix(')').unwrap_or(body);
            let (rule_name, reason_part) = body.split_once(',')?;
            let reason = reason_part.trim().strip_prefix("reason=")?;
            if reason.trim().is_empty() {
                return None;
            }
            let rule_name = rule_name.trim().to_string();
            let known = [
                "unordered",
                "wallclock",
                "entropy",
                "concurrency",
                "metricname",
            ];
            if !known.contains(&rule_name.as_str()) {
                return None;
            }
            Some(Pragma {
                line: *line,
                rule_name,
            })
        })();
        match ok {
            Some(p) => pragmas.push(p),
            None => violations.push(Violation {
                file: file.to_path_buf(),
                line: *line,
                rule: Rule::BadPragma,
                message: format!(
                    "malformed pragma `{}` — expected \
                     `clyde-lint: allow(<unordered|wallclock|entropy|concurrency|metricname>, \
                     reason=...)` with a non-empty reason",
                    rest
                ),
            }),
        }
    }
    pragmas
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `needle` occur in `hay` bounded by non-identifier characters?
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_char(hay[..abs].chars().next_back().unwrap());
        let after = hay[abs + needle.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Collect identifiers bound to hash containers in this file: `name:
/// FxHashMap<...>` declarations (lets, struct fields, parameters) and
/// `let name = FxHashMap::default()`-style initializations.
fn hash_container_names(masked: &str) -> Vec<String> {
    const TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
    let mut names: Vec<String> = Vec::new();
    for line in masked.lines() {
        for ty in TYPES {
            let mut start = 0;
            while let Some(pos) = line[start..].find(ty) {
                let abs = start + pos;
                start = abs + ty.len();
                let before = &line[..abs];
                if before
                    .chars()
                    .next_back()
                    .is_some_and(|c| is_ident_char(c) && c != ':')
                {
                    continue; // part of a longer identifier
                }
                let name = if line[abs + ty.len()..].trim_start().starts_with("::") {
                    // `let [mut] name = FxHashMap::default()`
                    before
                        .rfind('=')
                        .map(|eq| before[..eq].trim_end())
                        .map(|d| {
                            d.rsplit(|c: char| !is_ident_char(c))
                                .next()
                                .unwrap_or("")
                                .to_string()
                        })
                } else {
                    // `name: [wrappers<]FxHashMap<...>` — walk back past `:`
                    // and any generic wrappers (`Mutex<`, `Arc<`, `&`, …).
                    before.rfind(':').map(|colon| {
                        let mut d = before[..colon].trim_end();
                        if d.ends_with(':') {
                            d = d[..d.len() - 1].trim_end(); // `::` path, not a decl
                            let _ = d;
                            return String::new();
                        }
                        d.rsplit(|c: char| !is_ident_char(c))
                            .next()
                            .unwrap_or("")
                            .to_string()
                    })
                };
                if let Some(n) = name {
                    if !n.is_empty()
                        && !n.chars().next().unwrap().is_numeric()
                        && n != "mut"
                        && !names.contains(&n)
                    {
                        names.push(n);
                    }
                }
            }
        }
    }
    names
}

/// Suffixes after a container name that constitute iteration.
const ITER_SUFFIXES: [&str; 6] = [
    ".iter()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// Same-line terminal reductions that are insensitive to iteration order.
const ORDER_FREE: [&str; 8] = [
    ".sum()",
    ".sum::<",
    ".count()",
    ".min()",
    ".max()",
    ".min_by",
    ".max_by",
    ".is_empty()",
];

/// Sort/ordered-collect patterns that discharge D001 when they appear on the
/// flagged line or within the next `D001_WINDOW` lines.
const SORTED_NEARBY: [&str; 7] = [
    ".sort()",
    ".sort_by",
    ".sort_unstable",
    ".sorted()",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

const D001_WINDOW: usize = 4;

fn d001_scan(file: &Path, masked: &str, violations: &mut Vec<Violation>) {
    let names = hash_container_names(masked);
    if names.is_empty() {
        return;
    }
    let lines: Vec<&str> = masked.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        let mut hit: Option<String> = None;
        for name in &names {
            let mut start = 0;
            while let Some(pos) = line[start..].find(name.as_str()) {
                let abs = start + pos;
                start = abs + name.len();
                let before_ok =
                    abs == 0 || !is_ident_char(line[..abs].chars().next_back().unwrap());
                if !before_ok {
                    continue;
                }
                let after = &line[abs + name.len()..];
                if ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                    hit = Some(format!("{name}{}", iter_suffix(after)));
                    break;
                }
                // `for x in [&[mut ]]name [{...]` — direct IntoIterator use.
                let head = &line[..abs];
                let head_t = head.trim_end();
                if (head_t.ends_with(" in") || head_t.ends_with("in &") || head_t.ends_with("&mut"))
                    && line.contains("for ")
                    && (after.trim_start().starts_with('{') || after.trim_end().is_empty())
                {
                    hit = Some(format!("for _ in {name}"));
                    break;
                }
            }
            if hit.is_some() {
                break;
            }
        }
        let Some(site) = hit else { continue };
        // Discharged by an order-insensitive reduction on the same line?
        if ORDER_FREE.iter().any(|p| line.contains(p)) {
            continue;
        }
        // Discharged by sorting/ordered-collection nearby?
        let window_end = (idx + 1 + D001_WINDOW).min(lines.len());
        if lines[idx..window_end]
            .iter()
            .any(|l| SORTED_NEARBY.iter().any(|p| l.contains(p)))
        {
            continue;
        }
        violations.push(Violation {
            file: file.to_path_buf(),
            line: idx + 1,
            rule: Rule::Unordered,
            message: format!(
                "unordered hash-container iteration `{site}` may leak nondeterministic \
                 order into output — sort nearby, collect into a BTreeMap/BTreeSet, or \
                 pragma with a reason the order cannot escape"
            ),
        });
    }
}

fn iter_suffix(after: &str) -> &'static str {
    for s in ITER_SUFFIXES {
        if after.starts_with(s) {
            return s;
        }
    }
    ""
}

fn rel_allowed(file: &Path, allowlist: &[&str]) -> bool {
    let norm: String = file
        .to_string_lossy()
        .replace('\\', "/")
        .trim_start_matches("./")
        .to_string();
    allowlist.iter().any(|a| norm.ends_with(a))
}

fn d002_scan(file: &Path, masked: &str, violations: &mut Vec<Violation>) {
    if rel_allowed(file, D002_ALLOWED) {
        return;
    }
    const PATTERNS: [&str; 4] = [
        "Instant::now",
        "SystemTime",
        "std::time::Instant",
        "time::Instant",
    ];
    for (idx, line) in masked.lines().enumerate() {
        if let Some(p) = PATTERNS.iter().find(|p| line.contains(*p)) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::WallClock,
                message: format!(
                    "`{p}` outside the wall-phase module — measure through \
                     clyde_common::obs::WallTimer (crates/common/src/obs/wall.rs) instead"
                ),
            });
        }
    }
}

fn d003_scan(file: &Path, masked: &str, violations: &mut Vec<Violation>) {
    const PATTERNS: [&str; 6] = [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
        "rand::random",
    ];
    for (idx, line) in masked.lines().enumerate() {
        if let Some(p) = PATTERNS.iter().find(|p| contains_token(line, p)) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::Entropy,
                message: format!(
                    "entropy-seeded randomness `{p}` — all RNG must flow from explicit \
                     seeds (splitmix64 plumbing in crates/mapred/src/fault.rs, SsbGen)"
                ),
            });
        }
    }
}

fn d004_scan(file: &Path, masked: &str, violations: &mut Vec<Violation>) {
    if rel_allowed(file, D004_AUDITED) {
        return;
    }
    const PATTERNS: [&str; 5] = [
        "thread::spawn",
        "thread::scope",
        "Mutex",
        "RwLock",
        "Condvar",
    ];
    for (idx, line) in masked.lines().enumerate() {
        if let Some(p) = PATTERNS
            .iter()
            .find(|p| line.contains(*p) && (p.contains("::") || contains_token(line, p)))
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::Concurrency,
                message: format!(
                    "concurrency primitive `{p}` outside the audited modules — shared \
                     mutable state belongs in the runners/engine/DFS state holders \
                     (see clyde_lint::D004_AUDITED); task code paths stay lock-free"
                ),
            });
        }
    }
}

/// The metric emitters D005 covers and the namespaces a literal name may
/// live in. Renames that leave these prefixes break snapshot goldens and
/// `clyde-profdiff` attribution silently — hence a lint, not a convention.
const D005_EMITTERS: [&str; 3] = ["counter_add", "gauge_set", "histogram_record"];
pub const D005_NAMESPACES: [&str; 4] = ["mapred.", "dfs.", "scheduler.", "probe."];

/// Files exempt from D005: the metrics registry itself (defines the
/// emitters and unit-tests them with throwaway names).
pub const D005_ALLOWED: &[&str] = &["crates/common/src/obs/metrics.rs"];

/// The closed set of `scheduler.*` series. These are a CI gate surface —
/// the `workload-gate` job and the server swimlane tests assert on them by
/// name — so unlike the open namespaces, a `scheduler.` literal must match
/// this registry exactly. Emitting a new scheduler series means adding it
/// here (and to the goldens that read it) in the same change.
pub const D005_SCHEDULER_METRICS: [&str; 9] = [
    "scheduler.split_locality",
    "scheduler.jobs_admitted",
    "scheduler.jobs_rejected_queue_full",
    "scheduler.jobs_rejected_quota",
    "scheduler.queue_peak_depth",
    "scheduler.tenant_count",
    "scheduler.makespan_s",
    "scheduler.queue_wait_s",
    "scheduler.job_latency_s",
];

/// How many lines below an emitter call D005 searches for the name literal
/// (multi-line call sites put the name on the following line).
const D005_WINDOW: usize = 2;

/// Extract the first double-quoted literal from `raw`, starting no earlier
/// than byte `from`.
fn first_str_literal(raw: &str, from: usize) -> Option<&str> {
    let tail = raw.get(from..)?;
    let open = tail.find('"')?;
    let body = &tail[open + 1..];
    let close = body.find('"')?;
    Some(&body[..close])
}

fn d005_scan(file: &Path, masked: &str, raw: &str, violations: &mut Vec<Violation>) {
    if rel_allowed(file, D005_ALLOWED) {
        return;
    }
    let masked_lines: Vec<&str> = masked.lines().collect();
    let raw_lines: Vec<&str> = raw.lines().collect();
    for (idx, line) in masked_lines.iter().enumerate() {
        let Some(emitter) = D005_EMITTERS.iter().find(|e| contains_token(line, e)) else {
            continue;
        };
        // A definition or forwarding signature, not a call site.
        if contains_token(line, "fn") {
            continue;
        }
        // The name literal: same line after the emitter token, or (for
        // wrapped calls) the first literal on one of the next few lines.
        let call_pos = line.find(emitter).unwrap_or(0);
        let mut name: Option<&str> = raw_lines
            .get(idx)
            .and_then(|r| first_str_literal(r, call_pos.min(r.len())));
        if name.is_none() {
            for look in raw_lines.iter().skip(idx + 1).take(D005_WINDOW) {
                name = first_str_literal(look, 0);
                if name.is_some() {
                    break;
                }
            }
        }
        match name {
            None => violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::MetricName,
                message: format!(
                    "`{emitter}` call without a literal metric name — names must be \
                     greppable string literals in a registered namespace \
                     (mapred.* | dfs.* | scheduler.* | probe.*)"
                ),
            }),
            Some(n) if !D005_NAMESPACES.iter().any(|p| n.starts_with(p)) => {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MetricName,
                    message: format!(
                        "metric name `{n}` outside the registered namespaces \
                         (mapred.* | dfs.* | scheduler.* | probe.*) — register the \
                         namespace in clyde_lint::D005_NAMESPACES or fix the name"
                    ),
                });
            }
            Some(n) if n.starts_with("scheduler.") && !D005_SCHEDULER_METRICS.contains(&n) => {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MetricName,
                    message: format!(
                        "unregistered scheduler series `{n}` — the scheduler.* namespace \
                         is closed (the CI workload-gate reads it by name); add the \
                         series to clyde_lint::D005_SCHEDULER_METRICS first"
                    ),
                });
            }
            Some(_) => {}
        }
    }
}

/// Scan one file's source text. `file` is used for allowlisting and
/// reporting only.
pub fn scan_source(file: &Path, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (masked, comments) = mask_source(src);
    let pragmas = parse_pragmas(file, &comments, &mut violations);
    d001_scan(file, &masked, &mut violations);
    d002_scan(file, &masked, &mut violations);
    d003_scan(file, &masked, &mut violations);
    d004_scan(file, &masked, &mut violations);
    d005_scan(file, &masked, src, &mut violations);
    // A pragma suppresses matching violations on its own line and the line
    // directly below (so it can ride above the offending statement).
    violations.retain(|v| {
        v.rule == Rule::BadPragma
            || !pragmas.iter().any(|p| {
                p.rule_name == v.rule.pragma_name() && (p.line == v.line || p.line + 1 == v.line)
            })
    });
    violations.sort();
    violations
}

/// Recursively collect the `.rs` files the lint covers.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.retain(|f| {
        let s = f.to_string_lossy().replace('\\', "/");
        !s.contains("/target/") && !s.contains("/fixtures/") && !s.contains("/shims/")
    });
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every covered file under `root`; violations come back sorted by
/// (file, line) so the report itself is deterministic.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for file in collect_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        all.extend(scan_source(&rel, &src));
    }
    all.sort();
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source(Path::new("crates/x/src/lib.rs"), src)
    }

    fn rules(vs: &[Violation]) -> Vec<Rule> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> {
                m.values().copied().collect()
            }
        "#;
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_flags_unsorted_iteration() {
        let src =
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    m.values().copied().collect()\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Unordered]);
    }

    #[test]
    fn d001_accepts_sorted_collection() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.values().copied().collect();\n    v.sort();\n    v\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_accepts_order_free_reduction() {
        let src = "fn f(m: &FxHashMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_sees_for_loops() {
        let src = "fn f(set: FxHashSet<u32>) {\n    for x in set {\n        println!(\"{x}\");\n    }\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Unordered]);
    }

    #[test]
    fn d002_flags_instant_and_allows_wall_module() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules(&scan(src)), vec![Rule::WallClock]);
        assert!(scan_source(Path::new("crates/common/src/obs/wall.rs"), src).is_empty());
    }

    #[test]
    fn d003_flags_entropy() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Entropy]);
    }

    #[test]
    fn d004_flags_unaudited_mutex() {
        let src = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
        let vs = scan(src);
        assert!(!vs.is_empty());
        assert!(vs.iter().all(|v| v.rule == Rule::Concurrency));
        let audited = scan_source(Path::new("crates/mapred/src/engine.rs"), src);
        assert!(audited.is_empty());
    }

    #[test]
    fn d005_flags_unregistered_namespace() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"clyde.jobs\", 1);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_flags_non_literal_name() {
        let src = "fn f(m: &Metrics, name: &str) {\n    m.gauge_set(name, 0.5);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_accepts_registered_names_and_wrapped_calls() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"mapred.jobs\", 1);\n    m.gauge_set(\"scheduler.split_locality\", 0.5);\n    m.histogram_record(\n        \"dfs.scan.local_bytes\",\n        2.0,\n    );\n    m.counter_add(\"probe.prefetch_activations\", 1);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d005_skips_definitions_and_registry_module() {
        let src = "impl Metrics {\n    pub fn counter_add(&self, name: &str, delta: u64) {\n        self.add(name, delta);\n    }\n}\n";
        assert!(scan(src).is_empty());
        let call = "fn f(m: &Metrics) { m.counter_add(\"x\", 1); }\n";
        assert!(scan_source(Path::new("crates/common/src/obs/metrics.rs"), call).is_empty());
    }

    #[test]
    fn d004_job_server_layer_stays_lock_free() {
        // The audit entry for the multi-job server: these files are kept
        // OFF the D004 allowlist, so this test (and the workspace scan)
        // fails the moment real threading appears in the scheduling layer.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for rel in [
            "crates/mapred/src/server.rs",
            "crates/mapred/src/scheduler.rs",
            "crates/core/src/server.rs",
        ] {
            assert!(
                !rel_allowed(Path::new(rel), D004_AUDITED),
                "{rel} must not be on the D004 allowlist"
            );
            let src = std::fs::read_to_string(root.join(rel)).expect(rel);
            let concurrency: Vec<_> = scan_source(Path::new(rel), &src)
                .into_iter()
                .filter(|v| v.rule == Rule::Concurrency)
                .collect();
            assert!(
                concurrency.is_empty(),
                "{rel} grew concurrency primitives: {concurrency:?}"
            );
        }
    }

    #[test]
    fn d005_flags_unregistered_scheduler_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"scheduler.queue_drops\", 1);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_accepts_registered_scheduler_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"scheduler.jobs_admitted\", 1);\n    m.gauge_set(\"scheduler.queue_peak_depth\", 3.0);\n    m.histogram_record(\"scheduler.queue_wait_s\", 0.5);\n    m.histogram_record(\"scheduler.job_latency_s\", 1.5);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d005_pragma_suppresses() {
        let src = "fn f(m: &Metrics) {\n    // clyde-lint: allow(metricname, reason=experimental namespace behind a feature flag)\n    m.counter_add(\"exp.jobs\", 1);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> u64 {\n    // clyde-lint: allow(unordered, reason=commutative fold)\n    m.values().fold(0u64, |a, &b| a ^ b as u64)\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let src = "// clyde-lint: allow(unordered)\nfn f() {}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::BadPragma]);
    }

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "fn f() {\n    // HashMap iteration and Instant::now in prose\n    let s = \"Mutex thread_rng SystemTime\";\n    let _ = s;\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() -> &'static str {\n    r#\"Instant::now Mutex\"#\n}\n";
        assert!(scan(src).is_empty());
    }
}
