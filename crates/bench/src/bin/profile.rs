//! The profiling bench target: explain-analyze artifacts for the 13-query
//! suite, plus a large-SF probe pass that provably exercises the prefetch
//! layer.
//!
//! ```text
//! profile [SF] [--out-dir DIR] [--prefetch-sf SF] [--prefetch-rows N] [--no-prefetch-bench]
//! ```
//!
//! Two parts:
//!
//! 1. **Profile suite** (default SF 0.01): runs all 13 SSB queries with
//!    observability on and writes three artifacts to `--out-dir` (default
//!    `.`): `query-profiles.json` (the deterministic `clyde-profiles`
//!    bundle `clyde-profdiff` consumes), `flamegraph.folded` (collapsed
//!    stacks over simulated time — feed to flamegraph.pl / speedscope),
//!    and `calibration.txt` (per-phase model-vs-measured drift).
//! 2. **Prefetch probe** (default SF 4): builds Q4.1's dimension tables at
//!    a scale factor whose part table clears `PREFETCH_MIN_SLOTS` (SSB has
//!    600k parts at SF 4; Q4.1 keeps 2/5 of them — dense enough for a
//!    direct-index table over the full key range) and streams a capped
//!    number of fact rows through the vectorized kernel. Exits 1 if the
//!    `probe.prefetch_activations` counter stays zero — the committed
//!    bench scale never opens the gate (ROADMAP PR-5 follow-up), so this
//!    target exists to prove the layer is alive.

use clyde_bench::harness::{profile_suite, MeasurementConfig};
use clyde_common::{ClydeError, Result, RowBlockBuilder};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::{query_by_id, schema};
use clydesdale::hashtable::DimTables;
use clydesdale::planner::ROWS_PER_BLOCK;
use clydesdale::probe::{
    probe_block_vec, GroupAcc, GroupLayout, KernelOpts, ProbePlan, ProbeStats, SelBuf,
    PREFETCH_MIN_SLOTS,
};

/// Stream `cap` fact rows at `sf` through Q4.1's vectorized probe and
/// return the kernel stats (notably `prefetch_activations`).
fn prefetch_probe(sf: f64, cap: u64) -> Result<(ProbeStats, usize)> {
    let gen = SsbGen::new(sf, 46);
    let q = query_by_id("Q4.1").expect("known query");
    let fact_schema = schema::lineorder_schema();
    let cols: Vec<usize> = q
        .fact_columns()
        .iter()
        .map(|c| fact_schema.index_of(c).unwrap())
        .collect();
    let scan_schema = fact_schema.project(&cols);
    let plan = ProbePlan::compile(&q, &scan_schema)?;
    eprintln!(
        "building Q4.1 dimension tables at SF {sf} ({} parts)...",
        gen.num_parts()
    );
    let tables = DimTables::build_all(&q.joins, |dim| {
        Ok(match dim {
            schema::CUSTOMER => gen.gen_customer(),
            schema::SUPPLIER => gen.gen_supplier(),
            schema::PART => gen.gen_part(),
            schema::DATE => gen.gen_date(),
            other => return Err(ClydeError::Plan(format!("unknown dimension {other}"))),
        })
    })?;
    let direct_slots = tables
        .tables
        .iter()
        .filter_map(|t| t.direct_slots())
        .max()
        .unwrap_or(0);

    let layout = GroupLayout::new(&plan, &tables)
        .ok_or_else(|| ClydeError::Plan("Q4.1 has no packed group layout".into()))?;
    let mut acc = GroupAcc::new(&layout, &plan.aggregate);
    let mut buf = SelBuf::default();
    let mut stats = ProbeStats::default();
    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    let mut builder = RowBlockBuilder::new(&dtypes);
    let mut in_block = 0usize;
    let mut seen = 0u64;
    let opts = KernelOpts::all_on();
    eprintln!("streaming {cap} fact rows through the vectorized kernel...");
    let run = gen.for_each_lineorder(|row| {
        if seen == cap {
            // Sentinel early-stop: the generator has no cap of its own.
            return Err(ClydeError::Config("profile-cap".into()));
        }
        seen += 1;
        builder.push_row(&row.project(&cols))?;
        in_block += 1;
        if in_block == ROWS_PER_BLOCK {
            let block = std::mem::replace(&mut builder, RowBlockBuilder::new(&dtypes)).finish();
            in_block = 0;
            probe_block_vec(
                &block, &plan, &tables, &layout, &mut acc, &mut buf, &mut stats, opts,
            )?;
        }
        Ok(())
    });
    match run {
        Ok(()) => {}
        Err(ClydeError::Config(m)) if m == "profile-cap" => {}
        Err(e) => return Err(e),
    }
    if in_block > 0 {
        let block = builder.finish();
        probe_block_vec(
            &block, &plan, &tables, &layout, &mut acc, &mut buf, &mut stats, opts,
        )?;
    }
    Ok((stats, direct_slots))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf: f64 = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    let flag_path = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_dir = flag_path("--out-dir").unwrap_or_else(|| ".".to_string());
    let prefetch_sf: f64 = flag_path("--prefetch-sf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let prefetch_rows: u64 = flag_path("--prefetch-rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let skip_prefetch = args.iter().any(|a| a == "--no-prefetch-bench");

    eprintln!("profiling the 13-query suite at SF {sf}...");
    let config = MeasurementConfig {
        sf,
        ..MeasurementConfig::default()
    };
    let suite = profile_suite(&config).expect("profile suite");
    let write = |name: &str, content: &str| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    };
    write("query-profiles.json", &suite.json);
    write("flamegraph.folded", &suite.flamegraph);
    write("calibration.txt", &suite.calibration);
    println!("{}", suite.calibration);
    for p in &suite.profiles {
        println!(
            "{}: {:.1}s simulated, {} job(s), {} flagged phase(s)",
            p.query,
            p.total_s,
            p.jobs.len(),
            p.flagged_phases().len()
        );
    }

    if skip_prefetch {
        return;
    }
    let (stats, direct_slots) = prefetch_probe(prefetch_sf, prefetch_rows).expect("prefetch probe");
    println!(
        "prefetch probe @ SF {prefetch_sf}: largest direct table {direct_slots} slots \
         (gate {PREFETCH_MIN_SLOTS}), {} rows, {} probes, probe.prefetch_activations = {}",
        stats.rows, stats.probes, stats.prefetch_activations
    );
    if stats.prefetch_activations == 0 {
        eprintln!(
            "prefetch layer NEVER FIRED at SF {prefetch_sf} — gate requires \
             {PREFETCH_MIN_SLOTS} direct slots, largest table had {direct_slots}"
        );
        std::process::exit(1);
    }
}
