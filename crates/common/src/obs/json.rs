//! Minimal JSON support for trace export and validation.
//!
//! The workspace is offline and dependency-free by design, so the Chrome
//! trace writer hand-assembles its JSON and the validator uses this small
//! recursive-descent parser. Only what trace files need is supported
//! (no `\u` escapes are *emitted*; the parser accepts them).

/// Escape a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parse_round_trips_trace_shape() {
        let doc = r#"{"traceEvents":[{"name":"map 0","ph":"X","ts":0,"dur":1500,"pid":0,"tid":1,"args":{"rows":"42"}}],"displayTimeUnit":"ms"}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("map 0"));
        assert_eq!(events[0].get("dur").unwrap().as_num(), Some(1500.0));
        assert_eq!(
            events[0].get("args").unwrap().get("rows").unwrap().as_str(),
            Some("42")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let v = parse(r#"{"s":"a\"\nA","n":-1.5e2,"b":true,"z":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"\nA"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(-150.0));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
    }
}
