//! A two-source input format for repartition joins.
//!
//! Hive's common join runs one MapReduce job whose mappers read *both*
//! tables; each record is tagged with the table it came from so the reducer
//! can separate the sides (paper Section 6.1). This format concatenates the
//! splits of two inner formats and appends an integer tag to every value
//! row: `0` for the left (fact) side, `1` for the right (dimension) side.

use clyde_common::{ClydeError, Datum, Result, Row};
use clyde_dfs::Dfs;
use clyde_mapred::{InputFormat, InputSplit, JobConf, Reader, RecordReader, TaskIo};
use std::sync::Arc;
use std::sync::OnceLock;

/// Tag appended to left-side rows.
pub const TAG_LEFT: i32 = 0;
/// Tag appended to right-side rows.
pub const TAG_RIGHT: i32 = 1;

/// Union of two input formats with per-row source tagging.
///
/// The split list is the concatenation left-then-right; the boundary is
/// recorded when `splits` runs (the engine always computes splits before
/// opening any of them, mirroring Hadoop's job-client/ task split).
pub struct TaggedUnionInputFormat {
    pub left: Arc<dyn InputFormat>,
    pub right: Arc<dyn InputFormat>,
    left_count: OnceLock<usize>,
}

impl TaggedUnionInputFormat {
    pub fn new(left: Arc<dyn InputFormat>, right: Arc<dyn InputFormat>) -> TaggedUnionInputFormat {
        TaggedUnionInputFormat {
            left,
            right,
            left_count: OnceLock::new(),
        }
    }
}

impl InputFormat for TaggedUnionInputFormat {
    fn splits(&self, dfs: &Dfs, conf: &JobConf) -> Result<Vec<InputSplit>> {
        let mut out = self.left.splits(dfs, conf)?;
        let left_count = out.len();
        out.extend(self.right.splits(dfs, conf)?);
        for (i, s) in out.iter_mut().enumerate() {
            s.index = i;
        }
        if self.left_count.set(left_count).is_err() && self.left_count.get() != Some(&left_count) {
            return Err(ClydeError::MapReduce(
                "union input format reused across jobs with different inputs".into(),
            ));
        }
        Ok(out)
    }

    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
        let left_count = *self.left_count.get().ok_or_else(|| {
            ClydeError::MapReduce("union input format opened before splits()".into())
        })?;
        if split.index < left_count {
            // The inner format sees its own split indexing.
            let mut inner = split.clone();
            inner.index = split.index;
            tag_reader(self.left.open(&inner, part, io)?, TAG_LEFT)
        } else {
            let mut inner = split.clone();
            inner.index = split.index - left_count;
            tag_reader(self.right.open(&inner, part, io)?, TAG_RIGHT)
        }
    }
}

fn tag_reader(reader: Reader, tag: i32) -> Result<Reader> {
    let rows = reader.into_rows()?;
    Ok(Reader::Rows(Box::new(TaggingReader { inner: rows, tag })))
}

struct TaggingReader {
    inner: Box<dyn RecordReader>,
    tag: i32,
}

impl RecordReader for TaggingReader {
    fn next(&mut self) -> Result<Option<(Row, Row)>> {
        match self.inner.next()? {
            None => Ok(None),
            Some((k, mut v)) => {
                v.push(Datum::I32(self.tag));
                Ok(Some((k, v)))
            }
        }
    }
}

/// Extract and strip the tag from a value row produced by this format.
pub fn split_tag(row: Row) -> (Row, i32) {
    let tag = row
        .values()
        .last()
        .and_then(Datum::as_i32)
        .expect("tagged row must end with an integer tag");
    let mut values = row.into_values();
    values.pop();
    (Row::new(values), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;
    use clyde_mapred::formats::VecInputFormat;

    #[test]
    fn union_tags_both_sides() {
        let dfs = Dfs::for_tests(2);
        let left = VecInputFormat::new(vec![row![1i32], row![2i32]], 2);
        let right = VecInputFormat::new(vec![row!["a"]], 1);
        let fmt = TaggedUnionInputFormat::new(Arc::new(left), Arc::new(right));
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        assert_eq!(splits.len(), 3);
        let io = TaskIo::client(Arc::clone(&dfs));
        let mut left_rows = 0;
        let mut right_rows = 0;
        for s in &splits {
            let mut r = fmt.open(s, 0, &io).unwrap().into_rows().unwrap();
            while let Some((_, v)) = r.next().unwrap() {
                let (stripped, tag) = split_tag(v);
                match tag {
                    TAG_LEFT => {
                        assert!(stripped.at(0).as_i32().is_some());
                        left_rows += 1;
                    }
                    TAG_RIGHT => {
                        assert_eq!(stripped, row!["a"]);
                        right_rows += 1;
                    }
                    other => panic!("bad tag {other}"),
                }
            }
        }
        assert_eq!(left_rows, 2);
        assert_eq!(right_rows, 1);
    }

    #[test]
    fn open_before_splits_errors() {
        let dfs = Dfs::for_tests(2);
        let left = VecInputFormat::new(vec![row![1i32]], 1);
        let right = VecInputFormat::new(vec![row![2i32]], 1);
        let fmt = TaggedUnionInputFormat::new(Arc::new(left), Arc::new(right));
        let probe = VecInputFormat::new(vec![row![1i32]], 1);
        let splits = probe.splits(&dfs, &JobConf::new()).unwrap();
        let io = TaskIo::client(Arc::clone(&dfs));
        assert!(fmt.open(&splits[0], 0, &io).is_err());
    }

    #[test]
    fn split_tag_roundtrip() {
        let (row, tag) = split_tag(row![5i32, "x", 1i32]);
        assert_eq!(tag, 1);
        assert_eq!(row, row![5i32, "x"]);
    }
}
