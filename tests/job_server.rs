//! Job-server end-to-end: admission control is deterministic, quotas hold,
//! served queries answer bit-for-bit like solo runs, and the multi-job
//! schedule is byte-identical across reruns and host thread counts.

use clyde_common::Obs;
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::{RejectReason, SchedPolicy, ServerConfig};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Dfs> {
    Dfs::new(
        ClusterSpec::tiny(n),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    )
}

fn load(dfs: &Arc<Dfs>, sf: f64) -> SsbLayout {
    let layout = SsbLayout::default();
    loader::load(
        dfs,
        SsbGen::new(sf, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    layout
}

fn config(policy: SchedPolicy, queue_capacity: usize, tenant_quota: usize) -> ServerConfig {
    ServerConfig {
        policy,
        queue_capacity,
        tenant_quota,
        weights: Vec::new(),
    }
}

#[test]
fn bounded_queue_rejects_overload_deterministically() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q1.1").unwrap();

    let run = || {
        let mut srv = clyde.serve(config(SchedPolicy::Fair, 3, 0));
        let mut outcomes = Vec::new();
        for i in 0..5 {
            outcomes.push(srv.submit("etl", i as f64, &q).unwrap());
        }
        let served = srv.drain().unwrap();
        (outcomes, served.len())
    };

    let (outcomes, served) = run();
    assert_eq!(served, 3);
    assert!(outcomes[..3].iter().all(|o| o.is_ok()));
    for o in &outcomes[3..] {
        assert_eq!(
            o.clone().unwrap_err(),
            RejectReason::QueueFull { capacity: 3 }
        );
    }
    // Overload handling depends only on the submission stream.
    let (outcomes2, served2) = run();
    assert_eq!(outcomes, outcomes2);
    assert_eq!(served, served2);

    // The window clears on drain: the same tenant is admitted again.
    let mut srv = clyde.serve(config(SchedPolicy::Fair, 3, 0));
    for i in 0..5 {
        let _ = srv.submit("etl", i as f64, &q).unwrap();
    }
    srv.drain().unwrap();
    assert!(srv.submit("etl", 10.0, &q).unwrap().is_ok());
}

#[test]
fn per_tenant_quota_is_enforced() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let obs = Obs::enabled();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q1.2").unwrap();

    let mut srv = clyde.serve(config(SchedPolicy::Fair, 16, 2));
    assert!(srv.submit("etl", 0.0, &q).unwrap().is_ok());
    assert!(srv.submit("etl", 0.5, &q).unwrap().is_ok());
    assert_eq!(
        srv.submit("etl", 1.0, &q).unwrap().unwrap_err(),
        RejectReason::TenantQuota { quota: 2 }
    );
    // Another tenant is unaffected by etl's quota.
    assert!(srv.submit("dash", 1.5, &q).unwrap().is_ok());
    let served = srv.drain().unwrap();
    let tenants: Vec<&str> = served.iter().map(|s| s.tenant.as_str()).collect();
    assert_eq!(tenants, vec!["etl", "etl", "dash"]);
    // The rejection shows up in the drain's swimlane report.
    obs.with_server_runs(|rs| {
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].rejected.len(), 1);
        assert_eq!(rs[0].rejected[0].tenant, "etl");
        assert!(rs[0].rejected[0].reason.contains("quota"));
    });
    let summary = obs.summary();
    assert!(summary.contains("REJECTED"));
    assert!(summary.contains("scheduler.jobs_admitted = 3"));
    assert!(summary.contains("scheduler.jobs_rejected_quota = 1"));
}

#[test]
fn served_queries_answer_bit_for_bit_like_solo_runs() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let ids = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"];
    let solo: Vec<_> = ids
        .iter()
        .map(|id| clyde.query(&query_by_id(id).unwrap()).unwrap().rows)
        .collect();

    for policy in SchedPolicy::all() {
        let mut srv = clyde.serve(config(policy, 16, 0));
        for (i, id) in ids.iter().enumerate() {
            let tenant = if i % 2 == 0 { "etl" } else { "dash" };
            assert!(srv
                .submit(tenant, 0.5 * i as f64, &query_by_id(id).unwrap())
                .unwrap()
                .is_ok());
        }
        let served = srv.drain().unwrap();
        assert_eq!(served.len(), ids.len());
        for (i, s) in served.iter().enumerate() {
            assert_eq!(s.query_id, ids[i]);
            assert_eq!(
                s.rows, solo[i],
                "{} under {:?} must answer exactly like its solo run",
                ids[i], policy
            );
            assert!(s.arrival_s <= s.start_s && s.start_s < s.finish_s);
            assert!(s.final_sort_s > 0.0);
        }
    }
}

fn traced_workload(host_threads: u32) -> (Vec<Vec<clyde_common::Row>>, String, String) {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let obs = Obs::enabled();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout)
        .with_obs(Arc::clone(&obs))
        .with_host_threads(host_threads);
    clyde.warm_dimension_cache().unwrap();
    let mut srv = clyde.serve(config(SchedPolicy::Fair, 16, 0));
    for (i, id) in ["Q2.1", "Q1.1", "Q3.2", "Q1.3"].iter().enumerate() {
        let tenant = ["etl", "dash"][i % 2];
        assert!(srv
            .submit(tenant, 0.3 * i as f64, &query_by_id(id).unwrap())
            .unwrap()
            .is_ok());
    }
    let served = srv.drain().unwrap();
    let rows = served.into_iter().map(|s| s.rows).collect();
    (rows, obs.chrome_trace(), obs.summary())
}

#[test]
fn served_schedule_is_byte_identical_across_host_thread_counts() {
    let (rows_1, trace_1, summary_1) = traced_workload(1);
    let (rows_8, trace_8, summary_8) = traced_workload(8);
    assert_eq!(rows_1, rows_8);
    assert_eq!(
        trace_1, trace_8,
        "multi-job trace must not depend on host threads"
    );
    // Summaries mix in measured wall clock (by design); the simulated
    // timeline — including the server swimlanes — must be stable.
    let sim_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.contains("wall"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(sim_lines(&summary_1), sim_lines(&summary_8));
    assert!(summary_1.contains("server run: policy fair"));
    // And a straight rerun is byte-identical too.
    let (_, trace_again, _) = traced_workload(1);
    assert_eq!(trace_1, trace_again);
}

#[test]
fn fair_scheduling_beats_fifo_for_the_starved_tenant() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let big = query_by_id("Q2.1").unwrap();
    let small = query_by_id("Q1.1").unwrap();

    let adhoc_latency = |policy: SchedPolicy| -> f64 {
        let mut srv = clyde.serve(config(policy, 16, 0));
        // A queue-saturating burst of batch queries, then one interactive
        // query mid-burst. (The burst must be deep enough that FIFO's queue
        // wait dominates the small job's runtime — with only a few queued
        // jobs, FIFO's natural pipelining is already near-optimal.)
        for i in 0..10 {
            assert!(srv.submit("etl", 0.1 * i as f64, &big).unwrap().is_ok());
        }
        assert!(srv.submit("adhoc", 2.0, &small).unwrap().is_ok());
        let served = srv.drain().unwrap();
        served
            .iter()
            .find(|s| s.tenant == "adhoc")
            .expect("adhoc was admitted")
            .latency_s()
    };

    let fifo = adhoc_latency(SchedPolicy::Fifo);
    let fair = adhoc_latency(SchedPolicy::Fair);
    assert!(
        fair < fifo,
        "fair must improve the starved tenant's latency: fair {fair:.1}s !< fifo {fifo:.1}s"
    );
}
