//! A hand-rolled, lossless Rust lexer.
//!
//! The analyzer's foundation: every rule pass — textual (D001–D005) and
//! structural (D006–D009) — consumes this token stream, never raw text.
//! Three properties matter more than speed (though it lexes the whole
//! workspace in milliseconds):
//!
//! 1. **Lossless**: concatenating `Tok::text` over the stream reproduces
//!    the input byte for byte. `tests/lexer_roundtrip.rs` asserts this over
//!    every source file in the workspace plus proptest-generated garbage.
//! 2. **Total**: any input lexes without panicking. Unterminated strings and
//!    comments run to EOF; unknown characters become one-char [`TokKind::Punct`]
//!    tokens. A lint must never crash on the code it audits.
//! 3. **Comment/string aware**: rule patterns must never match prose or
//!    literals, so the masked rendering ([`masked_lines`]) blanks comment
//!    and literal tokens while preserving line structure exactly.
//!
//! The tricky corners are the usual ones: `'a` lifetimes vs `'a'` chars,
//! `r#"raw"#` strings vs `r#raw` identifiers, nested block comments, and
//! `1..n` ranges vs `1.` float literals.

/// Token classes. Deliberately coarse — the parser and rules only need to
/// distinguish identifiers, literal kinds, and trivia.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (newlines included).
    Ws,
    /// `// ...` up to (not including) the newline.
    LineComment,
    /// `/* ... */`, nesting honored, possibly spanning lines.
    BlockComment,
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// `'a` / `'static` (not a char literal).
    Lifetime,
    /// Integer literal (`42`, `0xff_u32`, `0b01`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`, `1.`).
    Float,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Any single punctuation/operator character.
    Punct,
}

/// One token: kind, exact source text, and the 1-based line of its first
/// character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Trivia carries no structure: whitespace and comments.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    /// Consume `n` chars into the scratch string, counting newlines.
    fn take(&mut self, n: usize, buf: &mut String) {
        for _ in 0..n {
            if let Some(c) = self.chars.get(self.i) {
                if *c == '\n' {
                    self.line += 1;
                }
                buf.push(*c);
                self.i += 1;
            }
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let mut text = String::new();
            match c {
                c if c.is_whitespace() => {
                    while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                        self.take(1, &mut text);
                    }
                    self.push(TokKind::Ws, text, line);
                }
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.take(1, &mut text);
                    }
                    self.push(TokKind::LineComment, text, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.take(2, &mut text);
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                self.take(2, &mut text);
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                self.take(2, &mut text);
                            }
                            (Some(_), _) => self.take(1, &mut text),
                            (None, _) => break, // unterminated: runs to EOF
                        }
                    }
                    self.push(TokKind::BlockComment, text, line);
                }
                '"' => {
                    self.lex_string(0, &mut text);
                    self.push(TokKind::Str, text, line);
                }
                '\'' => self.lex_quote(line),
                c if is_ident_start(c) => self.lex_ident_or_prefixed(line),
                c if c.is_ascii_digit() => {
                    self.lex_number(&mut text);
                    let kind = if Self::is_float(&text) {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    };
                    self.push(kind, text, line);
                }
                _ => {
                    self.take(1, &mut text);
                    self.push(TokKind::Punct, text, line);
                }
            }
        }
        self.toks
    }

    /// `'a` lifetime vs `'x'` char literal. A lifetime is `'` + ident run
    /// *not* followed by a closing `'`.
    fn lex_quote(&mut self, line: u32) {
        let mut text = String::new();
        let next = self.peek(1);
        let is_lifetime = next.is_some_and(is_ident_start) && {
            let mut j = 2;
            while self.peek(j).is_some_and(is_ident_char) {
                j += 1;
            }
            self.peek(j) != Some('\'')
        };
        if is_lifetime {
            self.take(2, &mut text);
            while self.peek(0).is_some_and(is_ident_char) {
                self.take(1, &mut text);
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume until the closing quote, honoring escapes.
        // An unterminated char (stray quote) stops at the newline/EOF.
        self.take(1, &mut text);
        loop {
            match self.peek(0) {
                Some('\\') => self.take(2, &mut text),
                Some('\'') => {
                    self.take(1, &mut text);
                    break;
                }
                Some('\n') | None => break,
                Some(_) => self.take(1, &mut text),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    /// Identifiers, plus the literal prefixes that look like identifiers:
    /// `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'…'`, and raw identifiers
    /// `r#name`.
    fn lex_ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_char) {
            self.take(1, &mut text);
        }
        let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
        match (is_str_prefix, self.peek(0)) {
            (true, Some('"')) => {
                self.lex_string(0, &mut text);
                self.push(TokKind::Str, text, line);
            }
            (true, Some('#')) if text != "b" => {
                // Count hashes; a quote after them is a raw string, an
                // ident-start is a raw identifier (`r#type`).
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek(hashes) {
                    Some('"') => {
                        self.take(hashes, &mut text);
                        self.lex_string(hashes, &mut text);
                        self.push(TokKind::Str, text, line);
                    }
                    Some(c) if is_ident_start(c) && hashes == 1 => {
                        self.take(1, &mut text);
                        while self.peek(0).is_some_and(is_ident_char) {
                            self.take(1, &mut text);
                        }
                        self.push(TokKind::Ident, text, line);
                    }
                    _ => self.push(TokKind::Ident, text, line),
                }
            }
            (true, Some('\'')) if text == "b" => {
                // Byte literal b'x': reuse the char path by splicing.
                let start = self.toks.len();
                self.lex_quote(line);
                if let Some(t) = self.toks.get_mut(start) {
                    t.text.insert_str(0, &text);
                    t.line = line;
                } else {
                    self.push(TokKind::Ident, text, line);
                }
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }

    /// Body of a (possibly raw) string literal; the opening delimiter is the
    /// current char. `hashes` is the raw-string hash count (0 = normal,
    /// escapes honored).
    fn lex_string(&mut self, hashes: usize, text: &mut String) {
        self.take(1, text); // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated: runs to EOF
                Some('\\') if hashes == 0 => self.take(2, text),
                Some('"') => {
                    if hashes == 0 {
                        self.take(1, text);
                        break;
                    }
                    let mut seen = 0;
                    while seen < hashes && self.peek(1 + seen) == Some('#') {
                        seen += 1;
                    }
                    self.take(1 + seen, text);
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => self.take(1, text),
            }
        }
    }

    /// Numeric literal. `1..n` must lex as `Int(1) . .` — a dot only joins
    /// the number when followed by a digit, or when it ends the literal
    /// (`1. `, not `1.method()` and not `1..`).
    fn lex_number(&mut self, text: &mut String) {
        let radix_prefixed =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b'));
        if radix_prefixed {
            self.take(2, text);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.take(1, text);
            }
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.take(1, text);
        }
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.take(1, text);
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.take(1, text);
                    }
                }
                Some('.') => return,                    // range: 1..n
                Some(c) if is_ident_start(c) => return, // method: 1.min(x)
                _ => self.take(1, text),                // trailing dot: 1.
            }
        }
        // Exponent: e/E followed by an (optionally signed) digit.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let signed = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if signed { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                self.take(digit_at, text);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.take(1, text);
                }
            }
        }
        // Type suffix (u32, f64, usize …) glues onto the literal.
        while self.peek(0).is_some_and(is_ident_char) {
            self.take(1, text);
        }
    }

    fn is_float(text: &str) -> bool {
        let body = text.trim_end_matches(|c: char| c.is_ascii_alphabetic() && c != 'e' && c != 'E');
        text.contains('.')
            || body.contains(['e', 'E'])
            || text.ends_with("f32")
            || text.ends_with("f64")
    }
}

/// Render the masked source lines: literal and comment tokens are blanked
/// (newlines preserved), everything else verbatim. Rule patterns match
/// against these lines so they can never fire on prose or string contents.
pub fn masked_lines(toks: &[Tok]) -> Vec<String> {
    let mut out = String::new();
    for t in toks {
        match t.kind {
            TokKind::Str | TokKind::Char | TokKind::LineComment | TokKind::BlockComment => {
                for c in t.text.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(&t.text),
        }
    }
    out.lines().map(str::to_string).collect()
}

/// Every `//` comment with its 1-based line number and the text after the
/// slashes — the pragma parser's input.
pub fn line_comments(toks: &[Tok]) -> Vec<(usize, String)> {
    toks.iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .map(|t| {
            (
                t.line as usize,
                t.text.strip_prefix("//").unwrap_or(&t.text).to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let emitted: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(emitted, src, "lex must be lossless");
        assert_eq!(lex(&emitted), toks, "re-lex must be stable");
    }

    #[test]
    fn lossless_over_tricky_corners() {
        roundtrip("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        roundtrip("let r = r#\"raw \" string\"#; let id = r#type;\n");
        roundtrip("let b = b\"bytes\"; let c = b'x'; let n = 0xff_u32;\n");
        roundtrip("for i in 0..n { let f = 1.5e-3f64; let g = 1.; }\n");
        roundtrip("/* outer /* nested */ still comment */ let x = 1;\n");
        roundtrip("// line comment with \"quote\" and 'tick\nlet y = 2;\n");
        roundtrip("let v = vec![1, 2]; let s = \"esc \\\" quote\";\n");
    }

    #[test]
    fn total_on_garbage() {
        roundtrip("\"unterminated");
        roundtrip("/* unterminated");
        roundtrip("'");
        roundtrip("r#\"unterminated raw");
        roundtrip("\u{1f980} émoji § idents");
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks: Vec<_> = lex("0..n").into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(toks[0].kind, TokKind::Int);
        assert_eq!(toks[0].text, "0");
        assert_eq!(toks[1].text, ".");
        assert_eq!(toks[2].text, ".");
        assert_eq!(toks[3].kind, TokKind::Ident);
    }

    #[test]
    fn float_vs_int_kinds() {
        let kind = |s: &str| lex(s).into_iter().find(|t| !t.is_trivia()).unwrap().kind;
        assert_eq!(kind("1.0"), TokKind::Float);
        assert_eq!(kind("1f64"), TokKind::Float);
        assert_eq!(kind("2e-3"), TokKind::Float);
        assert_eq!(kind("42"), TokKind::Int);
        assert_eq!(kind("0xff"), TokKind::Int);
        assert_eq!(kind("1_000u64"), TokKind::Int);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks: Vec<_> = lex("&'a str; '\\n'; 'x'; '_'")
            .into_iter()
            .filter(|t| !t.is_trivia())
            .collect();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn masked_lines_blank_literals_and_comments() {
        let lines = masked_lines(&lex("let s = \"Mutex\"; // Instant::now\nlet t = 1;\n"));
        assert!(!lines[0].contains("Mutex"));
        assert!(!lines[0].contains("Instant"));
        assert!(lines[0].contains("let s ="));
        assert_eq!(lines[1], "let t = 1;");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"multi\nline\"\n/* c\nc */\nb");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 6);
    }
}
