//! Global metrics registry: counters, gauges, and histograms behind one
//! snapshot-able, resettable API.
//!
//! This unifies the accounting that used to be scattered across `TaskCost`,
//! `clyde-dfs`'s `IoSnapshot`, scheduler locality fractions, and shuffle
//! record/byte counts. Names are dotted paths (`mapred.shuffle.bytes`);
//! snapshots are sorted by name, so rendering is deterministic.

use crate::lockorder::Mutex;
use std::collections::BTreeMap;

/// Aggregated observations of a histogram metric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// Value of one registered metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSummary),
}

/// Point-in-time copy of the registry, sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(*h),
            _ => None,
        })
    }

    /// Deterministic text rendering, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("{name} = {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name} = {g:.4}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name} = count {} sum {:.4} min {:.4} mean {:.4} max {:.4}\n",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.max
                )),
            }
        }
        out
    }
}

/// The registry. `disabled()` constructs a no-op that ignores every update.
pub struct MetricsRegistry {
    inner: Option<Mutex<BTreeMap<String, MetricValue>>>,
}

impl MetricsRegistry {
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Mutex::new(BTreeMap::new())),
        }
    }

    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock();
        match map.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += delta,
            _ => {
                map.insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock();
        map.insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Record one observation into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock();
        match map.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(value),
            _ => {
                let mut h = HistogramSummary::default();
                h.record(value);
                map.insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Copy out every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let map = inner.lock();
                MetricsSnapshot {
                    entries: map.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                }
            }
        }
    }

    /// Drop every metric; the next update recreates them from zero.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset_semantics() {
        let m = MetricsRegistry::enabled();
        m.counter_add("a.jobs", 1);
        m.counter_add("a.jobs", 2);
        m.gauge_set("b.locality", 0.5);
        m.gauge_set("b.locality", 0.75);
        m.histogram_record("c.task_s", 2.0);
        m.histogram_record("c.task_s", 4.0);

        let snap = m.snapshot();
        assert_eq!(snap.counter("a.jobs"), Some(3));
        assert_eq!(snap.gauge("b.locality"), Some(0.75));
        let h = snap.histogram("c.task_s").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.mean(), 3.0);

        // Snapshot is a copy: later updates don't mutate it.
        m.counter_add("a.jobs", 10);
        assert_eq!(snap.counter("a.jobs"), Some(3));

        // Names come out sorted regardless of insertion order.
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.jobs", "b.locality", "c.task_s"]);

        m.reset();
        let empty = m.snapshot();
        assert!(empty.entries.is_empty());
        assert_eq!(empty.counter("a.jobs"), None);
        m.counter_add("a.jobs", 5);
        assert_eq!(m.snapshot().counter("a.jobs"), Some(5));
    }

    #[test]
    fn disabled_registry_ignores_updates() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        m.counter_add("x", 1);
        m.gauge_set("y", 1.0);
        m.histogram_record("z", 1.0);
        assert!(m.snapshot().entries.is_empty());
    }

    #[test]
    fn kind_change_replaces_metric() {
        let m = MetricsRegistry::enabled();
        m.gauge_set("x", 1.0);
        m.counter_add("x", 2);
        assert_eq!(m.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn render_is_deterministic() {
        let m = MetricsRegistry::enabled();
        m.counter_add("n.c", 7);
        m.gauge_set("n.g", 0.25);
        m.histogram_record("n.h", 1.5);
        let a = m.snapshot().render();
        let b = m.snapshot().render();
        assert_eq!(a, b);
        assert!(a.contains("n.c = 7\n"));
        assert!(a.contains("n.g = 0.2500\n"));
    }
}
