//! Section 6.3's Q2.1 breakdown on cluster A, SF1000.
//!
//! The paper dissects query 2.1: Clydesdale took 215 s (27 s building the
//! three dimension hash tables, 164 s scanning/probing 10.8 GB per node at
//! 67 MB/s, <10 s final sort), while Hive's five-stage mapjoin plan took
//! 15,142 s (2,640 / 2,040 / 9,180 / 720 / 19 s) and the repartition plan
//! 17,700 s.
//!
//! This binary prints the same decomposition as a *view over recorded
//! spans*: the extrapolated SF1000 job is turned into a [`JobHistory`],
//! recorded into the span tree, and the table's build/scan rows are read
//! back from the span durations — exactly what a Perfetto user would see.
//! Pass `--trace <out.json>` to write that span tree (plus every measured
//! job's timeline) as Chrome trace JSON.
//!
//! [`JobHistory`]: clyde_common::obs::JobHistory

use clyde_bench::harness::{measure_with_obs, Extrapolator, MeasureWhat, MeasurementConfig};
use clyde_bench::paper::cluster_a::q21;
use clyde_bench::report::{render_table, secs};
use clyde_common::obs::{SpanKind, TaskKind};
use clyde_common::Obs;
use clyde_dfs::ClusterSpec;
use clyde_hive::JoinStrategy;
use clyde_mapred::job_history;
use std::sync::Arc;

fn main() {
    let args = clyde_bench::cli::parse("q21_breakdown", 0.02);
    let sf = args.sf;
    // The breakdown below is derived from spans, so this binary always
    // records; `--trace` additionally writes the span log out.
    let obs = Obs::enabled();
    let config = MeasurementConfig {
        sf,
        ..MeasurementConfig::default()
    };
    eprintln!("measuring Q2.1 (and the other 12 queries) at SF {sf}...");
    let m = measure_with_obs(
        &config,
        MeasureWhat {
            hive: true,
            ablations: false,
        },
        Arc::clone(&obs),
    )
    .expect("measurement failed");
    let cluster = ClusterSpec::cluster_a();
    let ex = Extrapolator::new(cluster.clone(), 1000.0, &m);
    let qm = m
        .queries
        .iter()
        .find(|q| q.query.id == "Q2.1")
        .expect("Q2.1 measured");

    // ---- Clydesdale side: extrapolate to SF1000, record the job history,
    // and read the breakdown back out of the recorded spans. ----
    let mut e = ex.extrapolate_one_per_node(&qm.query, &qm.clyde);
    e.name = "clydesdale-Q2.1@SF1000".into();
    let params = &ex.params;
    let cost = e
        .price(params, &cluster)
        .expect("clydesdale fits in memory");
    let hist = job_history(&e, &cost, params, &cluster);
    let job = obs.record_job(hist.clone()).expect("obs is enabled");
    let spans = obs.spans().spans();
    // Longest per-task total of a phase, in seconds — the per-node number
    // the paper quotes (every node runs one map task).
    let phase_max_s = |name: &str| -> f64 {
        spans
            .iter()
            .filter(|s| s.pid == job.pid && s.kind == SpanKind::Phase && s.name == name)
            .map(|s| s.dur_us)
            .max()
            .unwrap_or(0) as f64
            / 1e6
    };
    let build_s = phase_max_s("hash-build");
    let scan_s = phase_max_s("scan");
    let task = &e.map_tasks[0].cost;
    let scan_gb = (task.local_bytes + task.remote_bytes) as f64 / (1u64 << 30) as f64;
    let bw = params.hdfs.effective_read_bw(&cluster.node);
    let total = ex.clyde_time(qm).unwrap();

    println!("\n=== Q2.1 on cluster A, SF1000 ===\n");
    println!("Clydesdale (one multi-threaded map task per node, from recorded spans):");
    println!(
        "{}",
        render_table(
            &["component", "this repro", "paper"],
            &[
                vec![
                    "hash-table build (per node)".into(),
                    secs(build_s),
                    secs(q21::CLYDE_BUILD_S),
                ],
                vec![
                    format!("scan+probe ({scan_gb:.1} GB/node)"),
                    secs(scan_s),
                    secs(q21::CLYDE_PROBE_S),
                ],
                vec![
                    "per-node scan rate".into(),
                    format!("{:.0} MB/s", bw / (1 << 20) as f64),
                    format!("{:.0} MB/s", q21::CLYDE_SCAN_MB_S),
                ],
                vec![
                    "reduce + final sort + overhead".into(),
                    secs(total - build_s - scan_s),
                    format!("<{}s + overhead", q21::CLYDE_SORT_S_MAX),
                ],
                vec!["TOTAL".into(), secs(total), secs(q21::CLYDE_TOTAL_S)],
            ],
        )
    );
    if let Some(st) = hist.stragglers(TaskKind::Map) {
        println!(
            "map tasks: {} lanes, median {} max {} (skew {:.2}x, slowest task {} on node {})",
            st.tasks,
            secs(st.median_s),
            secs(st.max_s),
            st.time_skew,
            st.straggler_task,
            st.straggler_node
        );
    }
    let measured = qm.clyde.total_map_cost();
    println!(
        "zone maps: {} row groups checked, {} skipped (Q2.1 carries no fact or date range \
         predicate, so every group must be scanned; compare flight 1 in fig9_ablation)",
        measured.zone_checked, measured.zone_skipped
    );

    // ---- Hive mapjoin stages. ----
    println!("Hive mapjoin plan (five stages):");
    let stage_names = [
        "join date",
        "join part",
        "join supplier",
        "group by",
        "order by",
    ];
    let mut rows = Vec::new();
    let mut our_total = 0.0;
    for (i, name) in stage_names.iter().enumerate() {
        let t = ex
            .hive_stage_time(&m, qm, JoinStrategy::MapJoin, i)
            .expect("mapjoin Q2.1 fits on A");
        our_total += t;
        rows.push(vec![
            (*name).to_string(),
            secs(t),
            secs(q21::HIVE_MAPJOIN_STAGES_S[i]),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        secs(our_total),
        secs(q21::HIVE_MAPJOIN_TOTAL_S),
    ]);
    println!("{}", render_table(&["stage", "this repro", "paper"], &rows));

    // ---- Hive repartition. ----
    let rp = ex.hive_time(&m, qm, JoinStrategy::Repartition).unwrap();
    println!(
        "Hive repartition plan: {} (paper: {})",
        secs(rp),
        secs(q21::HIVE_REPART_TOTAL_S)
    );
    println!(
        "\nspeedups: vs mapjoin {:.1}x (paper {:.1}x), vs repartition {:.1}x (paper {:.1}x)",
        our_total / total,
        q21::HIVE_MAPJOIN_TOTAL_S / q21::CLYDE_TOTAL_S,
        rp / total,
        q21::HIVE_REPART_TOTAL_S / q21::CLYDE_TOTAL_S
    );
    args.write_trace(&obs);
}
