//! The hierarchical span recorder: job → stage → task → phase.
//!
//! Spans carry *simulated* time (microseconds derived from the cost model),
//! so a recorded timeline is a pure function of the execution profile and is
//! byte-for-byte reproducible. Wall-clock measurements ride separately on
//! [`crate::obs::history::TaskLane::wall_ns`] and are deliberately excluded
//! from spans so trace exports stay deterministic.
//!
//! A disabled recorder is a no-op: every method early-returns before taking
//! a lock or formatting an argument, so instrumented code paths cost nothing
//! when observability is off.

use crate::lockorder::Mutex;

/// Identifier of a recorded span (index into the recorder's span list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// Level of a span in the job → stage → task → phase hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    Job,
    Stage,
    Task,
    Phase,
}

impl SpanKind {
    /// Chrome trace-event category string.
    pub fn cat(&self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Stage => "stage",
            SpanKind::Task => "task",
            SpanKind::Phase => "phase",
        }
    }
}

/// One recorded interval on a (pid, tid) track.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub kind: SpanKind,
    pub name: String,
    /// Trace process: one per job.
    pub pid: u32,
    /// Trace thread: lane within the job (0 = job/stage lane, then one lane
    /// per (node, slot) pair).
    pub tid: u32,
    /// Simulated start, microseconds from job submission.
    pub ts_us: u64,
    /// Simulated duration, microseconds.
    pub dur_us: u64,
    /// Deterministic key/value annotations (counter values, byte counts).
    pub args: Vec<(String, String)>,
}

impl Span {
    pub fn end_us(&self) -> u64 {
        self.ts_us + self.dur_us
    }
}

/// Convert simulated seconds to trace microseconds (deterministic rounding).
pub fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

#[derive(Default)]
struct RecorderInner {
    spans: Vec<Span>,
    /// (pid, display name) for trace `process_name` metadata.
    processes: Vec<(u32, String)>,
    /// (pid, tid, display name) for trace `thread_name` metadata.
    threads: Vec<(u32, u32, String)>,
}

/// Thread-safe recorder; `disabled()` constructs the zero-overhead no-op.
pub struct SpanRecorder {
    inner: Option<Mutex<RecorderInner>>,
}

impl SpanRecorder {
    pub fn enabled() -> SpanRecorder {
        SpanRecorder {
            inner: Some(Mutex::new(RecorderInner::default())),
        }
    }

    pub fn disabled() -> SpanRecorder {
        SpanRecorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register a new trace process (one per job); returns its pid.
    pub fn new_process(&self, name: &str) -> u32 {
        let Some(inner) = &self.inner else { return 0 };
        let mut inner = inner.lock();
        let pid = inner.processes.len() as u32;
        inner.processes.push((pid, name.to_string()));
        pid
    }

    /// Give `(pid, tid)` a display name in the trace.
    pub fn name_thread(&self, pid: u32, tid: u32, name: &str) {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.lock();
        inner.threads.push((pid, tid, name.to_string()));
    }

    /// Record a span; returns its id, or `None` when disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        parent: Option<SpanId>,
        kind: SpanKind,
        name: &str,
        pid: u32,
        tid: u32,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, String)>,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.lock();
        let id = SpanId(inner.spans.len() as u32);
        inner.spans.push(Span {
            id,
            parent,
            kind,
            name: name.to_string(),
            pid,
            tid,
            ts_us,
            dur_us,
            args,
        });
        Some(id)
    }

    /// Snapshot of every recorded span.
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.lock().spans.clone(),
        }
    }

    /// Registered (pid, name) process metadata.
    pub fn processes(&self) -> Vec<(u32, String)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.lock().processes.clone(),
        }
    }

    /// Registered (pid, tid, name) thread metadata.
    pub fn threads(&self) -> Vec<(u32, u32, String)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.lock().threads.clone(),
        }
    }

    /// Drop every recorded span and track registration.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            *inner.lock() = RecorderInner::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = SpanRecorder::disabled();
        assert!(!r.is_enabled());
        assert_eq!(r.new_process("j"), 0);
        let id = r.span(None, SpanKind::Job, "j", 0, 0, 0, 10, Vec::new());
        assert!(id.is_none());
        assert!(r.spans().is_empty());
        assert!(r.processes().is_empty());
    }

    #[test]
    fn spans_record_hierarchy_and_tracks() {
        let r = SpanRecorder::enabled();
        let pid = r.new_process("job-a");
        r.name_thread(pid, 0, "job");
        let root = r
            .span(None, SpanKind::Job, "job-a", pid, 0, 0, 100, Vec::new())
            .unwrap();
        let child = r
            .span(
                Some(root),
                SpanKind::Task,
                "map 0",
                pid,
                1,
                5,
                50,
                vec![("rows".into(), "7".into())],
            )
            .unwrap();
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].end_us(), 55);
        assert_eq!(r.processes(), vec![(0, "job-a".to_string())]);
        r.reset();
        assert!(r.spans().is_empty());
    }

    #[test]
    fn us_conversion_rounds_deterministically() {
        assert_eq!(us(0.0), 0);
        assert_eq!(us(1.5), 1_500_000);
        assert_eq!(us(0.000_000_6), 1);
        assert_eq!(us(-1.0), 0);
    }
}
