//! Pipe-delimited text — the `dbgen` interchange format.
//!
//! The paper quotes the star schema benchmark's sizes in "uncompressed text
//! format" (600 GB at SF1000) against 334 GB in binary Multi-CIF; this module
//! provides that text representation so the size comparison and the
//! TextInputFormat fallback experiments (Section 6.3 mentions re-running
//! with `TextInputFormat`) are reproducible.

use clyde_common::Datum;
use clyde_common::{ClydeError, DatumType, Result, Row, Schema};
use clyde_dfs::Dfs;
use clyde_mapred::{InputFormat, InputSplit, JobConf, Reader, RecordReader, SplitSpec, TaskIo};
use std::sync::Arc;

const DELIM: char = '|';

/// Serialize rows as `a|b|c\n` lines.
pub struct TextWriter {
    writer: clyde_dfs::DfsWriter,
    buf: String,
}

impl TextWriter {
    pub fn create(dfs: &Arc<Dfs>, path: impl Into<String>) -> Result<TextWriter> {
        Ok(TextWriter {
            writer: dfs.create(path, None, None)?,
            buf: String::new(),
        })
    }

    pub fn append(&mut self, row: &Row) -> Result<()> {
        use std::fmt::Write as _;
        self.buf.clear();
        for (i, d) in row.iter().enumerate() {
            if i > 0 {
                self.buf.push(DELIM);
            }
            if let Datum::Str(s) = d {
                if s.contains(DELIM) || s.contains('\n') {
                    return Err(ClydeError::Format(format!(
                        "string value {s:?} contains the delimiter"
                    )));
                }
            }
            write!(self.buf, "{d}").expect("string formatting cannot fail");
        }
        self.buf.push('\n');
        self.writer.write_all(self.buf.as_bytes());
        Ok(())
    }

    pub fn close(self) -> Result<()> {
        self.writer.close()
    }
}

/// Parse one delimited line against a schema.
pub fn parse_line(line: &str, schema: &Schema) -> Result<Row> {
    let mut row = Row::with_capacity(schema.len());
    let mut parts = line.split(DELIM);
    for field in schema.fields() {
        let part = parts
            .next()
            .ok_or_else(|| ClydeError::Format(format!("line has too few fields: {line:?}")))?;
        let datum = match field.dtype {
            DatumType::I32 => Datum::I32(part.parse().map_err(|_| {
                ClydeError::Format(format!("bad i32 {part:?} in column {}", field.name))
            })?),
            DatumType::I64 => Datum::I64(part.parse().map_err(|_| {
                ClydeError::Format(format!("bad i64 {part:?} in column {}", field.name))
            })?),
            DatumType::F64 => Datum::F64(part.parse().map_err(|_| {
                ClydeError::Format(format!("bad f64 {part:?} in column {}", field.name))
            })?),
            DatumType::Str => Datum::str(part),
        };
        row.push(datum);
    }
    if parts.next().is_some() {
        return Err(ClydeError::Format(format!(
            "line has too many fields: {line:?}"
        )));
    }
    Ok(row)
}

/// Input format over newline-delimited text files. Splits at DFS block
/// boundaries, extending each split to the next newline (Hadoop's
/// `TextInputFormat` convention), so records never straddle readers.
pub struct TextInputFormat {
    pub path: String,
    pub schema: Schema,
    /// Target split size in bytes (defaults to the DFS block size).
    pub split_bytes: Option<u64>,
}

impl TextInputFormat {
    pub fn new(path: impl Into<String>, schema: Schema) -> TextInputFormat {
        TextInputFormat {
            path: path.into(),
            schema,
            split_bytes: None,
        }
    }
}

impl InputFormat for TextInputFormat {
    fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
        let len = dfs.file_len(&self.path)?;
        let hosts = dfs.hosts(&self.path)?;
        let chunk = self.split_bytes.unwrap_or(dfs.block_size()).max(1);
        let mut splits = Vec::new();
        let mut offset = 0u64;
        let mut index = 0usize;
        while offset < len {
            let this = chunk.min(len - offset);
            splits.push(InputSplit {
                index,
                spec: SplitSpec::FileRange {
                    path: self.path.clone(),
                    offset,
                    len: this,
                },
                hosts: hosts.clone(),
                bytes: this,
            });
            offset += this;
            index += 1;
        }
        if splits.is_empty() {
            splits.push(InputSplit {
                index: 0,
                spec: SplitSpec::FileRange {
                    path: self.path.clone(),
                    offset: 0,
                    len: 0,
                },
                hosts,
                bytes: 0,
            });
        }
        Ok(splits)
    }

    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
        if part != 0 {
            return Err(ClydeError::MapReduce("text splits have one part".into()));
        }
        let SplitSpec::FileRange { path, offset, len } = &split.spec else {
            return Err(ClydeError::MapReduce(
                "text expects file-range splits".into(),
            ));
        };
        let file_len = io.dfs.file_len(path)?;
        // Hadoop convention: a split owns the records that *start* within it.
        // Read past the end to the next newline; skip the partial first line
        // unless at offset 0.
        let read_end = (*offset + *len + 64 * 1024).min(file_len);
        let data = io.read_range(path, *offset, read_end - *offset)?;
        let text = std::str::from_utf8(&data)
            .map_err(|_| ClydeError::Format("text file is not utf-8".into()))?;

        let mut start = 0usize;
        if *offset > 0 {
            match text.find('\n') {
                Some(nl) => start = nl + 1,
                None => start = text.len(),
            }
        }
        let logical_end = (*len as usize).min(text.len());
        let mut rows = Vec::new();
        let mut pos = start;
        while pos < text.len() {
            // Hadoop convention: consume lines whose start is <= the split
            // boundary (a line starting exactly at the boundary belongs to
            // this split; the next split, having offset > 0, skips it as its
            // partial first line).
            if pos > logical_end {
                break;
            }
            let rest = &text[pos..];
            let (line, consumed) = match rest.find('\n') {
                Some(nl) => (&rest[..nl], nl + 1),
                None => (rest, rest.len()),
            };
            if !line.is_empty() {
                rows.push(parse_line(line, &self.schema)?);
            }
            pos += consumed;
        }
        Ok(Reader::Rows(Box::new(TextRows { rows, pos: 0 })))
    }
}

struct TextRows {
    rows: Vec<Row>,
    pos: usize,
}

impl RecordReader for TextRows {
    fn next(&mut self) -> Result<Option<(Row, Row)>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let r = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some((Row::empty(), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::{row, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::i32("id"), Field::str("name"), Field::i64("v")])
    }

    fn write_rows(dfs: &Arc<Dfs>, path: &str, n: usize) {
        let mut w = TextWriter::create(dfs, path).unwrap();
        for i in 0..n {
            w.append(&row![i as i32, format!("name{i}"), (i * 7) as i64])
                .unwrap();
        }
        w.close().unwrap();
    }

    fn read_all(fmt: &TextInputFormat, dfs: &Arc<Dfs>) -> Vec<Row> {
        let splits = fmt.splits(dfs, &JobConf::new()).unwrap();
        let io = TaskIo::client(Arc::clone(dfs));
        let mut out = Vec::new();
        for s in &splits {
            let mut r = fmt.open(s, 0, &io).unwrap().into_rows().unwrap();
            while let Some((_, v)) = r.next().unwrap() {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn roundtrip_single_split() {
        let dfs = Dfs::for_tests(2);
        write_rows(&dfs, "/text/t1", 10);
        let mut fmt = TextInputFormat::new("/text/t1", schema());
        fmt.split_bytes = Some(1 << 20);
        let rows = read_all(&fmt, &dfs);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3], row![3i32, "name3", 21i64]);
    }

    #[test]
    fn split_boundaries_do_not_lose_or_duplicate_records() {
        let dfs = Dfs::for_tests(2);
        write_rows(&dfs, "/text/t2", 200);
        // Try many split sizes, including pathological ones.
        for split_bytes in [1u64, 7, 16, 33, 100, 1000, 1 << 20] {
            let mut fmt = TextInputFormat::new("/text/t2", schema());
            fmt.split_bytes = Some(split_bytes);
            let rows = read_all(&fmt, &dfs);
            assert_eq!(rows.len(), 200, "split_bytes={split_bytes}");
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r.at(0).as_i32().unwrap() as usize, i);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let s = schema();
        assert!(parse_line("1|a", &s).is_err()); // too few
        assert!(parse_line("1|a|2|3", &s).is_err()); // too many
        assert!(parse_line("x|a|2", &s).is_err()); // bad int
        assert_eq!(parse_line("1|a|2", &s).unwrap(), row![1i32, "a", 2i64]);
    }

    #[test]
    fn writer_rejects_delimiter_in_strings() {
        let dfs = Dfs::for_tests(2);
        let mut w = TextWriter::create(&dfs, "/text/bad").unwrap();
        assert!(w.append(&row![1i32, "a|b", 2i64]).is_err());
    }

    #[test]
    fn empty_file_yields_no_rows() {
        let dfs = Dfs::for_tests(2);
        TextWriter::create(&dfs, "/text/empty")
            .unwrap()
            .close()
            .unwrap();
        let fmt = TextInputFormat::new("/text/empty", schema());
        assert!(read_all(&fmt, &dfs).is_empty());
    }
}
