//! Build a [`JobHistory`] from an executed (or extrapolated) job profile.
//!
//! The cost model prices phases with wave formulas ([`crate::cost::makespan`]);
//! for the swimlane view we additionally *lay out* every task on a concrete
//! (node, slot) timeline using earliest-free-slot list scheduling — the same
//! policy Hadoop's slot scheduler follows. For uniform task sets (and for
//! Clydesdale's one-task-per-node jobs in particular) the two agree exactly;
//! for skewed sets the stage spans show the priced makespan while the lanes
//! show the realized schedule.

use crate::cost::{CostParams, JobCost};
use crate::job::JobProfile;
use crate::scheduler::JobSchedule;
use clyde_common::obs::{JobHistory, PhaseSlice, TaskKind, TaskLane};
use clyde_dfs::ClusterSpec;

/// Earliest-free-slot schedule: returns (slot, start) for each task duration
/// presented in order on one node whose slots all free up at `t0`.
struct NodeSlots {
    free_at: Vec<f64>,
}

impl NodeSlots {
    fn new(concurrency: u32, t0: f64) -> NodeSlots {
        NodeSlots {
            free_at: vec![t0; concurrency.max(1) as usize],
        }
    }

    fn place(&mut self, dur: f64) -> (u32, f64) {
        let (slot, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .expect("schedule time is NaN")
                    .then(a.0.cmp(&b.0))
            })
            .expect("at least one slot");
        let start = self.free_at[slot];
        self.free_at[slot] = start + dur;
        (slot as u32, start)
    }
}

fn shift(phases: Vec<PhaseSlice>, start: f64) -> Vec<PhaseSlice> {
    phases
        .into_iter()
        .map(|p| PhaseSlice {
            start_s: p.start_s + start,
            ..p
        })
        .collect()
}

/// Assemble the full job history: task swimlanes with phase slices, stage
/// times from `cost`, and the combiner/merge/locality roll-ups.
pub fn job_history(
    profile: &JobProfile,
    cost: &JobCost,
    params: &CostParams,
    cluster: &ClusterSpec,
) -> JobHistory {
    let n = cluster.num_workers().max(1);
    let concurrency = profile.map_concurrency.max(1);

    // Map lanes start after client-side setup.
    let mut map_slots: Vec<NodeSlots> = (0..n)
        .map(|_| NodeSlots::new(concurrency, cost.setup_s))
        .collect();
    let mut tasks: Vec<TaskLane> =
        Vec::with_capacity(profile.map_tasks.len() + profile.reduce_tasks.len());
    for (i, t) in profile.map_tasks.iter().enumerate() {
        let node = t.node.0 % n;
        let dur = params.map_task_duration(cluster, &t.cost, concurrency);
        let (slot, start) = map_slots[node].place(dur);
        tasks.push(TaskLane {
            index: i,
            kind: TaskKind::Map,
            node,
            slot,
            start_s: start,
            dur_s: dur,
            local_bytes: t.cost.local_bytes,
            remote_bytes: t.cost.remote_bytes,
            emit_records: t.cost.emit_records,
            emit_bytes: t.cost.emit_bytes,
            wall_ns: t.wall_ns,
            speculative: t.speculative,
            phases: shift(params.map_task_phases(cluster, &t.cost, concurrency), start),
        });
    }

    // Killed attempts (speculative losers) occupied real map slots until the
    // commit race was decided; lay them out after the committed lanes so the
    // swimlane view shows the wasted occupancy.
    for k in &profile.killed_attempts {
        let node = k.node.0 % n;
        let (slot, start) = map_slots[node].place(k.busy_s);
        tasks.push(TaskLane {
            index: k.task,
            kind: TaskKind::Map,
            node,
            slot,
            start_s: start,
            dur_s: k.busy_s,
            local_bytes: k.cost.local_bytes,
            remote_bytes: k.cost.remote_bytes,
            emit_records: k.cost.emit_records,
            emit_bytes: k.cost.emit_bytes,
            wall_ns: 0,
            speculative: true,
            phases: Vec::new(),
        });
    }

    // Reduce lanes start once the map phase and the shuffle complete.
    let t_reduce = cost.setup_s + cost.map_s + cost.shuffle_s;
    let mut reduce_slots: Vec<NodeSlots> = (0..n)
        .map(|_| NodeSlots::new(cluster.reduce_slots, t_reduce))
        .collect();
    for (i, t) in profile.reduce_tasks.iter().enumerate() {
        let node = t.node.0 % n;
        let dur = params.reduce_task_duration(cluster, &t.cost);
        let (slot, start) = reduce_slots[node].place(dur);
        tasks.push(TaskLane {
            index: i,
            kind: TaskKind::Reduce,
            node,
            slot,
            start_s: start,
            dur_s: dur,
            local_bytes: t.cost.local_bytes,
            remote_bytes: t.cost.remote_bytes,
            emit_records: t.cost.emit_records,
            emit_bytes: t.cost.emit_bytes,
            wall_ns: t.wall_ns,
            speculative: false,
            phases: shift(params.reduce_task_phases(cluster, &t.cost), start),
        });
    }

    let total_map = profile.total_map_cost();
    let total_reduce = profile.total_reduce_cost();
    let scanned = total_map.local_bytes + total_map.remote_bytes;
    JobHistory {
        name: profile.name.clone(),
        tenant: String::new(),
        t0_s: 0.0,
        setup_s: cost.setup_s,
        map_s: cost.map_s,
        shuffle_s: cost.shuffle_s,
        reduce_s: cost.reduce_s,
        overhead_s: cost.overhead_s,
        map_concurrency: concurrency,
        shuffle_bytes: profile.shuffle_bytes,
        merge_runs: total_reduce.merge_runs,
        combine_input_records: total_map.combine_input_records,
        combine_output_records: total_map.combine_output_records,
        locality: if scanned == 0 {
            1.0
        } else {
            total_map.local_bytes as f64 / scanned as f64
        },
        split_locality: profile.split_locality,
        failed_attempts: profile.failed_attempts,
        speculative_attempts: profile.speculative_attempts,
        speculative_wins: profile.speculative_wins,
        blacklisted_nodes: profile.blacklisted_nodes.len() as u32,
        dead_nodes: profile.dead_nodes.len() as u32,
        rereplicated_blocks: profile.rereplicated_blocks,
        wall_phases: profile.wall_phases.clone(),
        // Per-job I/O is attributed by the engine after pricing (it owns the
        // DFS scope); histories start with an empty snapshot.
        io: Vec::new(),
        corrupt_reads: 0,
        tasks,
    }
}

/// Assemble a job history from a *multi-job schedule*: task lanes are taken
/// verbatim from the slot simulator's placements (absolute shared-timeline
/// times), and the stage bands are re-derived so they tile the scheduled
/// span exactly — the "map" band absorbs any queueing between slot grants,
/// so `t0_s + total_s()` always equals the scheduled finish.
///
/// Served jobs never carry fault plans, so killed speculative attempts are
/// not laid out here (the solo path's [`job_history`] handles those).
pub fn job_history_scheduled(
    profile: &JobProfile,
    cost: &JobCost,
    params: &CostParams,
    cluster: &ClusterSpec,
    tenant: &str,
    arrival_s: f64,
    sched: &JobSchedule,
) -> JobHistory {
    let concurrency = profile.map_concurrency.max(1);
    let mut tasks: Vec<TaskLane> =
        Vec::with_capacity(profile.map_tasks.len() + profile.reduce_tasks.len());
    for p in &sched.map {
        let t = &profile.map_tasks[p.task];
        tasks.push(TaskLane {
            index: p.task,
            kind: TaskKind::Map,
            node: p.node,
            slot: p.slot,
            start_s: p.start_s,
            dur_s: p.dur_s,
            local_bytes: t.cost.local_bytes,
            remote_bytes: t.cost.remote_bytes,
            emit_records: t.cost.emit_records,
            emit_bytes: t.cost.emit_bytes,
            wall_ns: t.wall_ns,
            speculative: t.speculative,
            phases: shift(
                params.map_task_phases(cluster, &t.cost, concurrency),
                p.start_s,
            ),
        });
    }
    for p in &sched.reduce {
        let t = &profile.reduce_tasks[p.task];
        tasks.push(TaskLane {
            index: p.task,
            kind: TaskKind::Reduce,
            node: p.node,
            slot: p.slot,
            start_s: p.start_s,
            dur_s: p.dur_s,
            local_bytes: t.cost.local_bytes,
            remote_bytes: t.cost.remote_bytes,
            emit_records: t.cost.emit_records,
            emit_bytes: t.cost.emit_bytes,
            wall_ns: t.wall_ns,
            speculative: false,
            phases: shift(params.reduce_task_phases(cluster, &t.cost), p.start_s),
        });
    }

    let total_map = profile.total_map_cost();
    let total_reduce = profile.total_reduce_cost();
    let scanned = total_map.local_bytes + total_map.remote_bytes;
    JobHistory {
        name: profile.name.clone(),
        tenant: tenant.to_string(),
        t0_s: arrival_s,
        setup_s: cost.setup_s,
        map_s: (sched.map_end_s - arrival_s - cost.setup_s).max(0.0),
        shuffle_s: cost.shuffle_s,
        reduce_s: (sched.reduce_end_s - sched.map_end_s - cost.shuffle_s).max(0.0),
        overhead_s: cost.overhead_s,
        map_concurrency: concurrency,
        shuffle_bytes: profile.shuffle_bytes,
        merge_runs: total_reduce.merge_runs,
        combine_input_records: total_map.combine_input_records,
        combine_output_records: total_map.combine_output_records,
        locality: if scanned == 0 {
            1.0
        } else {
            total_map.local_bytes as f64 / scanned as f64
        },
        split_locality: profile.split_locality,
        failed_attempts: profile.failed_attempts,
        speculative_attempts: profile.speculative_attempts,
        speculative_wins: profile.speculative_wins,
        blacklisted_nodes: profile.blacklisted_nodes.len() as u32,
        dead_nodes: profile.dead_nodes.len() as u32,
        rereplicated_blocks: profile.rereplicated_blocks,
        wall_phases: profile.wall_phases.clone(),
        io: Vec::new(),
        corrupt_reads: 0,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TaskCost;
    use crate::job::TaskProfile;
    use clyde_dfs::NodeId;

    fn profile(num_tasks: usize, nodes: usize, concurrency: u32) -> JobProfile {
        let mut cost = TaskCost::new();
        cost.local_bytes = 100 << 20;
        cost.emit_records = 1000;
        cost.emit_bytes = 32_000;
        JobProfile {
            name: "hist-test".into(),
            map_tasks: (0..num_tasks)
                .map(|i| TaskProfile {
                    node: NodeId(i % nodes),
                    cost,
                    wall_ns: 7,
                    speculative: false,
                })
                .collect(),
            map_concurrency: concurrency,
            split_locality: 1.0,
            ..JobProfile::default()
        }
    }

    #[test]
    fn lanes_respect_slot_concurrency() {
        let cluster = ClusterSpec::tiny(2);
        let params = CostParams::paper();
        // 4 tasks on 2 nodes with 2 slots each: every task starts at setup
        // time because each node has exactly as many tasks as slots... with
        // concurrency 1, the second task per node queues behind the first.
        let p = profile(4, 2, 1);
        let cost = p.price(&params, &cluster).unwrap();
        let h = job_history(&p, &cost, &params, &cluster);
        assert_eq!(h.tasks.len(), 4);
        let mut by_node: Vec<Vec<&clyde_common::obs::TaskLane>> = vec![Vec::new(); 2];
        for t in &h.tasks {
            by_node[t.node].push(t);
        }
        for lanes in &by_node {
            assert_eq!(lanes.len(), 2);
            // Serial on one slot: second starts when first finishes.
            assert!((lanes[1].start_s - lanes[0].finish_s()).abs() < 1e-9);
            assert_eq!(lanes[0].slot, lanes[1].slot);
        }
        // Schedule agrees with the priced makespan for this uniform set.
        let last = h.tasks.iter().map(|t| t.finish_s()).fold(0.0, f64::max);
        assert!((last - (h.setup_s + h.map_s)).abs() < 1e-6);
        // Phases were shifted to absolute time.
        let t0 = &h.tasks[0];
        assert!((t0.phases[0].start_s - t0.start_s).abs() < 1e-12);
        assert_eq!(t0.wall_ns, 7);
    }

    #[test]
    fn two_slots_run_tasks_in_parallel() {
        let cluster = ClusterSpec::tiny(2);
        let params = CostParams::paper();
        let p = profile(4, 2, 2);
        let cost = p.price(&params, &cluster).unwrap();
        let h = job_history(&p, &cost, &params, &cluster);
        for node in 0..2 {
            let lanes: Vec<_> = h.tasks.iter().filter(|t| t.node == node).collect();
            assert_eq!(lanes.len(), 2);
            // Both tasks start together on different slots.
            assert!((lanes[0].start_s - lanes[1].start_s).abs() < 1e-12);
            assert_ne!(lanes[0].slot, lanes[1].slot);
        }
    }

    #[test]
    fn history_is_deterministic() {
        let cluster = ClusterSpec::tiny(3);
        let params = CostParams::paper();
        let p = profile(7, 3, 2);
        let cost = p.price(&params, &cluster).unwrap();
        let a = job_history(&p, &cost, &params, &cluster);
        let b = job_history(&p, &cost, &params, &cluster);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.start_s.to_bits(), y.start_s.to_bits());
            assert_eq!(x.dur_s.to_bits(), y.dur_s.to_bits());
        }
    }
}
