//! Mixed-tenant workload replay for the multi-job server.
//!
//! Builds a **seeded** three-tenant stream over the 13 SSB queries and
//! replays it through [`Clydesdale::serve`] under each scheduling policy:
//!
//! * `etl` — a queue-saturating burst: 15 batch queries submitted within
//!   the first ~2.5 s.
//! * `dash` — the full 13-query flight as staggered periodic refreshes,
//!   one every ~10 s after the burst drains.
//! * `adhoc` — small interactive queries arriving *mid-burst*; this is the
//!   tenant FIFO starves and fair scheduling is supposed to rescue.
//!
//! Everything downstream of the submission stream is deterministic
//! simulated time, so per-tenant latency percentiles and throughput are
//! byte-stable across reruns and host thread counts — which is what lets
//! CI gate on them exactly (see [`gate`]).

use clyde_common::{ClydeError, Obs, Result};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::{SchedPolicy, ServerConfig};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::{Clydesdale, ServedQuery};
use std::sync::Arc;

/// The full SSB flight, in query-number order.
pub const ALL_QUERIES: [&str; 13] = [
    "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2",
    "Q4.3",
];

/// Tenants in submission-priority order, with their capacity-scheduler
/// weights: interactive tenants are promised the larger share.
pub const TENANTS: [(&str, f64); 3] = [("etl", 1.0), ("dash", 2.0), ("adhoc", 4.0)];

/// One submission of the replayed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    pub tenant: &'static str,
    pub query_id: &'static str,
    /// Server-clock submission time (seconds).
    pub arrival_s: f64,
}

/// splitmix64 finalizer — the workspace's stock seeded mixer (same idiom
/// as the fault injector), used here to jitter arrival times.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform [0, 1) draw from (seed, stream, index) — stream keeps the
/// tenants' jitter statistically independent.
fn unit(seed: u64, stream: u64, i: u64) -> f64 {
    (mix(seed ^ (stream << 32) ^ i) >> 11) as f64 / (1u64 << 53) as f64
}

/// How many batch submissions the etl tenant bursts near t=0. The burst
/// must be deep enough that FIFO's queue wait dominates an interactive
/// job's runtime — with only a few queued jobs, FIFO's natural pipelining
/// is already near-optimal and no policy can beat it.
const ETL_BURST: usize = 15;

/// The seeded mixed-tenant stream: 15 + 13 + 3 = 31 submissions, sorted by
/// arrival time (the server clock is monotone).
pub fn scenario(seed: u64) -> Vec<Arrival> {
    let mut arrivals = Vec::new();
    // etl: a deep burst of the non-Q1 flights near t=0.
    for (i, qid) in ALL_QUERIES[3..].iter().cycle().take(ETL_BURST).enumerate() {
        arrivals.push(Arrival {
            tenant: "etl",
            query_id: qid,
            arrival_s: 0.15 * i as f64 + 0.1 * unit(seed, 1, i as u64),
        });
    }
    // dash: the whole flight as staggered periodic refreshes once the
    // burst drains — the uncontended baseline lane of the report.
    for (i, qid) in ALL_QUERIES.iter().enumerate() {
        arrivals.push(Arrival {
            tenant: "dash",
            query_id: qid,
            arrival_s: 50.0 + 10.0 * i as f64 + 3.0 * unit(seed, 2, i as u64),
        });
    }
    // adhoc: small interactive queries landing inside the etl burst —
    // the tenant FIFO starves.
    for (i, qid) in ["Q1.1", "Q1.3", "Q1.2"].iter().enumerate() {
        arrivals.push(Arrival {
            tenant: "adhoc",
            query_id: qid,
            arrival_s: 2.0 + 1.5 * i as f64 + unit(seed, 3, i as u64),
        });
    }
    arrivals.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then_with(|| a.tenant.cmp(b.tenant))
            .then_with(|| a.query_id.cmp(b.query_id))
    });
    arrivals
}

/// Stand up the workload's simulated cluster (3 nodes, 1 MiB blocks,
/// colocated CIF) with SSB loaded at `sf`, optionally instrumented and
/// with a forced `MtMapRunner` host thread count.
pub fn build_clyde(
    sf: f64,
    seed: u64,
    obs: Option<Arc<Obs>>,
    host_threads: Option<u32>,
) -> Result<Clydesdale> {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(sf, seed),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )?;
    let mut clyde = Clydesdale::new(dfs, layout);
    if let Some(obs) = obs {
        clyde = clyde.with_obs(obs);
    }
    if let Some(t) = host_threads {
        clyde = clyde.with_host_threads(t);
    }
    clyde.warm_dimension_cache()?;
    Ok(clyde)
}

/// Per-tenant latency distribution (nearest-rank percentiles, seconds).
#[derive(Debug, Clone)]
pub struct TenantStats {
    pub tenant: String,
    pub jobs: usize,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub mean_wait_s: f64,
}

/// One policy's replay of the full stream.
pub struct PolicyRun {
    pub policy: SchedPolicy,
    /// Last finish (including final sorts) on the simulated timeline.
    pub makespan_s: f64,
    pub throughput_jobs_per_min: f64,
    pub tenants: Vec<TenantStats>,
    /// Every served query, in submission order (rows are solo-identical).
    pub served: Vec<ServedQuery>,
}

impl PolicyRun {
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.tenant == name)
    }
}

/// Nearest-rank percentile of an unsorted sample (p in [0, 100]).
fn percentile(sample: &[f64], p: f64) -> f64 {
    let mut v = sample.to_vec();
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// Replay `arrivals` under `policy` on a shared server and roll up
/// per-tenant latency stats. Every submission must be admitted — the
/// scenario is sized inside the queue bound; a rejection is a bug.
pub fn run_policy(
    clyde: &Clydesdale,
    arrivals: &[Arrival],
    policy: SchedPolicy,
) -> Result<PolicyRun> {
    let cfg = ServerConfig {
        policy,
        queue_capacity: 64,
        tenant_quota: 0,
        weights: TENANTS.iter().map(|(t, w)| (t.to_string(), *w)).collect(),
    };
    let mut srv = clyde.serve(cfg);
    for a in arrivals {
        let q = query_by_id(a.query_id)?;
        if let Err(reason) = srv.submit(a.tenant, a.arrival_s, &q)? {
            return Err(ClydeError::MapReduce(format!(
                "workload scenario overflowed admission control: {} {} at {:.2}s: {reason}",
                a.tenant, a.query_id, a.arrival_s
            )));
        }
    }
    let served = srv.drain()?;
    let makespan_s = served.iter().map(|s| s.finish_s).fold(0.0, f64::max);
    let tenants = TENANTS
        .iter()
        .map(|(name, _)| {
            let lat: Vec<f64> = served
                .iter()
                .filter(|s| s.tenant == *name)
                .map(ServedQuery::latency_s)
                .collect();
            let wait: f64 = served
                .iter()
                .filter(|s| s.tenant == *name)
                .map(ServedQuery::wait_s)
                .sum();
            TenantStats {
                tenant: name.to_string(),
                jobs: lat.len(),
                p50_s: percentile(&lat, 50.0),
                p95_s: percentile(&lat, 95.0),
                p99_s: percentile(&lat, 99.0),
                mean_wait_s: wait / (lat.len().max(1)) as f64,
            }
        })
        .collect();
    Ok(PolicyRun {
        policy,
        makespan_s,
        throughput_jobs_per_min: served.len() as f64 * 60.0 / makespan_s.max(1e-9),
        tenants,
        served,
    })
}

/// Human-readable latency report (also the CI artifact).
pub fn render_report(sf: f64, seed: u64, runs: &[PolicyRun]) -> String {
    let mut out = String::new();
    let jobs = runs.first().map_or(0, |r| r.served.len());
    out.push_str(&format!(
        "mixed-tenant workload: {jobs} jobs, {} tenants, SF {sf}, seed {seed}\n\n",
        TENANTS.len()
    ));
    out.push_str(&format!(
        "{:<10} {:>10} {:>9}   {:<7} {:>4} {:>9} {:>9} {:>9} {:>10}\n",
        "policy", "makespan", "jobs/min", "tenant", "jobs", "p50(s)", "p95(s)", "p99(s)", "wait(s)"
    ));
    for r in runs {
        for (i, t) in r.tenants.iter().enumerate() {
            let (mk, tp) = if i == 0 {
                (
                    format!("{:.1}", r.makespan_s),
                    format!("{:.2}", r.throughput_jobs_per_min),
                )
            } else {
                (String::new(), String::new())
            };
            out.push_str(&format!(
                "{:<10} {:>10} {:>9}   {:<7} {:>4} {:>9.2} {:>9.2} {:>9.2} {:>10.2}\n",
                if i == 0 { r.policy.label() } else { "" },
                mk,
                tp,
                t.tenant,
                t.jobs,
                t.p50_s,
                t.p95_s,
                t.p99_s,
                t.mean_wait_s
            ));
        }
    }
    if let (Some(fifo), Some(fair)) = (
        runs.iter().find(|r| r.policy == SchedPolicy::Fifo),
        runs.iter().find(|r| r.policy == SchedPolicy::Fair),
    ) {
        if let (Some(f), Some(a)) = (fifo.tenant("adhoc"), fair.tenant("adhoc")) {
            out.push_str(&format!(
                "\nstarved tenant (adhoc) p99: fifo {:.2}s -> fair {:.2}s ({:.2}x)\n",
                f.p99_s,
                a.p99_s,
                f.p99_s / a.p99_s.max(1e-9)
            ));
        }
    }
    out
}

/// Serialize the runs as the committed-gate JSON document (hand-rolled on
/// purpose — no serde in this workspace; see `BENCH_workload.json`).
pub fn to_json(sf: f64, seed: u64, runs: &[PolicyRun]) -> String {
    let mut out = String::new();
    let jobs = runs.first().map_or(0, |r| r.served.len());
    out.push_str(&format!(
        "{{\n  \"sf\": {sf},\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \"policies\": {{\n"
    ));
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"makespan_s\": {:.2},\n      \
             \"throughput_jobs_per_min\": {:.2},\n      \"tenants\": {{\n",
            r.policy.label(),
            r.makespan_s,
            r.throughput_jobs_per_min
        ));
        for (j, t) in r.tenants.iter().enumerate() {
            let comma = if j + 1 < r.tenants.len() { "," } else { "" };
            out.push_str(&format!(
                "        \"{}\": {{ \"jobs\": {}, \"p50_s\": {:.2}, \"p95_s\": {:.2}, \
                 \"p99_s\": {:.2}, \"mean_wait_s\": {:.2} }}{comma}\n",
                t.tenant, t.jobs, t.p50_s, t.p95_s, t.p99_s, t.mean_wait_s
            ));
        }
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!("      }}\n    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Pull the number following `"field":` inside the `"section"` object of a
/// committed gate JSON (same hand-rolled scan as `bench_probe`).
pub fn recorded_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let key = format!("\"{section}\"");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let fkey = format!("\"{field}\"");
    let fp = rest.find(&fkey)?;
    let after = &rest[fp + fkey.len()..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The CI workload gate. Fails (returns every violation) if:
///
/// 1. fair scheduling does not beat FIFO on the starved tenant's p99, or
/// 2. any policy's throughput falls below 0.95x its committed value.
///
/// Both quantities are simulated, so a healthy tree reproduces the
/// committed numbers exactly; the 5% floor only absorbs intentional cost
/// recalibrations, not noise.
pub fn gate(runs: &[PolicyRun], committed: &str) -> std::result::Result<(), Vec<String>> {
    let mut violations = Vec::new();
    match (
        runs.iter()
            .find(|r| r.policy == SchedPolicy::Fifo)
            .and_then(|r| r.tenant("adhoc")),
        runs.iter()
            .find(|r| r.policy == SchedPolicy::Fair)
            .and_then(|r| r.tenant("adhoc")),
    ) {
        (Some(fifo), Some(fair)) => {
            if fair.p99_s < fifo.p99_s {
                eprintln!(
                    "gate adhoc p99: fair {:.2}s < fifo {:.2}s — ok",
                    fair.p99_s, fifo.p99_s
                );
            } else {
                violations.push(format!(
                    "fair must beat fifo on the starved tenant's p99: \
                     fair {:.2}s !< fifo {:.2}s",
                    fair.p99_s, fifo.p99_s
                ));
            }
        }
        _ => violations.push("gate needs both fifo and fair runs with an adhoc tenant".into()),
    }
    for r in runs {
        let label = r.policy.label();
        let Some(recorded) = recorded_number(committed, label, "throughput_jobs_per_min") else {
            violations.push(format!("committed gate has no throughput for `{label}`"));
            continue;
        };
        let floor = recorded * 0.95;
        if r.throughput_jobs_per_min >= floor {
            eprintln!(
                "gate {label}: throughput {:.2} jobs/min vs recorded {recorded:.2} \
                 (floor {floor:.2}) — ok",
                r.throughput_jobs_per_min
            );
        } else {
            violations.push(format!(
                "{label}: throughput {:.2} jobs/min fell below floor {floor:.2} \
                 (recorded {recorded:.2})",
                r.throughput_jobs_per_min
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_seed_deterministic_and_covers_tenants() {
        let a = scenario(46);
        assert_eq!(a, scenario(46));
        assert_ne!(a, scenario(47));
        assert_eq!(a.len(), 31);
        // The dash tenant replays the full SSB flight.
        let mut dash: Vec<&str> = a
            .iter()
            .filter(|x| x.tenant == "dash")
            .map(|x| x.query_id)
            .collect();
        dash.sort_unstable();
        let mut all = ALL_QUERIES.to_vec();
        all.sort_unstable();
        assert_eq!(dash, all);
        for (tenant, _) in TENANTS {
            assert!(a.iter().any(|x| x.tenant == tenant));
        }
        // Monotone arrivals: the server clock never runs backwards.
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // adhoc lands inside the etl burst window, not after it drains.
        let adhoc_first = a
            .iter()
            .find(|x| x.tenant == "adhoc")
            .map(|x| x.arrival_s)
            .unwrap();
        assert!(adhoc_first < 10.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 95.0), 5.0);
        assert_eq!(percentile(&v, 99.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn gate_parses_committed_numbers() {
        let json = "{ \"policies\": { \"fifo\": { \"throughput_jobs_per_min\": 12.50 },\n\
                     \"fair\": { \"throughput_jobs_per_min\": 13.25 } } }";
        assert_eq!(
            recorded_number(json, "fifo", "throughput_jobs_per_min"),
            Some(12.5)
        );
        assert_eq!(
            recorded_number(json, "fair", "throughput_jobs_per_min"),
            Some(13.25)
        );
        assert_eq!(
            recorded_number(json, "capacity", "throughput_jobs_per_min"),
            None
        );
    }
}
