//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro (both
//! `arg in strategy` and `arg: Type` forms), `any::<T>()`, integer-range and
//! simple `[class]{lo,hi}` regex string strategies, tuples, `Just`,
//! `prop_oneof!`, `prop_map`, `proptest::collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a fixed seed so runs are
//! deterministic; failing cases panic with the generated inputs printed.
//! There is no shrinking and no persistence — a failure reports the raw
//! counterexample.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Object-safe: `gen_value` is the only required method, so
    /// `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].gen_value(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// `"[class]{lo,hi}"` string strategies: a single character class with a
    /// repetition count, which is the only regex shape this workspace uses.
    /// Supports literal chars, `a-z` ranges, `\xNN` escapes, and `\PC`
    /// (printable — here: printable ASCII). A pattern without a trailing
    /// `{lo,hi}` yields exactly one class character.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pat.chars().collect();
        let mut i = 0;
        assert!(
            bytes.first() == Some(&'['),
            "unsupported regex strategy {pat:?}: expected `[class]{{lo,hi}}`"
        );
        i += 1;
        let mut chars = Vec::new();
        while i < bytes.len() && bytes[i] != ']' {
            let c = bytes[i];
            if c == '\\' {
                i += 1;
                match bytes.get(i) {
                    Some('x') => {
                        let hex: String = bytes[i + 1..i + 3].iter().collect();
                        let v = u8::from_str_radix(&hex, 16)
                            .unwrap_or_else(|_| panic!("bad \\x escape in {pat:?}"));
                        chars.push(v as char);
                        i += 3;
                    }
                    Some('P') => {
                        // `\PC`: not-a-control-character. Printable ASCII is a
                        // representative (and deterministic) subset.
                        assert!(
                            bytes.get(i + 1) == Some(&'C'),
                            "unsupported escape in {pat:?}"
                        );
                        chars.extend((0x20u8..0x7f).map(|b| b as char));
                        i += 2;
                    }
                    Some(&e) => {
                        chars.push(e);
                        i += 1;
                    }
                    None => panic!("dangling backslash in {pat:?}"),
                }
            } else if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' {
                let (a, b) = (c, bytes[i + 2]);
                assert!(a <= b, "bad class range in {pat:?}");
                chars.extend((a as u32..=b as u32).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(c);
                i += 1;
            }
        }
        assert!(bytes.get(i) == Some(&']'), "unterminated class in {pat:?}");
        assert!(!chars.is_empty(), "empty character class in {pat:?}");
        i += 1;
        if i == bytes.len() {
            return (chars, 1, 1);
        }
        assert!(bytes[i] == '{', "unsupported suffix in {pat:?}");
        let rest: String = bytes[i + 1..].iter().collect();
        let body = rest.strip_suffix('}').expect("unterminated {} in pattern");
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n: usize = body.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(lo <= hi, "bad repetition in {pat:?}");
        (chars, lo, hi)
    }

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix finite values of many magnitudes with the edge cases the
            // real crate's `any::<f64>()` also produces.
            match rng.below(16) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => {
                    let mantissa = rng.next_u64() as i64 as f64;
                    let exp = rng.below(61) as i32 - 30;
                    mantissa * (2f64).powi(exp)
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }

    /// Strategy for [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vector of values from `element`, with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;

    /// Deterministic SplitMix64 stream used for all case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                if (m as u64) >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                // Fixed seed: deterministic across runs, like persisted
                // proptest regressions but without the file.
                rng: TestRng::new(0xC1DE_5DA1E),
            }
        }

        /// Run `body` against `config.cases` generated values. Panics (with
        /// the case number) on the first failing case; no shrinking.
        pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(&mut self, strategy: &S, mut body: F) {
            for case in 0..self.config.cases {
                let value = strategy.gen_value(&mut self.rng);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(value);
                }));
                if let Err(payload) = result {
                    eprintln!("proptest: failing case {case} of {}", self.config.cases);
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest!` — supports an optional `#![proptest_config(...)]` header and
/// any number of test functions using either `arg in strategy` or
/// `arg: Type` parameters. Attributes (including `#[test]` and doc comments)
/// are passed through untouched, matching the real macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(&strategy, |($($arg,)+)| $body);
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($crate::strategy::any::<$ty>(),)+);
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(&strategy, |($($arg,)+)| $body);
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Both arg forms, tuples, maps, and class patterns in one place.
        #[test]
        fn surface_works(
            x in 0i64..6,
            s in "[a-z]{0,6}",
            pair in (any::<i32>(), 1u32..16).prop_map(|(a, b)| (a, b)),
            v in crate::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!((0..6).contains(&x));
            prop_assert!(s.len() <= 6 && s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(pair.1 >= 1 && pair.1 < 16);
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn typed_args(v: u64, w: i16) {
            prop_assert_eq!(v, v);
            prop_assert_ne!(w as i64 - 1, w as i64);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(d in prop_oneof![Just(-1i64), 0i64..6, Just(99i64)]) {
            prop_assert!(d == -1 || d == 99 || (0..6).contains(&d));
        }
    }

    #[test]
    fn class_patterns_parse() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9#\\x00 ]{0,12}".gen_value(&mut rng);
            assert!(s.chars().count() <= 12);
            let p = "[\\PC]{0,16}".gen_value(&mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }
}
