//! `clyde-lint` CLI.
//!
//! ```text
//! clyde-lint [--root <dir>]          # scan; exit 1 on non-baselined findings
//!            [--format text|json]    # json adds GitHub-annotation fields
//!            [--out <file>]          # write the json report here (stdout text
//!                                    # stays problem-matcher compatible)
//!            [--baseline <file>]     # default: <root>/crates/lint/baseline.lint
//!            [--write-baseline]      # regenerate the baseline from this scan
//!            [--ratchet]             # CI mode: stale baseline entries fail too
//! clyde-lint --self-test             # each fixture must trigger exactly its rule
//! ```

use clyde_lint::baseline::{self, Baseline};
use clyde_lint::{scan_source, scan_workspace, Rule, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    self_test: bool,
    json: bool,
    out: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    write_baseline: bool,
    ratchet: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        root: PathBuf::from("."),
        self_test: false,
        json: false,
        out: None,
        baseline_path: None,
        write_baseline: false,
        ratchet: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.root = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => opts.json = true,
                    Some("text") => opts.json = false,
                    _ => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.out = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.baseline_path = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            "--ratchet" => opts.ratchet = true,
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => {
                println!(
                    "clyde-lint: determinism, panic-path, and lock-order invariants (D001-D009)\n\
                     usage: clyde-lint [--root <dir>] [--format text|json] [--out <file>]\n\
                            [--baseline <file>] [--write-baseline] [--ratchet] [--self-test]"
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    if opts.self_test {
        return run_self_test(&opts.root);
    }
    run_scan(&opts)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: clyde-lint [--root <dir>] [--format text|json] [--out <file>] \
         [--baseline <file>] [--write-baseline] [--ratchet] [--self-test]"
    );
    ExitCode::from(2)
}

fn run_scan(opts: &Opts) -> ExitCode {
    let violations = match scan_workspace(&opts.root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("clyde-lint: cannot scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/lint/baseline.lint"));

    if opts.write_baseline {
        let text = baseline::render(&violations);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("clyde-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "clyde-lint: wrote baseline {} ({} finding(s) grandfathered)",
            baseline_path.display(),
            violations.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("clyde-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline file: nothing grandfathered
    };
    let applied = baseline::apply(&baseline, violations);

    // Text findings always go to stdout in `file:line: CODE message` form —
    // the GitHub problem matcher and human eyes both read this.
    for v in &applied.failing {
        println!("{v}");
    }
    for (code, file, was, now) in &applied.stale {
        println!(
            "clyde-lint: note: baseline stale: {code} {file} allows {was}, found {now} — \
             run --write-baseline to ratchet down"
        );
    }
    println!(
        "clyde-lint: {} failing, {} baselined, {} stale baseline entr{}",
        applied.failing.len(),
        applied.baselined,
        applied.stale.len(),
        if applied.stale.len() == 1 { "y" } else { "ies" },
    );

    if opts.json {
        let json = render_report(&applied, &baseline);
        match &opts.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("clyde-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => println!("{json}"),
        }
    }

    if !applied.failing.is_empty() {
        return ExitCode::FAILURE;
    }
    if opts.ratchet && !applied.stale.is_empty() {
        eprintln!(
            "clyde-lint: ratchet: baseline entries are stale (debt was paid down) — \
             regenerate with --write-baseline so the ratchet can't back-slide"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// JSON report with GitHub-annotation fields per finding. Hand-rolled —
/// the crate is intentionally zero-dependency.
fn render_report(applied: &baseline::Applied, baseline: &Baseline) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, v) in applied.failing.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"end_line\": {}, \
             \"annotation_level\": \"failure\", \"title\": {}, \"message\": {}}}",
            json_str(&v.file.to_string_lossy().replace('\\', "/")),
            v.line,
            v.line,
            json_str(&format!("{} {}", v.rule.code(), v.rule.pragma_name())),
            json_str(&v.message),
        ));
    }
    s.push_str("\n  ],\n  \"stale_baseline\": [");
    for (i, (code, file, was, now)) in applied.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"baseline\": {was}, \"actual\": {now}}}",
            json_str(code),
            json_str(file),
        ));
    }
    s.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"failing\": {}, \"baselined\": {}, \
         \"stale\": {}, \"baseline_total\": {}}}\n}}\n",
        applied.failing.len(),
        applied.baselined,
        applied.stale.len(),
        baseline.total(),
    ));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Every fixture under `crates/lint/fixtures/` must trigger exactly the rule
/// it is named for; `clean.rs` must trigger nothing. Scoped rules
/// (D006/D007/D009) get their fixtures scanned under a path inside the
/// rule's scope, so the scope plumbing itself is exercised. This is the
/// lint linting itself: if a rule regresses into silence, CI fails here.
fn run_self_test(root: &Path) -> ExitCode {
    const NEUTRAL: &str = "crates/fixture/src/lib.rs";
    let fixtures = root.join("crates/lint/fixtures");
    let cases: [(&str, &str, Option<Rule>); 11] = [
        ("d001_unordered.rs", NEUTRAL, Some(Rule::Unordered)),
        ("d002_wallclock.rs", NEUTRAL, Some(Rule::WallClock)),
        ("d003_entropy.rs", NEUTRAL, Some(Rule::Entropy)),
        ("d004_concurrency.rs", NEUTRAL, Some(Rule::Concurrency)),
        ("d005_metricname.rs", NEUTRAL, Some(Rule::MetricName)),
        (
            "d005_scheduler_registry.rs",
            NEUTRAL,
            Some(Rule::MetricName),
        ),
        (
            "d006_floatorder.rs",
            "crates/core/src/mtrunner.rs",
            Some(Rule::FloatOrder),
        ),
        (
            "d007_panicfree.rs",
            "crates/mapred/src/fault.rs",
            Some(Rule::PanicFree),
        ),
        ("d008_walltaint.rs", NEUTRAL, Some(Rule::WallTaint)),
        (
            "d009_lockgraph.rs",
            "crates/mapred/src/task.rs",
            Some(Rule::LockGraph),
        ),
        ("clean.rs", NEUTRAL, None),
    ];
    let mut failed = false;
    for (name, scan_as, expect) in cases {
        let path = fixtures.join(name);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("self-test FAIL: cannot read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        let violations = scan_source(Path::new(scan_as), &src);
        match expect {
            None => {
                if violations.is_empty() {
                    println!("self-test OK: {name} is clean");
                } else {
                    eprintln!("self-test FAIL: {name} should be clean, got:");
                    for v in &violations {
                        eprintln!("  {v}");
                    }
                    failed = true;
                }
            }
            Some(rule) => {
                let hit = violations.iter().any(|v| v.rule == rule);
                let stray: Vec<&Violation> = violations.iter().filter(|v| v.rule != rule).collect();
                if hit && stray.is_empty() {
                    println!(
                        "self-test OK: {name} triggers {} ({} site(s))",
                        rule.code(),
                        violations.len()
                    );
                } else {
                    failed = true;
                    if !hit {
                        eprintln!("self-test FAIL: {name} did not trigger {}", rule.code());
                    }
                    for v in stray {
                        eprintln!("self-test FAIL: {name} stray violation: {v}");
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("clyde-lint: self-test OK — all nine rules (D001-D009) exercised");
        ExitCode::SUCCESS
    }
}
