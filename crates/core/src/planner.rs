//! Compiles a [`StarQuery`] into one MapReduce job (paper Figure 4's
//! `main()`): CIF input with the projected column list, the multi-threaded
//! map runner, memory-marked tasks for one-task-per-node scheduling, and a
//! sum reducer for the group-by.

use crate::config::Features;
use crate::mtrunner::MtMapRunner;
use clyde_columnar::{CifInputFormat, MultiSplit, ScanMode};
use clyde_common::{ClydeError, Result, Row, Schema};
use clyde_dfs::ClusterSpec;
use clyde_mapred::shuffle::FnReducer;
use clyde_mapred::{JobSpec, OutputSpec};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::StarQuery;
use clyde_ssb::schema;
use std::sync::Arc;

/// The scan schema for a query under the given features: the projected
/// fact columns when columnar scanning is on, all 17 columns otherwise.
pub fn scan_schema(query: &StarQuery, features: &Features) -> Result<(Vec<String>, Schema)> {
    let fact = schema::lineorder_schema();
    let names: Vec<String> = if features.columnar {
        query.fact_columns()
    } else {
        fact.fields().iter().map(|f| f.name.clone()).collect()
    };
    let idx: Vec<usize> = names
        .iter()
        .map(|n| fact.index_of(n))
        .collect::<Result<_>>()?;
    Ok((names.clone(), fact.project(&idx)))
}

/// Build the MapReduce job for `query`.
pub fn plan_query(
    query: &StarQuery,
    layout: &SsbLayout,
    features: Features,
    cluster: &ClusterSpec,
) -> Result<JobSpec> {
    query.validate()?;
    let (scan_cols, scan) = scan_schema(query, &features)?;

    let mode = if features.block_iteration {
        ScanMode::Blocks {
            rows_per_block: 4096,
        }
    } else {
        ScanMode::Rows
    };
    // One multi-split per node (Section 5.1) with multithreading; otherwise
    // plain per-group splits that fill every slot with independent
    // single-threaded tasks (the ablation configuration).
    let multi = if features.multithreading {
        MultiSplit::OnePerNode
    } else {
        MultiSplit::Single
    };
    let input = CifInputFormat::new(layout.fact_cif())
        .with_columns(scan_cols)
        .with_mode(mode)
        .with_multi(multi);

    let runner = MtMapRunner {
        query: Arc::new(query.clone()),
        scan_schema: scan,
        layout: layout.clone(),
        features,
    };

    let mut spec = JobSpec::new(
        format!("clydesdale-{}", query.id),
        Arc::new(input),
        Arc::new(runner),
    );
    // Fold the per-task partial aggregates with the query's operation.
    let agg = query.aggregate.clone();
    spec.reducer = Some(Arc::new(FnReducer(
        move |key: &Row, values: &[Row], out: &mut Vec<Row>| {
            let mut acc = agg.identity();
            for v in values {
                let partial = v.at(0).as_i64().ok_or_else(|| {
                    ClydeError::MapReduce("non-integer partial aggregate".into())
                })?;
                acc = agg.fold(acc, partial);
            }
            out.push(key.concat(&clyde_common::row![acc]));
            Ok(())
        },
    )));
    spec.num_reducers = cluster.total_reduce_slots().max(1) as usize;
    spec.output = OutputSpec::Memory;
    spec.reuse_jvm = features.jvm_reuse;
    if features.multithreading {
        // Mark the task as consuming the whole node's memory so the capacity
        // scheduler admits exactly one per node (Section 5.2), and let it
        // use every map slot's worth of threads.
        spec.declared_task_memory = cluster.node.memory_bytes;
        spec.task_threads = Some(cluster.map_slots);
    } else {
        spec.declared_task_memory = 0;
        spec.task_threads = Some(1);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::query_by_id;

    #[test]
    fn scan_schema_projects_or_not() {
        let q = query_by_id("Q2.1").unwrap();
        let (cols, s) = scan_schema(&q, &Features::default()).unwrap();
        assert_eq!(cols.len(), 4);
        assert_eq!(s.len(), 4);
        let (cols_all, s_all) = scan_schema(&q, &Features::without_columnar()).unwrap();
        assert_eq!(cols_all.len(), 17);
        assert_eq!(s_all.len(), 17);
        // The probe plan must still resolve in the full schema.
        crate::probe::ProbePlan::compile(&q, &s_all).unwrap();
        crate::probe::ProbePlan::compile(&q, &s).unwrap();
    }

    #[test]
    fn plan_marks_memory_for_one_task_per_node() {
        let cluster = ClusterSpec::cluster_a();
        let q = query_by_id("Q3.1").unwrap();
        let spec = plan_query(&q, &SsbLayout::default(), Features::default(), &cluster).unwrap();
        assert_eq!(spec.declared_task_memory, cluster.node.memory_bytes);
        assert_eq!(spec.task_threads, Some(6));
        assert!(spec.reuse_jvm);
        assert_eq!(spec.num_reducers, 8);
        assert!(spec.reducer.is_some());
    }

    #[test]
    fn ablated_plan_uses_slots() {
        let cluster = ClusterSpec::cluster_a();
        let q = query_by_id("Q3.1").unwrap();
        let spec = plan_query(
            &q,
            &SsbLayout::default(),
            Features::without_multithreading(),
            &cluster,
        )
        .unwrap();
        assert_eq!(spec.declared_task_memory, 0);
        assert_eq!(spec.task_threads, Some(1));
        assert!(!spec.reuse_jvm);
    }
}
