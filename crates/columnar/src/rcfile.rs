//! RCFile — the PAX-style hybrid layout used by the Hive baseline.
//!
//! The paper's Hive experiments store all tables in RCFile (Section 6.2), "a
//! recently introduced hybrid columnar format for Hadoop that uses a
//! PAX-like layout of records within each HDFS block to eliminate
//! unnecessary I/O". The reproduction keeps its essential mechanics:
//!
//! * one data file per table, divided into row groups;
//! * within a row group, each column's values are stored contiguously as an
//!   encoded chunk, so a scan can read only the chunks of the columns it
//!   needs (range reads into the single file);
//! * a side metadata file records per-group, per-column (offset, length) —
//!   standing in for RCFile's in-band sync markers and key buffers.
//!
//! Contrast with CIF: RCFile keeps a table in *one* file, so its splits are
//! fixed by row-group boundaries — the paper notes the RCFile InputFormat
//! "did not allow us to decrease the number of splits", which is why Hive
//! pays per-task overheads 4,887 times in Q2.1's first stage.

use crate::encoding::{choose_encoding, decode_column, encode_column};
use crate::input::SlicedBlockReader;
use clyde_common::{
    rowcodec, varint, ClydeError, Field, Result, Row, RowBlock, RowBlockBuilder, Schema,
};
use clyde_dfs::Dfs;
use clyde_mapred::{
    input::RowsFromBlocks, InputFormat, InputSplit, JobConf, Reader, SplitSpec, TaskIo,
};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RCF1";

/// Per-group, per-column chunk location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkLoc {
    offset: u64,
    len: u64,
}

/// Metadata of one RCFile table.
#[derive(Debug, Clone, PartialEq)]
pub struct RcFileMeta {
    pub base: String,
    pub schema: Schema,
    group_rows: Vec<u64>,
    chunks: Vec<Vec<ChunkLoc>>, // [group][column]
}

impl RcFileMeta {
    pub fn data_path(base: &str) -> String {
        format!("{base}.rc")
    }

    pub fn meta_path(base: &str) -> String {
        format!("{base}.rc.meta")
    }

    pub fn num_groups(&self) -> usize {
        self.group_rows.len()
    }

    pub fn group_rows(&self, g: usize) -> u64 {
        self.group_rows[g]
    }

    pub fn total_rows(&self) -> u64 {
        self.group_rows.iter().sum()
    }

    /// Bytes of the selected columns in one group.
    pub fn group_bytes(&self, g: usize, cols: &[usize]) -> u64 {
        cols.iter().map(|&c| self.chunks[g][c].len).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let types: Vec<_> = self.schema.fields().iter().map(|f| f.dtype).collect();
        rowcodec::write_types(&mut out, &types);
        for f in self.schema.fields() {
            varint::write_u64(&mut out, f.name.len() as u64);
            out.extend_from_slice(f.name.as_bytes());
        }
        varint::write_u64(&mut out, self.group_rows.len() as u64);
        for (g, &rows) in self.group_rows.iter().enumerate() {
            varint::write_u64(&mut out, rows);
            for c in &self.chunks[g] {
                varint::write_u64(&mut out, c.offset);
                varint::write_u64(&mut out, c.len);
            }
        }
        out
    }

    fn decode(base: &str, data: &[u8]) -> Result<RcFileMeta> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(ClydeError::Format("not an RCFile meta file".into()));
        }
        let mut pos = 4usize;
        let types = rowcodec::read_types(data, &mut pos)?;
        let mut fields = Vec::with_capacity(types.len());
        for t in types {
            let len = varint::read_u64(data, &mut pos)? as usize;
            let end = pos + len;
            let bytes = data
                .get(pos..end)
                .ok_or_else(|| ClydeError::Format("truncated RCFile meta".into()))?;
            pos = end;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| ClydeError::Format("invalid utf-8 in RCFile meta".into()))?;
            fields.push(Field::new(name, t));
        }
        let ncols = fields.len();
        let ngroups = varint::read_u64(data, &mut pos)? as usize;
        let mut group_rows = Vec::with_capacity(ngroups);
        let mut chunks = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            group_rows.push(varint::read_u64(data, &mut pos)?);
            let mut cols = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let offset = varint::read_u64(data, &mut pos)?;
                let len = varint::read_u64(data, &mut pos)?;
                cols.push(ChunkLoc { offset, len });
            }
            chunks.push(cols);
        }
        Ok(RcFileMeta {
            base: base.to_string(),
            schema: Schema::new(fields),
            group_rows,
            chunks,
        })
    }
}

/// Streaming writer producing `{base}.rc` + `{base}.rc.meta`.
pub struct RcFileWriter {
    dfs: Arc<Dfs>,
    meta: RcFileMeta,
    builder: RowBlockBuilder,
    rows_per_group: u64,
    data: clyde_dfs::DfsWriter,
    written: u64,
}

impl RcFileWriter {
    pub fn new(
        dfs: Arc<Dfs>,
        base: impl Into<String>,
        schema: Schema,
        rows_per_group: u64,
    ) -> Result<RcFileWriter> {
        if rows_per_group == 0 {
            return Err(ClydeError::Config("rows_per_group must be positive".into()));
        }
        let base = base.into();
        let data = dfs.create(RcFileMeta::data_path(&base), None, None)?;
        let dtypes: Vec<_> = schema.fields().iter().map(|f| f.dtype).collect();
        Ok(RcFileWriter {
            dfs,
            meta: RcFileMeta {
                base,
                schema,
                group_rows: Vec::new(),
                chunks: Vec::new(),
            },
            builder: RowBlockBuilder::new(&dtypes),
            rows_per_group,
            data,
            written: 0,
        })
    }

    pub fn append(&mut self, row: &Row) -> Result<()> {
        self.builder.push_row(row)?;
        if self.builder.len() as u64 >= self.rows_per_group {
            self.flush_group()?;
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let dtypes: Vec<_> = self.meta.schema.fields().iter().map(|f| f.dtype).collect();
        let block = std::mem::replace(&mut self.builder, RowBlockBuilder::new(&dtypes)).finish();
        let mut locs = Vec::with_capacity(block.num_columns());
        for col in block.columns() {
            let encoded = encode_column(col, choose_encoding(col))?;
            locs.push(ChunkLoc {
                offset: self.written,
                len: encoded.len() as u64,
            });
            self.data.write_all(&encoded);
            self.written += encoded.len() as u64;
        }
        self.meta.group_rows.push(block.len() as u64);
        self.meta.chunks.push(locs);
        Ok(())
    }

    pub fn close(mut self) -> Result<RcFileMeta> {
        self.flush_group()?;
        self.data.close()?;
        self.dfs.write_file(
            RcFileMeta::meta_path(&self.meta.base),
            None,
            &self.meta.encode(),
        )?;
        Ok(self.meta)
    }
}

/// Reader over an RCFile table.
#[derive(Debug, Clone)]
pub struct RcFileReader {
    meta: RcFileMeta,
}

impl RcFileReader {
    pub fn open(dfs: &Dfs, base: &str) -> Result<RcFileReader> {
        let data = dfs.read_file(&RcFileMeta::meta_path(base), None)?;
        Ok(RcFileReader {
            meta: RcFileMeta::decode(base, &data)?,
        })
    }

    pub fn meta(&self) -> &RcFileMeta {
        &self.meta
    }

    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// Read the selected columns of one group: one range read per chunk, so
    /// unselected columns cost no I/O (PAX's column skipping).
    pub fn read_group(&self, io: &TaskIo, group: usize, cols: &[usize]) -> Result<RowBlock> {
        let locs = self
            .meta
            .chunks
            .get(group)
            .ok_or_else(|| ClydeError::Format(format!("row group {group} out of range")))?;
        let path = RcFileMeta::data_path(&self.meta.base);
        let mut columns = Vec::with_capacity(cols.len());
        for &c in cols {
            let loc = locs
                .get(c)
                .ok_or_else(|| ClydeError::Format(format!("column {c} out of range")))?;
            let bytes = io.read_range(&path, loc.offset, loc.len)?;
            columns.push(decode_column(&bytes)?);
        }
        RowBlock::new(columns)
    }

    /// Materialize the whole table (test/reference helper).
    pub fn read_all_rows(&self, dfs: &Arc<Dfs>) -> Result<Vec<Row>> {
        let io = TaskIo::client(Arc::clone(dfs));
        let cols: Vec<usize> = (0..self.meta.schema.len()).collect();
        let mut rows = Vec::with_capacity(self.meta.total_rows() as usize);
        for g in 0..self.meta.num_groups() {
            let block = self.read_group(&io, g, &cols)?;
            for i in 0..block.len() {
                rows.push(block.row(i));
            }
        }
        Ok(rows)
    }
}

/// Hadoop input format over RCFile: one split per row group (the paper notes
/// this granularity cannot be coarsened, unlike MultiCIF).
pub struct RcFileInputFormat {
    pub base: String,
    pub columns: Option<Vec<String>>,
    /// Rows per block when iterated; RCFile in Hive is consumed row-at-a-time
    /// so [`RcFileInputFormat::rows_mode`] is the baseline configuration.
    pub rows_mode: bool,
}

impl RcFileInputFormat {
    pub fn new(base: impl Into<String>) -> RcFileInputFormat {
        RcFileInputFormat {
            base: base.into(),
            columns: None,
            rows_mode: true,
        }
    }

    pub fn with_columns(mut self, columns: Vec<String>) -> RcFileInputFormat {
        self.columns = Some(columns);
        self
    }

    fn resolve_cols(&self, schema: &Schema) -> Result<Vec<usize>> {
        match &self.columns {
            Some(names) => names.iter().map(|n| schema.index_of(n)).collect(),
            None => Ok((0..schema.len()).collect()),
        }
    }
}

impl InputFormat for RcFileInputFormat {
    fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
        let reader = RcFileReader::open(dfs, &self.base)?;
        let cols = self.resolve_cols(reader.schema())?;
        let hosts = dfs.hosts(&RcFileMeta::data_path(&self.base))?;
        Ok((0..reader.meta().num_groups())
            .map(|g| InputSplit {
                index: g,
                spec: SplitSpec::Groups {
                    base: self.base.clone(),
                    groups: vec![g],
                },
                hosts: hosts.clone(),
                bytes: reader.meta().group_bytes(g, &cols),
            })
            .collect())
    }

    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
        let SplitSpec::Groups { base, groups } = &split.spec else {
            return Err(ClydeError::MapReduce("RCFile expects group splits".into()));
        };
        let &group = groups
            .get(part)
            .ok_or_else(|| ClydeError::MapReduce(format!("part {part} out of range")))?;
        let reader = RcFileReader::open(&io.dfs, base)?;
        let cols = self.resolve_cols(reader.schema())?;
        let block = reader.read_group(io, group, &cols)?;
        if self.rows_mode {
            Ok(Reader::Rows(Box::new(RowsFromBlocks::new(Box::new(
                SlicedBlockReader::new(block, 4096),
            )))))
        } else {
            Ok(Reader::Blocks(Box::new(SlicedBlockReader::new(
                block, 4096,
            ))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;

    fn schema() -> Schema {
        Schema::new(vec![Field::i32("k"), Field::str("cat"), Field::i64("rev")])
    }

    fn make(dfs: &Arc<Dfs>, base: &str, n: usize, rpg: u64) -> RcFileMeta {
        let mut w = RcFileWriter::new(Arc::clone(dfs), base, schema(), rpg).unwrap();
        for i in 0..n {
            w.append(&row![
                i as i32,
                if i % 4 == 0 { "A" } else { "B" },
                i as i64
            ])
            .unwrap();
        }
        w.close().unwrap()
    }

    #[test]
    fn roundtrip() {
        let dfs = Dfs::for_tests(3);
        let meta = make(&dfs, "/hive/fact", 23, 10);
        assert_eq!(meta.num_groups(), 3);
        assert_eq!(meta.total_rows(), 23);
        let r = RcFileReader::open(&dfs, "/hive/fact").unwrap();
        let rows = r.read_all_rows(&dfs).unwrap();
        assert_eq!(rows.len(), 23);
        assert_eq!(rows[4], row![4i32, "A", 4i64]);
        assert_eq!(rows[22], row![22i32, "B", 22i64]);
    }

    #[test]
    fn column_skipping_reads_fewer_bytes() {
        let dfs = Dfs::for_tests(3);
        make(&dfs, "/hive/fact", 200, 100);
        let r = RcFileReader::open(&dfs, "/hive/fact").unwrap();
        let io_partial = TaskIo::client(Arc::clone(&dfs));
        r.read_group(&io_partial, 0, &[2]).unwrap();
        let io_full = TaskIo::client(Arc::clone(&dfs));
        r.read_group(&io_full, 0, &[0, 1, 2]).unwrap();
        assert!(io_partial.stats.total() < io_full.stats.total());
        assert_eq!(io_partial.stats.total(), r.meta().group_bytes(0, &[2]));
    }

    #[test]
    fn input_format_one_split_per_group() {
        let dfs = Dfs::for_tests(3);
        make(&dfs, "/hive/fact", 40, 8);
        let fmt = RcFileInputFormat::new("/hive/fact").with_columns(vec!["rev".into()]);
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        assert_eq!(splits.len(), 5);
        let io = TaskIo::client(Arc::clone(&dfs));
        let mut count = 0;
        for s in &splits {
            let mut reader = fmt.open(s, 0, &io).unwrap().into_rows().unwrap();
            while let Some((_, v)) = reader.next().unwrap() {
                assert_eq!(v.len(), 1);
                count += 1;
            }
        }
        assert_eq!(count, 40);
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(RcFileMeta::decode("/x", b"zzzz").is_err());
    }

    #[test]
    fn unknown_projection_column_errors() {
        let dfs = Dfs::for_tests(2);
        make(&dfs, "/hive/f2", 8, 8);
        let fmt = RcFileInputFormat::new("/hive/f2").with_columns(vec!["nope".into()]);
        assert!(fmt.splits(&dfs, &JobConf::new()).is_err());
    }
}
