//! A trusted single-process executor for star queries.
//!
//! Used only for validation: every engine's answer for every query is
//! asserted equal to this executor's. It interprets the [`StarQuery`]
//! descriptor directly over materialized [`SsbData`], with none of the
//! MapReduce machinery — a deliberately boring implementation.

use crate::gen::SsbData;
use crate::queries::{aggregate_eval_row, fact_preds_eval_row, StarQuery};
use crate::schema;
use clyde_common::{ClydeError, Datum, FxHashMap, Result, Row};

/// Execute `query` over `data`, returning `group_by` columns + the sum, in
/// the query's ORDER BY order.
pub fn reference_answer(data: &SsbData, query: &StarQuery) -> Result<Vec<Row>> {
    query.validate()?;
    let fact_schema = schema::lineorder_schema();

    // Build one hash table per dimension join: pk -> auxiliary columns of
    // qualifying rows.
    struct Table {
        fk_idx: usize,
        map: FxHashMap<i64, Vec<Datum>>,
    }
    let mut tables = Vec::with_capacity(query.joins.len());
    for join in &query.joins {
        let dim_schema = schema::schema_of(&join.dimension)
            .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
        let pred = join.predicate.compile(&dim_schema)?;
        let pk_idx = dim_schema.index_of(&join.pk)?;
        let aux_idx: Vec<usize> = join
            .aux
            .iter()
            .map(|a| dim_schema.index_of(a))
            .collect::<Result<_>>()?;
        let rows = data
            .dimension(&join.dimension)
            .ok_or_else(|| ClydeError::Plan(format!("no data for {}", join.dimension)))?;
        let mut map = FxHashMap::default();
        for r in rows {
            if pred.eval(r) {
                let pk = r
                    .at(pk_idx)
                    .as_i64()
                    .ok_or_else(|| ClydeError::Plan("non-integer dimension key".into()))?;
                map.insert(pk, aux_idx.iter().map(|&i| r.at(i).clone()).collect());
            }
        }
        tables.push(Table {
            fk_idx: fact_schema.index_of(&join.fk)?,
            map,
        });
    }

    // Pre-resolve group-by sources: (join index, aux index).
    let group_src: Vec<(usize, usize)> = query
        .group_by
        .iter()
        .map(|g| query.group_col_source(g))
        .collect::<Result<_>>()?;

    // Scan, probe with early-out, aggregate.
    let mut groups: FxHashMap<Row, i64> = FxHashMap::default();
    let mut matched: Vec<&Vec<Datum>> = Vec::with_capacity(query.joins.len());
    for lo in &data.lineorder {
        if !fact_preds_eval_row(&query.fact_preds, lo, &fact_schema)? {
            continue;
        }
        matched.clear();
        let mut ok = true;
        for t in &tables {
            let fk = lo.at(t.fk_idx).as_i64().expect("integer fk");
            match t.map.get(&fk) {
                Some(aux) => matched.push(aux),
                None => {
                    ok = false;
                    break; // early-out, like the engines
                }
            }
        }
        if !ok {
            continue;
        }
        let key: Row = group_src
            .iter()
            .map(|&(ji, ai)| matched[ji][ai].clone())
            .collect();
        let measure = aggregate_eval_row(&query.aggregate, lo, &fact_schema)?;
        let slot = groups
            .entry(key)
            .or_insert_with(|| query.aggregate.identity());
        *slot = query.aggregate.fold(*slot, measure);
    }

    let mut rows: Vec<Row> = groups
        .into_iter()
        .map(|(k, v)| k.concat(&Row::new(vec![Datum::I64(v)])))
        .collect();
    query.finish_result(&mut rows);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SsbGen;
    use crate::queries::all_queries;

    fn data() -> SsbData {
        SsbGen::new(0.01, 46).gen_all()
    }

    #[test]
    fn flight1_matches_brute_force_sql() {
        let data = data();
        let q = crate::queries::query_by_id("Q1.1").unwrap();
        let rows = reference_answer(&data, &q).unwrap();
        assert_eq!(rows.len(), 1);
        // Brute force re-implementation straight from the SQL.
        let years: FxHashMap<i64, i64> = data
            .date
            .iter()
            .map(|d| (d.at(0).as_i64().unwrap(), d.at(4).as_i64().unwrap()))
            .collect();
        let mut expect = 0i64;
        for lo in &data.lineorder {
            let od = lo.at(5).as_i64().unwrap();
            let disc = lo.at(11).as_i64().unwrap();
            let qty = lo.at(8).as_i64().unwrap();
            if years.get(&od) == Some(&1993) && (1..=3).contains(&disc) && qty < 25 {
                expect += lo.at(9).as_i64().unwrap() * disc;
            }
        }
        assert_eq!(rows[0].at(0).as_i64().unwrap(), expect);
        assert!(expect > 0, "query must select something at this SF");
    }

    #[test]
    fn all_queries_produce_nonempty_deterministic_answers() {
        let data = data();
        for q in all_queries() {
            let a = reference_answer(&data, &q).unwrap();
            let b = reference_answer(&data, &q).unwrap();
            assert_eq!(a, b, "{} must be deterministic", q.id);
            // Seed 46 was chosen so every query selects at least one group
            // even at this small scale factor (the nation/city-pair queries
            // of flights 3 and 4 are selective enough to starve a 60 K-row
            // sample under most seeds).
            assert!(!a.is_empty(), "{} returned no rows", q.id);
            // Group arity + 1 aggregate column.
            for r in &a {
                assert_eq!(r.len(), q.group_by.len() + 1, "{}", q.id);
            }
        }
    }

    #[test]
    fn q21_grouping_shape() {
        let data = data();
        let q = crate::queries::query_by_id("Q2.1").unwrap();
        let rows = reference_answer(&data, &q).unwrap();
        // Groups are (d_year, p_brand1, revenue), year ascending.
        let mut prev_year = 0i64;
        for r in &rows {
            let year = r.at(0).as_i64().unwrap();
            assert!((1992..=1998).contains(&year));
            assert!(year >= prev_year);
            prev_year = year;
            assert!(r.at(1).as_str().unwrap().starts_with("MFGR#1"));
            assert!(r.at(2).as_i64().unwrap() > 0);
        }
        // All brands belong to category MFGR#12.
        assert!(rows
            .iter()
            .all(|r| r.at(1).as_str().unwrap().starts_with("MFGR#12")));
    }

    #[test]
    fn q31_revenue_descends_within_year() {
        let data = data();
        let q = crate::queries::query_by_id("Q3.1").unwrap();
        let rows = reference_answer(&data, &q).unwrap();
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            let (y1, y2) = (w[0].at(2).as_i64().unwrap(), w[1].at(2).as_i64().unwrap());
            assert!(y1 <= y2);
            if y1 == y2 {
                assert!(w[0].at(3).as_i64().unwrap() >= w[1].at(3).as_i64().unwrap());
            }
        }
        // Asian nations only.
        let asia = ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"];
        for r in &rows {
            assert!(asia.contains(&r.at(0).as_str().unwrap()));
            assert!(asia.contains(&r.at(1).as_str().unwrap()));
        }
    }

    #[test]
    fn q41_profit_is_positive_per_group() {
        let data = data();
        let q = crate::queries::query_by_id("Q4.1").unwrap();
        let rows = reference_answer(&data, &q).unwrap();
        assert!(!rows.is_empty());
        // revenue - supplycost > 0 with our generator's domains (revenue
        // ≥ 0.90×price, supplycost = 0.60×price).
        for r in &rows {
            assert!(r.at(2).as_i64().unwrap() > 0);
        }
        // Only nations of AMERICA appear.
        let america = ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"];
        assert!(rows
            .iter()
            .all(|r| america.contains(&r.at(1).as_str().unwrap())));
    }
}
