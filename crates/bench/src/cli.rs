//! Tiny argument parser shared by the figure binaries.
//!
//! Every binary accepts an optional positional measurement scale factor
//! (as before) plus `--trace <path>`, which turns on observability for the
//! run and writes the recorded spans as Chrome trace-event JSON — open the
//! file in Perfetto (ui.perfetto.dev) to see the simulated job timelines.

use clyde_common::Obs;
use std::sync::Arc;

pub struct BenchArgs {
    /// Measurement scale factor (positional, defaults per binary).
    pub sf: f64,
    /// Where to write the Chrome trace, if requested.
    pub trace: Option<String>,
    /// Seed for the `combined` fault plan: run the figure's queries a second
    /// time under injected faults and report the recovery actions and the
    /// simulated cost of the wasted work.
    pub faults: Option<u64>,
}

impl BenchArgs {
    /// An enabled hub when `--trace` was given, the no-op hub otherwise.
    pub fn obs(&self) -> Arc<Obs> {
        if self.trace.is_some() {
            Obs::enabled()
        } else {
            Obs::disabled()
        }
    }

    /// Write the recorded trace to the `--trace` path (no-op without one).
    pub fn write_trace(&self, obs: &Obs) {
        if let Some(path) = &self.trace {
            std::fs::write(path, obs.chrome_trace()).expect("write trace file");
            eprintln!("wrote Chrome trace to {path} (load in ui.perfetto.dev)");
        }
    }
}

/// Parse `[sf] [--trace <path>]` from `std::env::args`.
pub fn parse(bin: &str, default_sf: f64) -> BenchArgs {
    let mut out = BenchArgs {
        sf: default_sf,
        trace: None,
        faults: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => match args.next() {
                Some(path) => out.trace = Some(path),
                None => usage(bin, "--trace needs a file path"),
            },
            "--faults" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(seed) => out.faults = Some(seed),
                None => usage(bin, "--faults needs an integer seed"),
            },
            "--help" | "-h" => usage(bin, ""),
            other => match other.parse::<f64>() {
                Ok(v) if v > 0.0 => out.sf = v,
                _ => usage(bin, &format!("unrecognized argument `{other}`")),
            },
        }
    }
    out
}

fn usage(bin: &str, err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: {bin} [measurement-sf] [--trace <out.json>] [--faults <seed>]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
