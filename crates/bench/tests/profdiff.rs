//! Golden-pair regression attribution: run the same query under the paper
//! cost parameters and under a deliberately mispriced variant, then check
//! `clyde-profdiff` pins the makespan delta on the phase that changed.

use clyde_bench::profdiff;
use clyde_common::obs::profiles_json;
use clyde_common::Obs;
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::CostParams;
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::{Clydesdale, Features};
use std::sync::Arc;

/// Run Q2.1 and Q4.1 under `params` and export the profile bundle JSON.
/// (Q1.1 is no good as a golden pair: its date predicate is zone-resolved
/// under `cluster_by_date`, so it barely probes at all.)
fn profile_bundle(params: CostParams) -> String {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(0.005, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let obs = Obs::enabled();
    let clyde = Clydesdale::with_params(Arc::clone(&dfs), layout, Features::default(), params)
        .with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache().unwrap();
    for id in ["Q2.1", "Q4.1"] {
        clyde.query(&query_by_id(id).unwrap()).unwrap();
    }
    obs.with_query_profiles(profiles_json)
}

#[test]
fn mispriced_probe_is_attributed_to_the_probe_phase() {
    let paper = CostParams::paper();
    let slow_probe = CostParams {
        probe_rows_per_s: paper.probe_rows_per_s / 1000.0,
        ..CostParams::paper()
    };
    let before = profile_bundle(paper);
    let after = profile_bundle(slow_probe);
    assert_ne!(before, after, "the mispricing must show up in the bundle");

    let a = profdiff::parse_artifact(&before).unwrap();
    let b = profdiff::parse_artifact(&after).unwrap();
    assert_eq!(a.kind(), "clyde-profiles");
    let report = profdiff::diff(&a, &b).unwrap();
    assert_eq!(report.queries.len(), 2);

    for q in &report.queries {
        // The probe got 1000x slower, so every query's makespan moved up...
        assert!(q.delta_s() > 0.0, "{} should have regressed", q.name);
        // ...the components must explain at least 90% of that delta
        // (ISSUE acceptance bar; the decomposition is exact, so 100%)...
        assert!(
            q.coverage() >= 0.9,
            "{} attribution covers {:.2} < 0.9 of the delta",
            q.name,
            q.coverage()
        );
        // ...and the dominant component must be the probe phase itself.
        let (top, contribution) = &q.components[0];
        assert!(
            top.contains("probe"),
            "{}: top component was `{top}`, expected the probe phase",
            q.name
        );
        assert!(*contribution > 0.0);
        assert!(
            q.headline().contains("probe"),
            "headline should name the probe phase: {}",
            q.headline()
        );
    }

    let rendered = report.render();
    assert!(rendered.contains("suite makespan"));
    assert!(rendered.contains("probe"));

    // The gate helper agrees: these regressions clear any small threshold.
    assert_eq!(report.regressions(0.01).len(), 2);
    // An identical pair attributes nothing.
    let same = profdiff::diff(&a, &a).unwrap();
    assert!(same.regressions(0.01).is_empty());
}
