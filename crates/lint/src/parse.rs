//! Item/expression parser: token stream → simplified per-file AST.
//!
//! This is not a full Rust grammar — it is the minimal structure the rule
//! passes need and no more:
//!
//! * **function items** with name, line span, body token range, and whether
//!   they live under `#[cfg(test)]` / `#[test]` (structural rules audit
//!   production code only);
//! * **call sites** inside each body (plain calls, method calls, and macro
//!   invocations), feeding the intra-crate call graph;
//! * **declared names**: identifiers bound with `Mutex`/`RwLock` types
//!   (lock classes for D009) and identifiers bound to `f32`/`f64` values
//!   (float evidence for D006);
//! * **statement segmentation** of each body (linear runs between `;`,
//!   `{`, `}`), the granularity at which the D008 taint pass propagates.
//!
//! The parser is heuristic and total: any token stream produces *some* AST,
//! over-approximating where Rust's grammar is ambiguous without type
//! information. A false positive costs one reasoned pragma; a false
//! negative costs a nondeterministic experiment — so ties break toward
//! flagging.

use crate::lexer::{Tok, TokKind};

/// A token index into the *significant* (trivia-stripped) stream.
pub type SigIdx = usize;

/// One parsed function item.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body range into [`FileAst::sig`], excluding the outer braces.
    pub body: std::ops::Range<SigIdx>,
    /// Inside `#[cfg(test)]` / under `#[test]`.
    pub is_test: bool,
    /// Lexically nested inside another `fn` (file-wide passes visit only
    /// top-level fns so nested bodies are not scanned twice).
    pub nested: bool,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Simple (last-segment) callee name; macros keep their bare name
    /// (`panic`, `vec`).
    pub name: String,
    pub line: usize,
    pub is_macro: bool,
    /// `true` for `.name(...)` method-call syntax.
    pub is_method: bool,
    /// Index of the name token in [`FileAst::sig`].
    pub at: SigIdx,
}

/// The simplified AST of one file.
#[derive(Debug)]
pub struct FileAst {
    /// Significant tokens (no whitespace/comments), in order.
    pub sig: Vec<Tok>,
    /// Brace depth *before* each significant token.
    pub depth: Vec<u32>,
    pub fns: Vec<FnDef>,
    /// Names declared with a `Mutex<…>`/`RwLock<…>` type or initialized
    /// from `Mutex::new`/`RwLock::new` — the file's lock classes.
    pub lock_names: Vec<String>,
    /// Names with visible `f32`/`f64` evidence: a float type annotation or
    /// a float-literal initializer.
    pub float_names: Vec<String>,
}

impl FileAst {
    pub fn tok(&self, i: SigIdx) -> &Tok {
        &self.sig[i]
    }

    pub fn line(&self, i: SigIdx) -> usize {
        self.sig[i].line as usize
    }

    pub fn is_ident(&self, i: SigIdx, name: &str) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    pub fn is_punct(&self, i: SigIdx, p: &str) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }

    /// Call sites within `body`, in order.
    pub fn calls_in(&self, body: &std::ops::Range<SigIdx>) -> Vec<CallSite> {
        let mut out = Vec::new();
        for i in body.clone() {
            let t = &self.sig[i];
            if t.kind != TokKind::Ident || is_keyword(&t.text) {
                continue;
            }
            let is_method = i > 0 && self.is_punct(i - 1, ".");
            if self.is_punct(i + 1, "(") {
                out.push(CallSite {
                    name: t.text.clone(),
                    line: t.line as usize,
                    is_macro: false,
                    is_method,
                    at: i,
                });
            } else if self.is_punct(i + 1, "!")
                && (self.is_punct(i + 2, "(")
                    || self.is_punct(i + 2, "[")
                    || self.is_punct(i + 2, "{"))
            {
                out.push(CallSite {
                    name: t.text.clone(),
                    line: t.line as usize,
                    is_macro: true,
                    is_method,
                    at: i,
                });
            }
        }
        out
    }

    /// Statement segmentation of a body: maximal runs of significant tokens
    /// between `;`, `{`, and `}` (the separators are dropped). Linear and
    /// flow-insensitive — exactly the granularity the taint and lock passes
    /// want.
    pub fn statements(&self, body: &std::ops::Range<SigIdx>) -> Vec<std::ops::Range<SigIdx>> {
        let mut out = Vec::new();
        let mut start = body.start;
        for i in body.clone() {
            if self.sig[i].kind == TokKind::Punct
                && matches!(self.sig[i].text.as_str(), ";" | "{" | "}")
            {
                if i > start {
                    out.push(start..i);
                }
                start = i + 1;
            }
        }
        if body.end > start {
            out.push(start..body.end);
        }
        out
    }
}

pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "const"
            | "static"
            | "move"
            | "as"
            | "in"
            | "where"
            | "unsafe"
            | "dyn"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "type"
            | "async"
            | "await"
    )
}

/// Parse a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`FileAst`].
pub fn parse(toks: &[Tok]) -> FileAst {
    let sig: Vec<Tok> = toks.iter().filter(|t| !t.is_trivia()).cloned().collect();
    let mut depth_vec = Vec::with_capacity(sig.len());
    let mut depth: u32 = 0;
    for t in &sig {
        if t.kind == TokKind::Punct && t.text == "}" {
            depth = depth.saturating_sub(1);
        }
        depth_vec.push(depth);
        if t.kind == TokKind::Punct && t.text == "{" {
            depth += 1;
        }
    }

    let mut ast = FileAst {
        sig,
        depth: depth_vec,
        fns: Vec::new(),
        lock_names: Vec::new(),
        float_names: Vec::new(),
    };
    collect_fns(&mut ast);
    collect_decls(&mut ast);
    ast
}

/// Walk items: track `#[cfg(test)]`/`#[test]` attribute regions and extract
/// every `fn` with its brace-matched body.
fn collect_fns(ast: &mut FileAst) {
    let n = ast.sig.len();
    // Depths at which a test region (attributed mod/fn body) was entered.
    let mut test_depths: Vec<u32> = Vec::new();
    // A `#[test]`/`#[cfg(test)]` attribute was seen and not yet consumed by
    // an item.
    let mut pending_test = false;
    let mut fn_stack: Vec<(usize, SigIdx)> = Vec::new(); // (fns index, body end)
    let mut i = 0;
    let mut fns: Vec<FnDef> = Vec::new();
    while i < n {
        let cur_depth = ast.depth[i];
        fn_stack.retain(|&(_, end)| i < end);
        test_depths.retain(|&d| {
            d <= cur_depth || {
                // region closed when depth drops below entry depth
                false
            }
        });
        // (retain above keeps shallower-or-equal entries; prune exits)
        while test_depths.last().is_some_and(|&d| cur_depth < d) {
            test_depths.pop();
        }
        let t = &ast.sig[i];
        if t.kind == TokKind::Punct && t.text == "#" && ast.is_punct(i + 1, "[") {
            // Scan the attribute for a bare `test` token.
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut has_test = false;
            while j < n && bdepth > 0 {
                if ast.is_punct(j, "[") {
                    bdepth += 1;
                } else if ast.is_punct(j, "]") {
                    bdepth -= 1;
                } else if ast.is_ident(j, "test") {
                    has_test = true;
                }
                j += 1;
            }
            pending_test |= has_test;
            i = j;
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "mod" || t.text == "fn") {
            let is_fn = t.text == "fn";
            let name = match ast.sig.get(i + 1) {
                Some(nt) if nt.kind == TokKind::Ident => nt.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Find the item's body `{` (or `;` for declarations).
            let mut j = i + 2;
            let mut body: Option<(SigIdx, SigIdx)> = None;
            while j < n {
                if ast.is_punct(j, ";") && ast.depth[j] == cur_depth {
                    break;
                }
                if ast.is_punct(j, "{") && ast.depth[j] == cur_depth {
                    // Matching close: first token index where depth returns.
                    let mut k = j + 1;
                    while k < n && !(ast.is_punct(k, "}") && ast.depth[k] == cur_depth) {
                        k += 1;
                    }
                    body = Some((j + 1, k));
                    break;
                }
                j += 1;
            }
            let item_test = pending_test || !test_depths.is_empty();
            pending_test = false;
            if let Some((bstart, bend)) = body {
                if item_test {
                    test_depths.push(cur_depth + 1);
                }
                if is_fn {
                    let nested = !fn_stack.is_empty();
                    fns.push(FnDef {
                        name,
                        line: t.line as usize,
                        body: bstart..bend,
                        is_test: item_test,
                        nested,
                    });
                    fn_stack.push((fns.len() - 1, bend));
                }
                i = bstart;
                continue;
            }
            i = j + 1;
            continue;
        }
        // Any other item consumes a pending attribute.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "struct" | "enum" | "impl" | "trait" | "use" | "static" | "const"
            )
        {
            pending_test = false;
        }
        i += 1;
    }
    ast.fns = fns;
}

/// Collect declared lock names and float-evidence names.
///
/// Shapes recognized, for both: `name: Wrapper<…Type<…>>` (struct fields,
/// params, typed lets — any wrapper chain, so `Vec<Mutex<T>>` counts) and
/// `let [mut] name = … Type::new(…)` / `let [mut] name = <float literal>`.
fn collect_decls(ast: &mut FileAst) {
    let n = ast.sig.len();
    let mut lock_names = Vec::new();
    let mut float_names = Vec::new();
    for i in 0..n {
        let t = &ast.sig[i];
        if t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock") {
            // `:: new` initializer → walk back to the `let` binding.
            if ast.is_punct(i + 1, ":") && ast.is_punct(i + 2, ":") && ast.is_ident(i + 3, "new") {
                if let Some(name) = let_binding_before(ast, i) {
                    push_unique(&mut lock_names, name);
                    continue;
                }
            }
            // `name : …Mutex<` type position → walk back past wrappers to
            // the `ident :` that opened the type.
            if let Some(name) = typed_binding_before(ast, i) {
                push_unique(&mut lock_names, name);
            }
        }
        if t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64") {
            if let Some(name) = typed_binding_before(ast, i) {
                push_unique(&mut float_names, name);
            }
        }
        if t.kind == TokKind::Float {
            if let Some(name) = let_binding_before(ast, i) {
                push_unique(&mut float_names, name);
            }
        }
    }
    ast.lock_names = lock_names;
    ast.float_names = float_names;
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// If token `i` sits in the initializer of a `let [mut] NAME = …` on the
/// same statement, return NAME.
pub(crate) fn let_binding_before(ast: &FileAst, i: SigIdx) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &ast.sig[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return None;
        }
        if t.kind == TokKind::Punct && t.text == "=" {
            // `let mut? NAME (: Type)? =`
            let mut k = j;
            // Skip back over a type ascription.
            while k > 0 && !ast.is_punct(k - 1, ";") {
                k -= 1;
                if ast.is_ident(k, "let") {
                    let name_at = k + if ast.is_ident(k + 1, "mut") { 2 } else { 1 };
                    let nt = ast.sig.get(name_at)?;
                    if nt.kind == TokKind::Ident && !is_keyword(&nt.text) {
                        return Some(nt.text.clone());
                    }
                    return None;
                }
                if ast.sig[k].kind == TokKind::Punct
                    && matches!(ast.sig[k].text.as_str(), "{" | "}")
                {
                    return None;
                }
            }
            return None;
        }
    }
    None
}

/// If token `i` is part of a type written after `NAME :` (possibly wrapped:
/// `NAME: Arc<Vec<Mutex<T>>>`), return NAME.
fn typed_binding_before(ast: &FileAst, i: SigIdx) -> Option<String> {
    let mut j = i;
    let mut angle: i32 = 0;
    while j > 0 {
        j -= 1;
        let t = &ast.sig[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ";" | "{" | "}" | "=" | ")" | "(") => return None,
            (TokKind::Punct, ">") => angle += 1,
            (TokKind::Punct, "<") => {
                if angle > 0 {
                    angle -= 1;
                }
                // keep walking: still inside the wrapper chain
            }
            (TokKind::Punct, ":") => {
                // `::` path separator is two adjacent `:` puncts.
                if j > 0 && ast.is_punct(j - 1, ":") {
                    j -= 1;
                    continue;
                }
                let nt = ast.sig.get(j.checked_sub(1)?)?;
                if nt.kind == TokKind::Ident && !is_keyword(&nt.text) {
                    return Some(nt.text.clone());
                }
                return None;
            }
            (TokKind::Ident, _) | (TokKind::Punct, ",") | (TokKind::Punct, "&") => {}
            (TokKind::Lifetime, _) => {}
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast_of(src: &str) -> FileAst {
        parse(&lex(src))
    }

    #[test]
    fn finds_fns_and_bodies() {
        let ast = ast_of("fn a() { b(); }\nimpl X { fn c(&self) -> u32 { 1 } }\n");
        let names: Vec<_> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
        let calls = ast.calls_in(&ast.fns[0].body);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "b");
    }

    #[test]
    fn test_mods_and_test_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { prod(); }\n    fn helper() {}\n}\n";
        let ast = ast_of(src);
        let by_name = |n: &str| ast.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("t").is_test);
        assert!(
            by_name("helper").is_test,
            "fns inside #[cfg(test)] mod are test code"
        );
    }

    #[test]
    fn nested_fns_are_flagged_nested() {
        let ast = ast_of("fn outer() { fn inner() {} inner(); }\n");
        assert!(!ast.fns[0].nested);
        assert!(ast.fns[1].nested);
    }

    #[test]
    fn lock_names_cover_fields_locals_and_vecs() {
        let src = "struct S { state: Mutex<u32>, outs: Vec<Mutex<u8>>, r: RwLock<i32> }\nfn f() { let done = Mutex::new(0); }\n";
        let ast = ast_of(src);
        assert_eq!(ast.lock_names, vec!["state", "outs", "r", "done"]);
    }

    #[test]
    fn float_names_from_types_and_literals() {
        let src = "fn f(rate: f64) { let mut acc = 0.0; let n: u32 = 1; let t: f32 = x; }\n";
        let ast = ast_of(src);
        assert!(ast.float_names.contains(&"rate".to_string()));
        assert!(ast.float_names.contains(&"acc".to_string()));
        assert!(ast.float_names.contains(&"t".to_string()));
        assert!(!ast.float_names.contains(&"n".to_string()));
    }

    #[test]
    fn statements_split_on_semis_and_braces() {
        let ast = ast_of("fn f() { let a = 1; if x { b(); } c(); }\n");
        let stmts = ast.statements(&ast.fns[0].body);
        // `let a = 1`, `if x`, `b()`, `c()`
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn macro_calls_are_recorded() {
        let ast = ast_of("fn f() { panic!(\"x\"); let v = vec![1]; }\n");
        let calls = ast.calls_in(&ast.fns[0].body);
        assert!(calls.iter().any(|c| c.name == "panic" && c.is_macro));
        assert!(calls.iter().any(|c| c.name == "vec" && c.is_macro));
    }
}
