//! D006 fixture: unpinned float reductions in merge-scope code. The
//! self-test scans this file *as* `crates/core/src/mtrunner.rs`, so the
//! merge-scope plumbing itself is exercised. This file is NOT compiled.

/// Float accumulation in a loop: the iteration order decides the sum.
pub fn merge_partials(parts: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for p in parts {
        for v in p {
            total += *v;
        }
    }
    total
}

/// `fold` is flagged unconditionally in merge scope: the closure's
/// associativity is unknowable statically.
pub fn fold_merge(accs: Vec<i64>) -> i64 {
    accs.into_iter().fold(0, |a, b| a.wrapping_add(b))
}

/// `.sum()` with float evidence (the turbofish) on the same statement.
pub fn sum_merge(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}

/// Integer `.sum()` commutes — must NOT be flagged.
pub fn total_len(runs: &[Vec<u8>]) -> usize {
    runs.iter().map(Vec::len).sum()
}
