//! TestDFSIO — the HDFS bandwidth benchmark behind the paper's Table 1.
//!
//! Section 6.6 of the paper measures raw disk bandwidth (`dd`: 70–100 MB/s
//! per disk) against what HDFS actually delivers to map tasks, using the
//! TestDFSIO job shipped with Hadoop: a write job where each map task writes
//! one file, and a read job where each map task reads one back with locality
//! respected. The punchline is that HDFS delivers only a fraction of raw
//! bandwidth (the paper measures ~67 MB/s per node during query scans vs
//! 560 MB/s raw on cluster A) — which is why Clydesdale's scan phase is
//! I/O-bound at a rate far below the hardware's.
//!
//! Our reproduction really executes the write/read jobs against the
//! simulated DFS (verifying data integrity and locality), then prices the
//! byte counts with [`HdfsPerfModel`] to report cluster-level throughput.

use crate::dfs::Dfs;
use crate::topology::{ClusterSpec, NodeId, NodeSpec};
use clyde_common::Result;
use std::sync::Arc;

const MB: f64 = (1 << 20) as f64;

/// Empirical model of what HDFS delivers per node, relative to raw hardware.
///
/// The caps encode the era's HDFS implementation overheads (checksumming,
/// single-stream datanode reads, JVM serialization) that the paper observes
/// but does not fix. Defaults are calibrated to Section 6.3/6.6: an
/// effective ~70 MB/s scan rate per node on both clusters.
#[derive(Debug, Clone)]
pub struct HdfsPerfModel {
    /// Upper bound on per-node HDFS read bandwidth, bytes/s.
    pub node_read_cap: f64,
    /// Upper bound on per-node *physical* HDFS write bandwidth (before the
    /// replication factor divides it down to logical throughput), bytes/s.
    pub node_write_cap: f64,
}

impl Default for HdfsPerfModel {
    fn default() -> HdfsPerfModel {
        HdfsPerfModel {
            node_read_cap: 72.0 * MB,
            node_write_cap: 120.0 * MB,
        }
    }
}

impl HdfsPerfModel {
    /// Effective HDFS read bandwidth for one node, bytes/s.
    pub fn effective_read_bw(&self, node: &NodeSpec) -> f64 {
        node.raw_disk_bw().min(self.node_read_cap)
    }

    /// Effective HDFS write bandwidth for one node, bytes/s of *logical*
    /// data. Each logical byte is written `replication` times, and
    /// `replication - 1` copies traverse the network pipeline.
    pub fn effective_write_bw(&self, node: &NodeSpec, replication: u32, network_bw: f64) -> f64 {
        let r = f64::from(replication.max(1));
        let disk_limit = node.raw_disk_bw().min(self.node_write_cap) / r;
        let net_limit = if replication > 1 {
            network_bw / (r - 1.0)
        } else {
            f64::INFINITY
        };
        disk_limit.min(net_limit)
    }
}

/// Result of one TestDFSIO run — the rows of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct TestDfsIoReport {
    pub cluster: String,
    pub files: usize,
    pub file_size: u64,
    /// Raw per-node disk bandwidth, MB/s (the `dd` baseline).
    pub raw_disk_mb_per_node: f64,
    /// Simulated HDFS throughput, MB/s per node.
    pub read_mb_per_node: f64,
    pub write_mb_per_node: f64,
    /// Simulated aggregate cluster throughput, MB/s.
    pub aggregate_read_mb: f64,
    pub aggregate_write_mb: f64,
    /// Locality achieved by the read job (should be 1.0).
    pub read_locality: f64,
}

/// Execute a TestDFSIO-style write+read cycle.
///
/// `files_per_node` map tasks per node each write `file_size` bytes, then
/// read their files back from the node holding them. Data integrity is
/// checked; throughput comes from the perf model applied to the cluster
/// spec (independent of `file_size`, which only controls how much real
/// work the simulation does).
pub fn run(
    dfs: &Arc<Dfs>,
    files_per_node: usize,
    file_size: u64,
    model: &HdfsPerfModel,
) -> Result<TestDfsIoReport> {
    let cluster = dfs.cluster().clone();
    let n = cluster.num_workers();
    let mut paths = Vec::with_capacity(n * files_per_node);

    // Write job: each "map task" writes one file. Hadoop places a writing
    // task's first replica on the local node and TestDFSIO's read job then
    // schedules each reader next to its file, so we keep each file's blocks
    // together via the placement group (path-keyed).
    for node in 0..n {
        for f in 0..files_per_node {
            let path = format!("/benchmarks/TestDFSIO/io_data/node{node}_file{f}");
            let payload = make_payload(node, f, file_size);
            let group = path.clone();
            dfs.write_file(&path, Some(group), &payload)?;
            paths.push((NodeId(node), path));
        }
    }

    // Read job: each map task reads one file, scheduled on a node holding it
    // ("locality is respected", Section 6.6).
    dfs.reset_metrics();
    for (node, path) in &paths {
        let hosts = dfs.hosts(path)?;
        let reader = if hosts.contains(node) {
            *node
        } else {
            hosts[0]
        };
        let data = dfs.read_file(path, Some(reader))?;
        let expect = make_payload(node.0, 0, 0); // cheap spot-check seed
        let _ = expect;
        verify_payload(&data, node.0, path)?;
    }
    let read_locality = dfs.metrics().locality_ratio();

    // Price it.
    let read_bw = model.effective_read_bw(&cluster.node);
    let write_bw = model.effective_write_bw(&cluster.node, dfs.replication(), cluster.network_bw);
    let report = TestDfsIoReport {
        cluster: cluster.name.clone(),
        files: paths.len(),
        file_size,
        raw_disk_mb_per_node: cluster.node.raw_disk_bw() / MB,
        read_mb_per_node: read_bw / MB,
        write_mb_per_node: write_bw / MB,
        aggregate_read_mb: read_bw * n as f64 / MB,
        aggregate_write_mb: write_bw * n as f64 / MB,
        read_locality,
    };

    // Clean up like the real benchmark's -clean phase.
    for (_, path) in &paths {
        dfs.delete(path)?;
    }
    Ok(report)
}

fn make_payload(node: usize, file: usize, size: u64) -> Vec<u8> {
    // Deterministic, verifiable pattern.
    let seed = (node as u8).wrapping_mul(31).wrapping_add(file as u8);
    (0..size).map(|i| seed.wrapping_add(i as u8)).collect()
}

fn verify_payload(data: &[u8], _node: usize, path: &str) -> Result<()> {
    // The pattern increments by one per byte; verify the stride property.
    for w in data.windows(2).take(16) {
        if w[1] != w[0].wrapping_add(1) {
            return Err(clyde_common::ClydeError::Dfs(format!(
                "TestDFSIO verification failed for {path}"
            )));
        }
    }
    Ok(())
}

/// Run TestDFSIO against both of the paper's cluster specs using small real
/// payloads — the harness behind `table1_dfsio`.
pub fn paper_table1(file_size: u64) -> Result<Vec<TestDfsIoReport>> {
    let model = HdfsPerfModel::default();
    let mut out = Vec::new();
    for spec in [ClusterSpec::cluster_a(), ClusterSpec::cluster_b()] {
        let dfs = Dfs::new(
            spec,
            crate::dfs::DfsOptions {
                block_size: 1 << 16,
                replication: 3,
                // Whole-file grouping stands in for Hadoop's write-local
                // first replica, so the read job can be fully node-local.
                policy: Box::new(crate::placement::ColocatingPlacement),
            },
        );
        out.push(run(&dfs, 2, file_size, &model)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_job_is_fully_local() {
        let dfs = Dfs::for_tests(4);
        let report = run(&dfs, 2, 512, &HdfsPerfModel::default()).unwrap();
        assert_eq!(report.files, 8);
        assert_eq!(report.read_locality, 1.0);
    }

    #[test]
    fn hdfs_read_bw_is_below_raw_disk_bw() {
        // The paper's core observation: HDFS delivers a fraction of raw.
        let reports = paper_table1(256).unwrap();
        for r in &reports {
            assert!(
                r.read_mb_per_node < r.raw_disk_mb_per_node,
                "{}: {} !< {}",
                r.cluster,
                r.read_mb_per_node,
                r.raw_disk_mb_per_node
            );
            // Calibration: ~70 MB/s effective per node (paper: 67 MB/s).
            assert!(r.read_mb_per_node > 60.0 && r.read_mb_per_node < 80.0);
        }
    }

    #[test]
    fn write_bw_pays_replication() {
        let model = HdfsPerfModel::default();
        let node = ClusterSpec::cluster_a().node;
        let net = ClusterSpec::cluster_a().network_bw;
        let w1 = model.effective_write_bw(&node, 1, net);
        let w3 = model.effective_write_bw(&node, 3, net);
        assert!(w3 < w1);
    }

    #[test]
    fn cluster_b_has_higher_aggregate_throughput() {
        let reports = paper_table1(128).unwrap();
        assert!(reports[1].aggregate_read_mb > reports[0].aggregate_read_mb);
    }

    #[test]
    fn cleanup_removes_benchmark_files() {
        let dfs = Dfs::for_tests(2);
        run(&dfs, 1, 64, &HdfsPerfModel::default()).unwrap();
        assert!(dfs.list("/benchmarks/").is_empty());
    }
}
