//! Umbrella crate for the Clydesdale reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The library surface simply
//! re-exports the member crates so examples can use a single import root.

pub use clyde_columnar as columnar;
pub use clyde_common as common;
pub use clyde_dfs as dfs;
pub use clyde_hive as hive;
pub use clyde_mapred as mapred;
pub use clyde_ssb as ssb;
pub use clydesdale as core_engine;
