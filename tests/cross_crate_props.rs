//! Cross-crate property tests: invariants that span storage, the DFS, and
//! the MapReduce engine, on randomized inputs.

use clyde_columnar::{CifReader, CifWriter, RcFileReader, RcFileWriter};
use clyde_common::{row, Datum, Field, Row, Schema};
use clyde_dfs::Dfs;
use clyde_mapred::formats::VecInputFormat;
use clyde_mapred::runner::{FnMapper, RowMapRunner};
use clyde_mapred::shuffle::FnReducer;
use clyde_mapred::{Engine, JobSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (any::<i32>(), "[a-z]{0,6}", any::<i64>()).prop_map(|(a, b, c)| row![a, b, c]),
        0..80,
    )
}

fn schema() -> Schema {
    Schema::new(vec![Field::i32("a"), Field::str("b"), Field::i64("c")])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any row set survives a CIF write/read cycle across any row-group size
    /// and any cluster size, bit-for-bit and in order.
    #[test]
    fn cif_roundtrips_arbitrary_tables(
        rows in arb_rows(),
        rpg in 1u64..40,
        nodes in 1usize..5,
    ) {
        let dfs = Dfs::for_tests(nodes);
        let mut w = CifWriter::new(Arc::clone(&dfs), "/p/t", schema(), rpg).unwrap();
        for r in &rows {
            w.append(r).unwrap();
        }
        w.close().unwrap();
        let back = CifReader::open(&dfs, "/p/t").unwrap().read_all_rows(&dfs).unwrap();
        prop_assert_eq!(back, rows);
    }

    /// RCFile agrees with CIF on every input.
    #[test]
    fn rcfile_and_cif_agree(rows in arb_rows(), rpg in 1u64..40) {
        let dfs = Dfs::for_tests(3);
        let mut cw = CifWriter::new(Arc::clone(&dfs), "/p/cif", schema(), rpg).unwrap();
        let mut rw = RcFileWriter::new(Arc::clone(&dfs), "/p/rc", schema(), rpg).unwrap();
        for r in &rows {
            cw.append(r).unwrap();
            rw.append(r).unwrap();
        }
        cw.close().unwrap();
        rw.close().unwrap();
        let a = CifReader::open(&dfs, "/p/cif").unwrap().read_all_rows(&dfs).unwrap();
        let b = RcFileReader::open(&dfs, "/p/rc").unwrap().read_all_rows(&dfs).unwrap();
        prop_assert_eq!(a, b);
    }

    /// A group-by-sum MapReduce job over random data equals the same
    /// aggregation done with a BTreeMap, for any split and reducer counts.
    #[test]
    fn mapreduce_groupby_equals_sequential(
        rows in arb_rows(),
        splits in 1usize..6,
        reducers in 1usize..4,
        nodes in 1usize..4,
    ) {
        let dfs = Dfs::for_tests(nodes);
        let engine = Engine::new(Arc::clone(&dfs));
        let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&Row::new(vec![v.at(1).clone()]), Row::new(vec![v.at(2).clone()]));
            Ok(())
        }));
        let mut spec = JobSpec::new(
            "prop-groupby",
            Arc::new(VecInputFormat::new(rows.clone(), splits)),
            Arc::new(mapper),
        );
        spec.reducer = Some(Arc::new(FnReducer(
            |key: &Row, values: &[Row], out: &mut Vec<Row>| {
                let sum: i64 = values
                    .iter()
                    .map(|v| v.at(0).as_i64().unwrap())
                    .fold(0i64, i64::wrapping_add);
                out.push(key.concat(&Row::new(vec![Datum::I64(sum)])));
                Ok(())
            },
        )));
        spec.num_reducers = reducers;
        let mut got = engine.run_job(&spec).unwrap().rows;
        got.sort();

        let mut expect_map: BTreeMap<String, i64> = BTreeMap::new();
        for r in &rows {
            let k = r.at(1).as_str().unwrap().to_string();
            let v = r.at(2).as_i64().unwrap();
            *expect_map.entry(k).or_insert(0) = expect_map
                .get(r.at(1).as_str().unwrap())
                .copied()
                .unwrap_or(0)
                .wrapping_add(v);
        }
        let mut expect: Vec<Row> = expect_map
            .into_iter()
            .map(|(k, v)| row![k, v])
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// DFS replication invariant under arbitrary write patterns: every file
    /// is stored exactly `replication` times while all nodes are alive.
    #[test]
    fn dfs_replication_is_exact(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..300), 1..10)) {
        let dfs = Dfs::for_tests(4); // replication 2
        let mut logical = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            dfs.write_file(format!("/f{i}"), None, p).unwrap();
            logical += p.len() as u64;
        }
        let stored: u64 = dfs.used_bytes_per_node().iter().sum();
        prop_assert_eq!(stored, logical * 2);
    }
}
