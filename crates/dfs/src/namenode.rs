//! The namenode: file namespace and block map.

use crate::block::{BlockId, BlockMeta};
use crate::topology::NodeId;
use clyde_common::{ClydeError, FxHashMap, Result};
use std::collections::BTreeMap;

/// Namespace entry for one write-once file.
#[derive(Debug, Clone)]
pub struct FileEntry {
    pub path: String,
    pub len: u64,
    pub blocks: Vec<BlockId>,
    /// Placement group the file was created with (see `placement`).
    pub group: Option<String>,
}

/// The file namespace and block metadata, single-writer (guarded by the
/// `Dfs` facade's lock).
#[derive(Debug, Default)]
pub struct Namenode {
    files: BTreeMap<String, FileEntry>,
    blocks: FxHashMap<BlockId, BlockMeta>,
    next_block: u64,
}

impl Namenode {
    pub fn new() -> Namenode {
        Namenode::default()
    }

    /// Allocate a fresh block id with the given replica set and content
    /// checksum.
    pub fn allocate_block(&mut self, len: u64, replicas: Vec<NodeId>, checksum: u64) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        self.blocks.insert(
            id,
            BlockMeta {
                id,
                len,
                replicas,
                checksum,
            },
        );
        id
    }

    /// Finalize a file. Errors if the path already exists (files are
    /// write-once, like HDFS).
    pub fn commit_file(&mut self, entry: FileEntry) -> Result<()> {
        if self.files.contains_key(&entry.path) {
            return Err(ClydeError::Dfs(format!(
                "file already exists: {}",
                entry.path
            )));
        }
        self.files.insert(entry.path.clone(), entry);
        Ok(())
    }

    pub fn file(&self, path: &str) -> Result<&FileEntry> {
        self.files
            .get(path)
            .ok_or_else(|| ClydeError::Dfs(format!("no such file: {path}")))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn block(&self, id: BlockId) -> Result<&BlockMeta> {
        self.blocks
            .get(&id)
            .ok_or_else(|| ClydeError::Dfs(format!("no such block: {id:?}")))
    }

    pub fn block_mut(&mut self, id: BlockId) -> Result<&mut BlockMeta> {
        self.blocks
            .get_mut(&id)
            .ok_or_else(|| ClydeError::Dfs(format!("no such block: {id:?}")))
    }

    /// Remove a file, returning its block ids so the datanodes can free them.
    pub fn delete(&mut self, path: &str) -> Result<Vec<BlockId>> {
        let entry = self
            .files
            .remove(path)
            .ok_or_else(|| ClydeError::Dfs(format!("no such file: {path}")))?;
        for b in &entry.blocks {
            self.blocks.remove(b);
        }
        Ok(entry.blocks)
    }

    /// Paths starting with `prefix`, in lexicographic order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// All block metas of all files, in block-id order (used by
    /// re-replication; sorted so recovery work never depends on hash order).
    pub fn all_blocks_mut(&mut self) -> impl Iterator<Item = &mut BlockMeta> {
        let mut all: Vec<&mut BlockMeta> = self.blocks.values_mut().collect();
        all.sort_by_key(|m| m.id.0);
        all.into_iter()
    }

    pub fn num_files(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, blocks: Vec<BlockId>) -> FileEntry {
        FileEntry {
            path: path.to_string(),
            len: 0,
            blocks,
            group: None,
        }
    }

    #[test]
    fn block_ids_are_unique() {
        let mut nn = Namenode::new();
        let a = nn.allocate_block(1, vec![NodeId(0)], 0);
        let b = nn.allocate_block(1, vec![NodeId(0)], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn files_are_write_once() {
        let mut nn = Namenode::new();
        nn.commit_file(entry("/a", vec![])).unwrap();
        assert!(nn.commit_file(entry("/a", vec![])).is_err());
    }

    #[test]
    fn delete_frees_blocks() {
        let mut nn = Namenode::new();
        let b = nn.allocate_block(5, vec![NodeId(0)], 0);
        nn.commit_file(entry("/a", vec![b])).unwrap();
        let freed = nn.delete("/a").unwrap();
        assert_eq!(freed, vec![b]);
        assert!(nn.file("/a").is_err());
        assert!(nn.block(b).is_err());
        assert!(nn.delete("/a").is_err());
    }

    #[test]
    fn list_prefix_is_sorted_and_scoped() {
        let mut nn = Namenode::new();
        for p in ["/x/2", "/x/1", "/y/1", "/x/10"] {
            nn.commit_file(entry(p, vec![])).unwrap();
        }
        assert_eq!(nn.list_prefix("/x/"), vec!["/x/1", "/x/10", "/x/2"]);
        assert_eq!(nn.list_prefix("/z"), Vec::<String>::new());
        assert_eq!(nn.num_files(), 4);
    }
}
