//! Job-history data model: per-task swimlanes, phase slices, and
//! straggler / partition-skew statistics.
//!
//! A [`JobHistory`] is the structured record of one executed job — the analog
//! of Hadoop's job-history log plus its per-task counters (paper Section 6
//! reads all of its measurements from those). Engines build one per job; the
//! trace exporter turns it into Chrome trace-event spans and the text
//! summary renders the same data for terminals.

/// Map-side vs reduce-side lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskKind {
    Map,
    Reduce,
}

impl TaskKind {
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

/// Execution phase within a task (or stage-level activity). The set mirrors
/// the cost model's time components so every priced second lands in exactly
/// one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Per-task framework overhead (JVM start / task setup).
    Setup,
    /// Loading persisted per-node state (e.g. spilled hash tables).
    StateLoad,
    /// Building dimension hash tables (Clydesdale's build phase).
    HashBuild,
    /// Reading fact/input bytes from the DFS.
    Scan,
    /// Join probe + per-block CPU work over scanned rows.
    Probe,
    /// Emitting / pre-aggregating map output records.
    Emit,
    /// Writing task output (map-only output files or reduce output).
    Write,
    /// Moving map output to reducers.
    Shuffle,
    /// Sorting / merging runs on the reduce side.
    Sort,
    /// Applying the reduce function.
    Reduce,
    /// Job-level scheduling overhead not attributed to any task.
    Overhead,
}

impl Phase {
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::StateLoad => "state-load",
            Phase::HashBuild => "hash-build",
            Phase::Scan => "scan",
            Phase::Probe => "probe",
            Phase::Emit => "emit",
            Phase::Write => "write",
            Phase::Shuffle => "shuffle",
            Phase::Sort => "sort",
            Phase::Reduce => "reduce",
            Phase::Overhead => "overhead",
        }
    }

    /// Every phase, in display order.
    pub fn all() -> &'static [Phase] {
        &[
            Phase::Setup,
            Phase::StateLoad,
            Phase::HashBuild,
            Phase::Scan,
            Phase::Probe,
            Phase::Emit,
            Phase::Write,
            Phase::Shuffle,
            Phase::Sort,
            Phase::Reduce,
            Phase::Overhead,
        ]
    }
}

/// One phase interval inside a task. `start_s` is absolute (seconds from job
/// submission) so slices can be exported as spans without extra context.
#[derive(Debug, Clone)]
pub struct PhaseSlice {
    pub phase: Phase,
    pub start_s: f64,
    pub dur_s: f64,
    /// Optional deterministic annotation ("1313.6 MB local", "27000 rows").
    pub note: Option<String>,
}

/// One task's swimlane entry: placement, interval, counters, phases.
#[derive(Debug, Clone)]
pub struct TaskLane {
    pub index: usize,
    pub kind: TaskKind,
    pub node: usize,
    /// Slot on the node (0..concurrency) the task occupied in the schedule.
    pub slot: u32,
    /// Simulated start, seconds from job submission.
    pub start_s: f64,
    /// Simulated duration, seconds.
    pub dur_s: f64,
    pub local_bytes: u64,
    pub remote_bytes: u64,
    pub emit_records: u64,
    pub emit_bytes: u64,
    /// Measured wall-clock nanoseconds the in-process engine actually spent
    /// executing this task. Reported in summaries, excluded from traces.
    pub wall_ns: u64,
    /// Whether this lane is a speculative backup attempt (either the winner
    /// of the commit race or a killed loser occupying its slot).
    pub speculative: bool,
    pub phases: Vec<PhaseSlice>,
}

impl TaskLane {
    pub fn finish_s(&self) -> f64 {
        self.start_s + self.dur_s
    }

    /// Fraction of this task's scanned bytes that were node-local.
    pub fn locality(&self) -> f64 {
        let total = self.local_bytes + self.remote_bytes;
        if total == 0 {
            1.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }
}

/// Straggler and partition-skew statistics over a set of task lanes
/// (paper Section 6.3 reads these off the Hadoop job history).
#[derive(Debug, Clone)]
pub struct StragglerStats {
    pub tasks: usize,
    pub min_s: f64,
    pub median_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
    /// max / median task time; 1.0 means perfectly balanced.
    pub time_skew: f64,
    /// Index (within the job) of the slowest task.
    pub straggler_task: usize,
    /// Node the slowest task ran on.
    pub straggler_node: usize,
    pub emit_bytes_median: f64,
    pub emit_bytes_max: u64,
    /// max / median emit bytes across tasks (partition skew).
    pub emit_skew: f64,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn ratio(max: f64, med: f64) -> f64 {
    if med > 0.0 {
        max / med
    } else {
        1.0
    }
}

impl StragglerStats {
    /// Compute stats over `lanes`; returns `None` for an empty set.
    pub fn from_lanes(lanes: &[&TaskLane]) -> Option<StragglerStats> {
        if lanes.is_empty() {
            return None;
        }
        let mut durs: Vec<f64> = lanes.iter().map(|t| t.dur_s).collect();
        durs.sort_by(|a, b| a.partial_cmp(b).expect("task duration is NaN"));
        let straggler = lanes
            .iter()
            .max_by(|a, b| {
                a.dur_s
                    .partial_cmp(&b.dur_s)
                    .expect("task duration is NaN")
                    .then(b.index.cmp(&a.index))
            })
            .expect("non-empty");
        let mut emits: Vec<f64> = lanes.iter().map(|t| t.emit_bytes as f64).collect();
        emits.sort_by(|a, b| a.partial_cmp(b).expect("emit bytes is NaN"));
        let emit_med = median(&emits);
        let emit_max = lanes.iter().map(|t| t.emit_bytes).max().unwrap_or(0);
        Some(StragglerStats {
            tasks: lanes.len(),
            min_s: durs[0],
            median_s: median(&durs),
            mean_s: durs.iter().sum::<f64>() / durs.len() as f64,
            max_s: durs[durs.len() - 1],
            time_skew: ratio(durs[durs.len() - 1], median(&durs)),
            straggler_task: straggler.index,
            straggler_node: straggler.node,
            emit_bytes_median: emit_med,
            emit_bytes_max: emit_max,
            emit_skew: ratio(emit_max as f64, emit_med),
        })
    }
}

/// Per-node DFS I/O attributed to one job (the engine's scoped snapshot,
/// mirrored here so profiles can report I/O next to phase costs without a
/// dependency on the DFS crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoBytes {
    pub node: usize,
    /// Bytes read from a replica on this node.
    pub local_read: u64,
    /// Bytes this node read over the network.
    pub remote_read: u64,
    /// Bytes written to replicas on this node.
    pub written: u64,
}

impl IoBytes {
    pub fn read(&self) -> u64 {
        self.local_read + self.remote_read
    }
}

/// The full record of one executed job.
#[derive(Debug, Clone, Default)]
pub struct JobHistory {
    pub name: String,
    /// Tenant that submitted the job (empty for solo runs outside the job
    /// server, keeping their traces and summaries byte-identical).
    pub tenant: String,
    /// Absolute simulated start of the job (seconds). Solo runs start at 0;
    /// the job server sets this to the job's admission time so concurrent
    /// jobs lay out on one shared timeline.
    pub t0_s: f64,
    /// Stage times from the cost model (seconds).
    pub setup_s: f64,
    pub map_s: f64,
    pub shuffle_s: f64,
    pub reduce_s: f64,
    pub overhead_s: f64,
    pub map_concurrency: u32,
    pub shuffle_bytes: u64,
    /// Sorted runs merged on the reduce side (satellite: spill/merge stats).
    pub merge_runs: u64,
    /// Records entering / leaving the map-side combiner.
    pub combine_input_records: u64,
    pub combine_output_records: u64,
    /// Byte-weighted scan locality over all map tasks (0..=1).
    pub locality: f64,
    /// Fraction of splits the scheduler placed on a preferred host.
    pub split_locality: f64,
    pub failed_attempts: u32,
    /// Backup attempts launched by speculative execution.
    pub speculative_attempts: u32,
    /// Backup attempts that won the commit race.
    pub speculative_wins: u32,
    /// Nodes blacklisted for retries after repeated attempt failures.
    pub blacklisted_nodes: u32,
    /// Nodes the heartbeat detector declared dead mid-job.
    pub dead_nodes: u32,
    /// Block replicas re-created by namenode-driven re-replication.
    pub rereplicated_blocks: u64,
    /// Wall-clock nanoseconds per phase, summed across tasks (from the
    /// in-process runners; empty when the engine recorded none).
    pub wall_phases: Vec<(Phase, u64)>,
    /// Per-node DFS I/O performed during this job (from the engine's scoped
    /// snapshot; empty when the job ran without one).
    pub io: Vec<IoBytes>,
    /// Replica reads rejected by checksum verification during this job.
    pub corrupt_reads: u64,
    pub tasks: Vec<TaskLane>,
}

impl JobHistory {
    /// Total simulated job time (seconds).
    pub fn total_s(&self) -> f64 {
        self.setup_s + self.map_s + self.shuffle_s + self.reduce_s + self.overhead_s
    }

    /// Absolute simulated end of the job (seconds from server start; equals
    /// `total_s` for solo runs, which start at `t0_s == 0`).
    pub fn end_s(&self) -> f64 {
        self.t0_s + self.total_s()
    }

    pub fn lanes(&self, kind: TaskKind) -> Vec<&TaskLane> {
        self.tasks.iter().filter(|t| t.kind == kind).collect()
    }

    pub fn stragglers(&self, kind: TaskKind) -> Option<StragglerStats> {
        StragglerStats::from_lanes(&self.lanes(kind))
    }

    /// Sum of a phase's simulated duration across all tasks (seconds).
    pub fn phase_total_s(&self, phase: Phase) -> f64 {
        self.tasks
            .iter()
            .flat_map(|t| &t.phases)
            .filter(|p| p.phase == phase)
            .map(|p| p.dur_s)
            .sum()
    }

    /// Longest single-task total for a phase (seconds) — e.g. the per-node
    /// hash-build time in the paper's Q2.1 breakdown.
    pub fn phase_max_s(&self, phase: Phase) -> f64 {
        self.tasks
            .iter()
            .map(|t| {
                t.phases
                    .iter()
                    .filter(|p| p.phase == phase)
                    .map(|p| p.dur_s)
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Sum of a phase's simulated duration across tasks of one kind.
    pub fn phase_total_s_for(&self, kind: TaskKind, phase: Phase) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.kind == kind)
            .flat_map(|t| &t.phases)
            .filter(|p| p.phase == phase)
            .map(|p| p.dur_s)
            .sum()
    }

    /// Longest single-task total for a phase among tasks of one kind.
    pub fn phase_max_s_for(&self, kind: TaskKind, phase: Phase) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| {
                t.phases
                    .iter()
                    .filter(|p| p.phase == phase)
                    .map(|p| p.dur_s)
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    pub fn total_wall_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.wall_ns).sum()
    }

    /// Human-readable multi-line report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job {}: total {:.1}s (setup {:.1} + map {:.1} + shuffle {:.1} + reduce {:.1} + overhead {:.1})\n",
            self.name, self.total_s(), self.setup_s, self.map_s, self.shuffle_s,
            self.reduce_s, self.overhead_s
        ));
        if !self.tenant.is_empty() {
            out.push_str(&format!(
                "  tenant {}: scheduled at t={:.1}s on the shared cluster\n",
                self.tenant, self.t0_s
            ));
        }
        let maps = self.lanes(TaskKind::Map).len();
        let reduces = self.lanes(TaskKind::Reduce).len();
        out.push_str(&format!(
            "  tasks: {} map (concurrency {}) + {} reduce; scan locality {:.1}% (splits {:.1}%); failed attempts {}\n",
            maps,
            self.map_concurrency,
            reduces,
            self.locality * 100.0,
            self.split_locality * 100.0,
            self.failed_attempts
        ));
        if self.speculative_attempts > 0
            || self.blacklisted_nodes > 0
            || self.dead_nodes > 0
            || self.rereplicated_blocks > 0
        {
            out.push_str(&format!(
                "  recovery: {} speculative attempts ({} won); {} blacklisted, {} dead nodes; {} blocks re-replicated\n",
                self.speculative_attempts,
                self.speculative_wins,
                self.blacklisted_nodes,
                self.dead_nodes,
                self.rereplicated_blocks
            ));
        }
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            if let Some(s) = self.stragglers(kind) {
                out.push_str(&format!(
                    "  {} time: min/median/max {:.2}/{:.2}/{:.2}s, skew {:.2}x; straggler task {} on node {}\n",
                    kind.label(),
                    s.min_s,
                    s.median_s,
                    s.max_s,
                    s.time_skew,
                    s.straggler_task,
                    s.straggler_node
                ));
                if kind == TaskKind::Map && s.emit_bytes_max > 0 {
                    out.push_str(&format!(
                        "  emit bytes: median/max {:.0}/{} per task, skew {:.2}x\n",
                        s.emit_bytes_median, s.emit_bytes_max, s.emit_skew
                    ));
                }
            }
        }
        if self.combine_input_records > 0 {
            out.push_str(&format!(
                "  combiner: {} -> {} records ({:.1}x)\n",
                self.combine_input_records,
                self.combine_output_records,
                self.combine_input_records as f64 / self.combine_output_records.max(1) as f64
            ));
        }
        if reduces > 0 {
            out.push_str(&format!(
                "  shuffle: {} bytes; reduce merged {} runs\n",
                self.shuffle_bytes, self.merge_runs
            ));
        }
        let phase_line: Vec<String> = Phase::all()
            .iter()
            .filter_map(|p| {
                let s = self.phase_total_s(*p);
                if s > 0.0 {
                    Some(format!("{} {:.1}s", p.label(), s))
                } else {
                    None
                }
            })
            .collect();
        if !phase_line.is_empty() {
            out.push_str(&format!(
                "  phases (sum over tasks): {}\n",
                phase_line.join(", ")
            ));
        }
        let wall = self.total_wall_ns();
        if wall > 0 {
            let wall_line: Vec<String> = self
                .wall_phases
                .iter()
                .map(|(p, ns)| format!("{} {:.2}ms", p.label(), *ns as f64 / 1e6))
                .collect();
            out.push_str(&format!(
                "  wall clock: {:.2}ms across tasks{}{}\n",
                wall as f64 / 1e6,
                if wall_line.is_empty() { "" } else { " — " },
                wall_line.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(index: usize, node: usize, dur_s: f64, emit_bytes: u64) -> TaskLane {
        TaskLane {
            index,
            kind: TaskKind::Map,
            node,
            slot: 0,
            start_s: 0.0,
            dur_s,
            local_bytes: 100,
            remote_bytes: 0,
            emit_records: emit_bytes / 10,
            emit_bytes,
            wall_ns: 1000,
            speculative: false,
            phases: vec![PhaseSlice {
                phase: Phase::Scan,
                start_s: 0.0,
                dur_s,
                note: None,
            }],
        }
    }

    #[test]
    fn straggler_and_skew_from_hand_built_tasks() {
        // Four tasks: three take 10s, one straggler takes 30s on node 2 and
        // emits 4x the median bytes (partition skew).
        let h = JobHistory {
            name: "t".into(),
            map_s: 30.0,
            map_concurrency: 1,
            locality: 1.0,
            split_locality: 1.0,
            tasks: vec![
                lane(0, 0, 10.0, 1000),
                lane(1, 1, 10.0, 1000),
                lane(2, 2, 30.0, 4000),
                lane(3, 3, 10.0, 1000),
            ],
            ..JobHistory::default()
        };
        let s = h.stragglers(TaskKind::Map).unwrap();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.min_s, 10.0);
        assert_eq!(s.max_s, 30.0);
        assert_eq!(s.median_s, 10.0);
        assert_eq!(s.straggler_task, 2);
        assert_eq!(s.straggler_node, 2);
        assert!((s.time_skew - 3.0).abs() < 1e-12);
        assert_eq!(s.emit_bytes_max, 4000);
        assert!((s.emit_skew - 4.0).abs() < 1e-12);
        assert!(h.stragglers(TaskKind::Reduce).is_none());

        // Phase roll-ups.
        assert!((h.phase_total_s(Phase::Scan) - 60.0).abs() < 1e-9);
        assert!((h.phase_max_s(Phase::Scan) - 30.0).abs() < 1e-9);
        assert_eq!(h.phase_total_s(Phase::Probe), 0.0);

        let text = h.summary();
        assert!(text.contains("straggler task 2 on node 2"));
        assert!(text.contains("skew 3.00x"));
    }

    #[test]
    fn median_handles_even_counts() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn lane_locality_fraction() {
        let mut t = lane(0, 0, 1.0, 0);
        t.remote_bytes = 300;
        assert!((t.locality() - 0.25).abs() < 1e-12);
        t.local_bytes = 0;
        t.remote_bytes = 0;
        assert_eq!(t.locality(), 1.0);
    }
}
