//! Thread-count invariance: the determinism contract the whole repo leans
//! on, asserted end to end.
//!
//! `MtMapRunner` may execute with any number of *host* OS threads — the
//! paper's simulated cluster still has 6 map slots, and the cost model
//! prices with that — so query results, simulated-time spans (as exported
//! Chrome traces), and metric snapshots (wall-clock metrics excluded) must
//! be byte-identical for 1, 2, and 8 host threads, and across repeated runs.

use clyde_common::{rowcodec, Obs};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::sync::Arc;

/// One full Q2.1 execution on a fresh cluster; returns the deterministic
/// artifacts (result bytes, chrome trace, wall-free metrics rendering).
fn run_q21(host_threads: Option<u32>) -> (Vec<u8>, String, String) {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(0.005, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let obs = Obs::enabled();
    let mut clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    if let Some(t) = host_threads {
        clyde = clyde.with_host_threads(t);
    }
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q2.1").unwrap();
    let r = clyde.query(&q).unwrap();
    let metrics: String = obs
        .metrics()
        .snapshot()
        .render()
        .lines()
        .filter(|l| !l.starts_with("mapred.task_wall"))
        .map(|l| format!("{l}\n"))
        .collect();
    (rowcodec::write_rows(&r.rows), obs.chrome_trace(), metrics)
}

#[test]
fn q21_invariant_across_host_thread_counts() {
    let (rows, trace, metrics) = run_q21(None);
    assert!(!rows.is_empty());
    assert!(trace.contains("traceEvents"));
    assert!(metrics.contains("mapred.map_tasks"));
    for t in [1u32, 2, 8] {
        let (rows_t, trace_t, metrics_t) = run_q21(Some(t));
        assert_eq!(
            rows, rows_t,
            "results must not depend on host threads ({t})"
        );
        assert_eq!(
            trace, trace_t,
            "simulated-time spans must not depend on host threads ({t})"
        );
        assert_eq!(
            metrics, metrics_t,
            "metric snapshots must not depend on host threads ({t})"
        );
    }
}

#[test]
fn q21_dual_run_is_byte_identical() {
    let first = run_q21(None);
    let second = run_q21(None);
    assert_eq!(first.0, second.0, "result rows");
    assert_eq!(first.1, second.1, "chrome trace");
    assert_eq!(first.2, second.2, "metric snapshot");
}
