//! Tuples of [`Datum`]s.

use crate::datum::Datum;
use std::fmt;

/// A tuple of datums.
///
/// Rows appear on the engine's cold paths: dimension-table rows, shuffle
/// keys/values, and query results. The fact-table scan path works on columnar
/// blocks instead (see `clyde-columnar`), which is precisely the paper's
/// block-iteration optimization (Section 5.3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Datum>,
}

impl Row {
    pub fn new(values: Vec<Datum>) -> Row {
        Row { values }
    }

    pub fn empty() -> Row {
        Row { values: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Row {
        Row {
            values: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&Datum> {
        self.values.get(idx)
    }

    /// Panicking accessor for hot-ish paths where the index is known valid.
    pub fn at(&self, idx: usize) -> &Datum {
        &self.values[idx]
    }

    pub fn push(&mut self, d: Datum) {
        self.values.push(d);
    }

    pub fn values(&self) -> &[Datum] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Datum> {
        self.values
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Datum> {
        self.values.iter()
    }

    /// Project the given column indices into a new row (the paper's
    /// `Record.project` from Figure 4).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenate two rows (used when a probe augments a fact row with the
    /// auxiliary columns of a matching dimension row).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Row>() + self.values.iter().map(Datum::heap_size).sum::<usize>()
    }
}

impl From<Vec<Datum>> for Row {
    fn from(values: Vec<Datum>) -> Self {
        Row { values }
    }
}

impl FromIterator<Datum> for Row {
    fn from_iter<T: IntoIterator<Item = Datum>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Datum;

    fn index(&self, idx: usize) -> &Datum {
        &self.values[idx]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Build a row from a list of values convertible to [`Datum`].
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Datum::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = row![1i32, 2i64, "x"];
        assert_eq!(r.len(), 3);
        assert_eq!(r.at(0), &Datum::I32(1));
        assert_eq!(r[1], Datum::I64(2));
        assert_eq!(r.get(2).unwrap().as_str(), Some("x"));
        assert_eq!(r.get(3), None);
        assert!(!r.is_empty());
        assert!(Row::empty().is_empty());
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = row![10i32, 20i32, 30i32];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row![30i32, 10i32]);
    }

    #[test]
    fn concat_appends() {
        let a = row![1i32];
        let b = row!["z"];
        assert_eq!(a.concat(&b), row![1i32, "z"]);
    }

    #[test]
    fn rows_order_lexicographically() {
        assert!(row![1i32, 2i32] < row![1i32, 3i32]);
        assert!(row![1i32] < row![1i32, 0i32]);
        assert!(row!["ASIA", 1992i32] < row!["ASIA", 1993i32]);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(row![1i32, "a"].to_string(), "(1, a)");
    }

    #[test]
    fn from_iterator() {
        let r: Row = (0..3).map(Datum::I32).collect();
        assert_eq!(r, row![0i32, 1i32, 2i32]);
    }

    #[test]
    fn heap_size_grows_with_content() {
        assert!(row![1i32, "hello world"].heap_size() > row![1i32].heap_size());
    }
}
