//! Deterministic, locality-aware task scheduling.
//!
//! Reproduces the two scheduler behaviours the paper relies on:
//!
//! 1. **Locality-aware assignment** (Section 3): a split lists the nodes
//!    holding its data; the scheduler places the task on the least-loaded of
//!    them, falling back to the least-loaded node overall.
//! 2. **Capacity scheduling by declared memory** (Section 5.2): a job can
//!    mark its map tasks as requiring a large amount of memory; the number
//!    of concurrently admitted tasks per node is then
//!    `min(map_slots, floor(node_memory / task_memory))`, which Clydesdale
//!    sets to exactly one task per node.
//!
//! Assignments are computed up front and deterministically, so simulated
//! makespans are reproducible regardless of real thread interleaving.
//!
//! The second half of this module is the **multi-job slot simulator** the
//! job server uses: [`interleave`] runs a discrete-event simulation that
//! multiplexes the map/reduce slots (and declared-memory capacity) of one
//! shared [`ClusterSpec`] across N concurrent jobs under a [`SchedPolicy`],
//! entirely in simulated time. Every choice breaks ties on ids, so the
//! schedule is a pure function of its inputs — byte-identical across reruns
//! and host thread counts.

use crate::input::InputSplit;
use clyde_dfs::{ClusterSpec, NodeId};

/// How many tasks of this job a node may run at once.
pub fn concurrency_per_node(cluster: &ClusterSpec, declared_task_memory: u64) -> u32 {
    let slots = cluster.map_slots.max(1);
    if declared_task_memory == 0 {
        return slots;
    }
    let by_memory = cluster.node.memory_bytes / declared_task_memory.max(1);
    (by_memory.min(u64::from(slots)) as u32).max(1)
}

/// Assign each split to a node. Returns `assignment[i] = node of splits[i]`.
///
/// Greedy in split order: prefer the listed host with the least pending
/// bytes; if the split has no hosts (or only dead ones — callers filter),
/// use the globally least-loaded node. Ties break toward the lowest node id,
/// making the whole assignment a pure function of its inputs.
pub fn assign_map_tasks(splits: &[InputSplit], cluster: &ClusterSpec) -> Vec<NodeId> {
    let n = cluster.num_workers();
    let mut pending = vec![0u64; n];
    let mut out = Vec::with_capacity(splits.len());
    for split in splits {
        let candidates: Vec<NodeId> = if split.hosts.is_empty() {
            (0..n).map(NodeId).collect()
        } else {
            split.hosts.iter().copied().filter(|h| h.0 < n).collect()
        };
        let candidates = if candidates.is_empty() {
            (0..n).map(NodeId).collect()
        } else {
            candidates
        };
        let chosen = candidates
            .iter()
            .copied()
            .min_by_key(|c| (pending[c.0], c.0))
            .expect("candidates never empty");
        pending[chosen.0] += split.bytes.max(1);
        out.push(chosen);
    }
    out
}

/// Assign `num_tasks` reduce tasks round-robin over the workers.
pub fn assign_reduce_tasks(num_tasks: usize, cluster: &ClusterSpec) -> Vec<NodeId> {
    let n = cluster.num_workers().max(1);
    (0..num_tasks).map(|i| NodeId(i % n)).collect()
}

/// Fraction of splits whose assigned node is one of their preferred hosts.
pub fn locality_fraction(splits: &[InputSplit], assignment: &[NodeId]) -> f64 {
    if splits.is_empty() {
        return 1.0;
    }
    let local = splits
        .iter()
        .zip(assignment)
        .filter(|(s, a)| s.hosts.is_empty() || s.hosts.contains(a))
        .count();
    local as f64 / splits.len() as f64
}

/// How the job server picks which admitted job's task gets a freed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order: earliest-submitted job first, always.
    Fifo,
    /// Max-min fair over tenants (Hadoop fair-scheduler shape: one pool
    /// per tenant, equal shares): the tenant holding the fewest slots wins
    /// the next one; ties fall to least attained service (granted
    /// slot-seconds), so a fresh interactive tenant beats an equally-idle
    /// batch backlog. FIFO within a tenant, the fair scheduler's default.
    Fair,
    /// Weighted fair over tenants: the tenant with the lowest
    /// `running_slots / weight` wins, least attained service per weight as
    /// the tiebreak; FIFO within a tenant (Hadoop capacity-scheduler shape).
    Capacity,
}

impl SchedPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Fair => "fair",
            SchedPolicy::Capacity => "capacity",
        }
    }

    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "fair" => Some(SchedPolicy::Fair),
            "capacity" => Some(SchedPolicy::Capacity),
            _ => None,
        }
    }

    /// Every policy, in display order.
    pub fn all() -> [SchedPolicy; 3] {
        [SchedPolicy::Fifo, SchedPolicy::Fair, SchedPolicy::Capacity]
    }
}

/// One admitted job, reduced to what the slot simulator needs: its task
/// durations (already priced by the cost model, slowdowns applied), their
/// recorded node placement, and the job's capacity declaration.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Dense tenant index (for the capacity policy's per-tenant shares).
    pub tenant: usize,
    /// Tenant weight under the capacity policy (>= larger is more share).
    pub weight: f64,
    /// Submission time on the server clock (seconds).
    pub arrival_s: f64,
    /// Client-side setup; the job becomes schedulable at `arrival + setup`.
    pub setup_s: f64,
    /// (node, duration) per map task, node-affine from the recorded run.
    pub map_tasks: Vec<(usize, f64)>,
    /// Per-node concurrent-map cap for THIS job (Clydesdale declares full
    /// node memory, capping it to one map task per node).
    pub map_cap_per_node: u32,
    /// Declared per-map-task memory: the cross-JOB capacity constraint — a
    /// node never holds running map tasks whose declared memory exceeds its
    /// physical memory (paper Section 5.2, extended across jobs).
    pub task_mem: u64,
    pub shuffle_s: f64,
    /// (node, duration) per reduce task.
    pub reduce_tasks: Vec<(usize, f64)>,
    /// Job-level overhead appended after the last reduce (or map) finishes.
    pub overhead_s: f64,
}

impl SimJob {
    /// When the job can first take a slot.
    pub fn ready_s(&self) -> f64 {
        self.arrival_s + self.setup_s
    }
}

/// One task's (node, slot, interval) on the shared timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    pub task: usize,
    pub node: usize,
    pub slot: u32,
    pub start_s: f64,
    pub dur_s: f64,
}

impl Placement {
    pub fn finish_s(&self) -> f64 {
        self.start_s + self.dur_s
    }
}

/// The simulator's verdict for one job: every task placement plus the
/// derived stage boundaries.
#[derive(Debug, Clone, Default)]
pub struct JobSchedule {
    /// Map placements, sorted by task index (aligned with the profile).
    pub map: Vec<Placement>,
    /// Reduce placements, sorted by task index.
    pub reduce: Vec<Placement>,
    /// First granted slot (== ready time for task-less jobs).
    pub first_slot_s: f64,
    /// When the last map task finished.
    pub map_end_s: f64,
    /// When the last reduce task finished (== `map_end_s + shuffle` for
    /// map-only jobs).
    pub reduce_end_s: f64,
    /// `reduce_end + overhead`: the job's completion on the server clock.
    pub finish_s: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    /// Submitted, not yet past client setup.
    Pending,
    /// Competing for map slots.
    Mapping,
    /// All maps done; shuffle in flight until the recorded time.
    Shuffling,
    /// Competing for reduce slots.
    Reducing,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    finish_s: f64,
    job: usize,
    task: usize,
    node: usize,
    slot: u32,
    kind: RKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RKind {
    Map,
    Reduce,
}

/// Policy priority key, lower wins: (policy primary, attained service,
/// arrival time, job id). See [`Sim::key`].
type SchedKey = (f64, f64, f64, usize);

/// Per-node slot pool handing out the lowest free slot id (for stable
/// swimlane lanes).
struct SlotPool {
    free: Vec<bool>,
}

impl SlotPool {
    fn new(slots: u32) -> SlotPool {
        SlotPool {
            free: vec![true; slots.max(1) as usize],
        }
    }

    fn available(&self) -> bool {
        self.free.iter().any(|f| *f)
    }

    fn take(&mut self) -> u32 {
        let slot = self
            .free
            .iter()
            .position(|f| *f)
            .expect("caller checked availability");
        self.free[slot] = false;
        slot as u32
    }

    fn release(&mut self, slot: u32) {
        self.free[slot as usize] = true;
    }
}

struct Sim<'a> {
    jobs: &'a [SimJob],
    policy: SchedPolicy,
    node_mem: u64,
    state: Vec<JState>,
    /// Map-task indices not yet started, per job, in task order.
    pending_map: Vec<Vec<usize>>,
    pending_reduce: Vec<Vec<usize>>,
    maps_left: Vec<usize>,
    reduces_left: Vec<usize>,
    /// End of the shuffle stage, for jobs in `Shuffling`.
    shuffle_end: Vec<f64>,
    /// Slots (map + reduce) each tenant currently holds.
    tenant_slots: Vec<u32>,
    /// Slot-seconds granted to each tenant so far (attained service).
    tenant_service: Vec<f64>,
    /// Running map tasks of job j on node n (per-job capacity cap).
    job_node_maps: Vec<Vec<u32>>,
    /// Declared memory currently admitted on each node (map tasks).
    mem_used: Vec<u64>,
    map_pool: Vec<SlotPool>,
    reduce_pool: Vec<SlotPool>,
    running: Vec<Running>,
    out: Vec<JobSchedule>,
}

/// Run the discrete-event slot simulation: interleave every job's map and
/// reduce tasks over `cluster`'s per-node slots under `policy`. Tasks are
/// node-affine (the recorded placement is kept); within a job, tasks start
/// in index order. Returns one schedule per job, same order as `jobs`.
pub fn interleave(jobs: &[SimJob], cluster: &ClusterSpec, policy: SchedPolicy) -> Vec<JobSchedule> {
    let nodes = cluster.num_workers().max(1);
    let tenants = jobs.iter().map(|j| j.tenant + 1).max().unwrap_or(0);
    let mut sim = Sim {
        jobs,
        policy,
        node_mem: cluster.node.memory_bytes,
        state: vec![JState::Pending; jobs.len()],
        pending_map: jobs
            .iter()
            .map(|j| (0..j.map_tasks.len()).collect())
            .collect(),
        pending_reduce: vec![Vec::new(); jobs.len()],
        maps_left: jobs.iter().map(|j| j.map_tasks.len()).collect(),
        reduces_left: jobs.iter().map(|j| j.reduce_tasks.len()).collect(),
        shuffle_end: vec![0.0; jobs.len()],
        tenant_slots: vec![0; tenants],
        tenant_service: vec![0.0; tenants],
        job_node_maps: vec![vec![0; nodes]; jobs.len()],
        mem_used: vec![0; nodes],
        map_pool: (0..nodes)
            .map(|_| SlotPool::new(cluster.map_slots))
            .collect(),
        reduce_pool: (0..nodes)
            .map(|_| SlotPool::new(cluster.reduce_slots))
            .collect(),
        running: Vec::new(),
        out: vec![JobSchedule::default(); jobs.len()],
    };
    sim.run();
    for (j, sched) in sim.out.iter_mut().enumerate() {
        sched.map.sort_by_key(|p| p.task);
        sched.reduce.sort_by_key(|p| p.task);
        let first = sched
            .map
            .iter()
            .chain(&sched.reduce)
            .map(|p| p.start_s)
            .fold(f64::INFINITY, f64::min);
        sched.first_slot_s = if first.is_finite() {
            first
        } else {
            jobs[j].ready_s()
        };
        sched.finish_s = sched.reduce_end_s + jobs[j].overhead_s;
    }
    sim.out
}

impl Sim<'_> {
    fn run(&mut self) {
        loop {
            let t = self.next_event_time();
            let Some(t) = t else { break };
            self.complete_tasks(t);
            self.end_shuffles(t);
            self.activate_ready(t);
            self.assign(t);
        }
    }

    /// Earliest pending event: a job becoming ready, a running task
    /// finishing, or a shuffle completing. `None` once everything is done.
    fn next_event_time(&self) -> Option<f64> {
        let mut t = f64::INFINITY;
        for (j, s) in self.state.iter().enumerate() {
            match s {
                JState::Pending => t = t.min(self.jobs[j].ready_s()),
                JState::Shuffling => t = t.min(self.shuffle_end[j]),
                _ => {}
            }
        }
        for r in &self.running {
            t = t.min(r.finish_s);
        }
        t.is_finite().then_some(t)
    }

    /// Retire every running task whose finish time is exactly `t` (finish
    /// times are reused bit-for-bit, so exact comparison is sound), in
    /// (kind, job, task) order.
    fn complete_tasks(&mut self, t: f64) {
        let mut done: Vec<Running> = Vec::new();
        self.running.retain(|r| {
            if r.finish_s == t {
                done.push(*r);
                false
            } else {
                true
            }
        });
        done.sort_by_key(|r| (r.kind, r.job, r.task));
        for r in done {
            self.tenant_slots[self.jobs[r.job].tenant] -= 1;
            match r.kind {
                RKind::Map => {
                    self.map_pool[r.node].release(r.slot);
                    self.job_node_maps[r.job][r.node] -= 1;
                    self.mem_used[r.node] -= self.jobs[r.job].task_mem;
                    self.maps_left[r.job] -= 1;
                    if self.maps_left[r.job] == 0 {
                        self.out[r.job].map_end_s = t;
                        self.advance_past_maps(r.job, t);
                    }
                }
                RKind::Reduce => {
                    self.reduce_pool[r.node].release(r.slot);
                    self.reduces_left[r.job] -= 1;
                    if self.reduces_left[r.job] == 0 {
                        self.out[r.job].reduce_end_s = t;
                        self.state[r.job] = JState::Done;
                    }
                }
            }
        }
    }

    /// Move a job whose maps all finished at `t` into its next stage.
    fn advance_past_maps(&mut self, j: usize, t: f64) {
        let job = &self.jobs[j];
        if job.reduce_tasks.is_empty() {
            // Map-only: the shuffle stage is empty but still recorded.
            self.out[j].reduce_end_s = t + job.shuffle_s;
            self.state[j] = JState::Done;
        } else if job.shuffle_s > 0.0 {
            self.shuffle_end[j] = t + job.shuffle_s;
            self.state[j] = JState::Shuffling;
        } else {
            self.pending_reduce[j] = (0..job.reduce_tasks.len()).collect();
            self.state[j] = JState::Reducing;
        }
    }

    fn end_shuffles(&mut self, t: f64) {
        for j in 0..self.jobs.len() {
            if self.state[j] == JState::Shuffling && self.shuffle_end[j] == t {
                self.pending_reduce[j] = (0..self.jobs[j].reduce_tasks.len()).collect();
                self.state[j] = JState::Reducing;
            }
        }
    }

    fn activate_ready(&mut self, t: f64) {
        for j in 0..self.jobs.len() {
            if self.state[j] == JState::Pending && self.jobs[j].ready_s() <= t {
                if self.jobs[j].map_tasks.is_empty() {
                    self.out[j].map_end_s = t;
                    self.advance_past_maps(j, t);
                } else {
                    self.state[j] = JState::Mapping;
                }
            }
        }
    }

    /// The policy's priority key: lower wins. Fair/capacity break ties on
    /// least attained service (slot-seconds granted so far), then arrival
    /// order, then job id, so every decision is total and deterministic —
    /// and a fresh job is not starved by an earlier-arrived backlog that is
    /// momentarily holding zero slots.
    fn key(&self, j: usize) -> SchedKey {
        let job = &self.jobs[j];
        let (primary, service) = match self.policy {
            SchedPolicy::Fifo => (0.0, 0.0),
            SchedPolicy::Fair => (
                f64::from(self.tenant_slots[job.tenant]),
                self.tenant_service[job.tenant],
            ),
            SchedPolicy::Capacity => {
                let w = job.weight.max(1e-9);
                (
                    f64::from(self.tenant_slots[job.tenant]) / w,
                    self.tenant_service[job.tenant] / w,
                )
            }
        };
        (primary, service, job.arrival_s, j)
    }

    /// A map task of job `j` fits on `node` iff a slot is free, the job's
    /// own per-node cap allows it, and the node's declared-memory capacity
    /// admits it (an oversized declaration still runs alone).
    fn map_fits(&self, j: usize, node: usize) -> bool {
        self.map_pool[node].available()
            && self.job_node_maps[j][node] < self.jobs[j].map_cap_per_node.max(1)
            && (self.mem_used[node] + self.jobs[j].task_mem <= self.node_mem
                || self.mem_used[node] == 0)
    }

    /// First pending map task of `j` that fits somewhere right now.
    fn assignable_map(&self, j: usize) -> Option<usize> {
        self.pending_map[j]
            .iter()
            .position(|&task| self.map_fits(j, self.jobs[j].map_tasks[task].0))
    }

    fn assignable_reduce(&self, j: usize) -> Option<usize> {
        self.pending_reduce[j]
            .iter()
            .position(|&task| self.reduce_pool[self.jobs[j].reduce_tasks[task].0].available())
    }

    /// Hand out every slot that can be filled at time `t`: repeatedly pick
    /// the best-priority job with an assignable task until nothing fits.
    /// Keys are re-evaluated after each grant, so fair/capacity shares shift
    /// as slots are taken.
    fn assign(&mut self, t: f64) {
        loop {
            let mut best: Option<(SchedKey, usize, RKind)> = None;
            for j in 0..self.jobs.len() {
                let kind = match self.state[j] {
                    JState::Mapping if self.assignable_map(j).is_some() => RKind::Map,
                    JState::Reducing if self.assignable_reduce(j).is_some() => RKind::Reduce,
                    _ => continue,
                };
                let key = self.key(j);
                let better = match &best {
                    None => true,
                    Some((bk, _, _)) => key
                        .0
                        .total_cmp(&bk.0)
                        .then(key.1.total_cmp(&bk.1))
                        .then(key.2.total_cmp(&bk.2))
                        .then(key.3.cmp(&bk.3))
                        .is_lt(),
                };
                if better {
                    best = Some((key, j, kind));
                }
            }
            let Some((_, j, kind)) = best else { break };
            match kind {
                RKind::Map => self.grant_map(j, t),
                RKind::Reduce => self.grant_reduce(j, t),
            }
        }
    }

    fn grant_map(&mut self, j: usize, t: f64) {
        let pos = self.assignable_map(j).expect("caller checked");
        let task = self.pending_map[j].remove(pos);
        let (node, dur) = self.jobs[j].map_tasks[task];
        let slot = self.map_pool[node].take();
        self.job_node_maps[j][node] += 1;
        self.mem_used[node] += self.jobs[j].task_mem;
        self.tenant_slots[self.jobs[j].tenant] += 1;
        self.tenant_service[self.jobs[j].tenant] += dur;
        self.running.push(Running {
            finish_s: t + dur,
            job: j,
            task,
            node,
            slot,
            kind: RKind::Map,
        });
        self.out[j].map.push(Placement {
            task,
            node,
            slot,
            start_s: t,
            dur_s: dur,
        });
    }

    fn grant_reduce(&mut self, j: usize, t: f64) {
        let pos = self.assignable_reduce(j).expect("caller checked");
        let task = self.pending_reduce[j].remove(pos);
        let (node, dur) = self.jobs[j].reduce_tasks[task];
        let slot = self.reduce_pool[node].take();
        self.tenant_slots[self.jobs[j].tenant] += 1;
        self.tenant_service[self.jobs[j].tenant] += dur;
        self.running.push(Running {
            finish_s: t + dur,
            job: j,
            task,
            node,
            slot,
            kind: RKind::Reduce,
        });
        self.out[j].reduce.push(Placement {
            task,
            node,
            slot,
            start_s: t,
            dur_s: dur,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SplitSpec;

    fn split(index: usize, hosts: Vec<usize>, bytes: u64) -> InputSplit {
        InputSplit {
            index,
            spec: SplitSpec::FileRange {
                path: format!("/f{index}"),
                offset: 0,
                len: bytes,
            },
            hosts: hosts.into_iter().map(NodeId).collect(),
            bytes,
        }
    }

    #[test]
    fn prefers_listed_hosts() {
        let cluster = ClusterSpec::tiny(4);
        let splits = vec![split(0, vec![2], 10), split(1, vec![2, 3], 10)];
        let a = assign_map_tasks(&splits, &cluster);
        assert_eq!(a[0], NodeId(2));
        // Second split prefers node 3 because node 2 already has load.
        assert_eq!(a[1], NodeId(3));
        assert_eq!(locality_fraction(&splits, &a), 1.0);
    }

    #[test]
    fn balances_load_without_hosts() {
        let cluster = ClusterSpec::tiny(3);
        let splits: Vec<InputSplit> = (0..9).map(|i| split(i, vec![], 100)).collect();
        let a = assign_map_tasks(&splits, &cluster);
        for node in 0..3 {
            assert_eq!(a.iter().filter(|n| n.0 == node).count(), 3);
        }
    }

    #[test]
    fn out_of_range_hosts_are_ignored() {
        let cluster = ClusterSpec::tiny(2);
        let splits = vec![split(0, vec![7], 10)];
        let a = assign_map_tasks(&splits, &cluster);
        assert!(a[0].0 < 2);
    }

    #[test]
    fn assignment_is_deterministic() {
        let cluster = ClusterSpec::tiny(5);
        let splits: Vec<InputSplit> = (0..20)
            .map(|i| split(i, vec![i % 5, (i + 1) % 5], 50 + i as u64))
            .collect();
        assert_eq!(
            assign_map_tasks(&splits, &cluster),
            assign_map_tasks(&splits, &cluster)
        );
    }

    #[test]
    fn capacity_scheduling_limits_concurrency() {
        let cluster = ClusterSpec::tiny(2); // 2 map slots, 4 GB nodes
        assert_eq!(concurrency_per_node(&cluster, 0), 2);
        // Declaring 3 GB per task admits only one task at a time.
        assert_eq!(concurrency_per_node(&cluster, 3 << 30), 1);
        // Declaring tiny memory is still capped by slots.
        assert_eq!(concurrency_per_node(&cluster, 1), 2);
        // Declaring more than node memory still admits one (Hadoop would
        // reject; we degrade to serial execution).
        assert_eq!(concurrency_per_node(&cluster, 1 << 40), 1);
    }

    #[test]
    fn reduce_round_robin() {
        let cluster = ClusterSpec::tiny(3);
        assert_eq!(
            assign_reduce_tasks(5, &cluster),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0), NodeId(1)]
        );
    }

    /// A job with `tasks` 10s map tasks on node 0, one 5s reduce on node 0.
    fn sim_job(tenant: usize, arrival: f64, tasks: usize) -> SimJob {
        SimJob {
            tenant,
            weight: 1.0,
            arrival_s: arrival,
            setup_s: 1.0,
            map_tasks: (0..tasks).map(|_| (0, 10.0)).collect(),
            map_cap_per_node: 2,
            task_mem: 0,
            shuffle_s: 2.0,
            reduce_tasks: vec![(0, 5.0)],
            overhead_s: 3.0,
        }
    }

    #[test]
    fn fifo_runs_jobs_in_arrival_order() {
        // tiny(1) has 2 map slots, 1 reduce slot on one node.
        let cluster = ClusterSpec::tiny(1);
        let jobs = vec![sim_job(0, 0.0, 2), sim_job(1, 0.5, 2)];
        let s = interleave(&jobs, &cluster, SchedPolicy::Fifo);
        // Job 0 takes both slots at t=1; job 1 (ready 1.5) waits until they
        // free at t=11 despite having arrived long before.
        assert_eq!(s[0].map[0].start_s, 1.0);
        assert_eq!(s[0].map[1].start_s, 1.0);
        assert_eq!(s[0].map_end_s, 11.0);
        assert_eq!(s[1].map[0].start_s, 11.0);
        assert_eq!(s[1].map[1].start_s, 11.0);
        // Stage chain: maps 11 + shuffle 2 -> reduce 13..18, finish 21.
        assert_eq!(s[0].reduce[0].start_s, 13.0);
        assert_eq!(s[0].reduce_end_s, 18.0);
        assert_eq!(s[0].finish_s, 21.0);
        assert_eq!(s[1].first_slot_s, 11.0);
    }

    #[test]
    fn fair_interleaves_slots_across_jobs() {
        let cluster = ClusterSpec::tiny(1); // 2 map slots
        let jobs = vec![sim_job(0, 0.0, 4), sim_job(1, 0.5, 2)];
        let s = interleave(&jobs, &cluster, SchedPolicy::Fair);
        // Only job 0 is ready at t=1; it takes both slots.
        assert_eq!(s[0].map[0].start_s, 1.0);
        assert_eq!(s[0].map[1].start_s, 1.0);
        // At t=11 both free up: both jobs hold 0 slots, but job 1 has 0
        // attained slot-seconds vs job 0's 20, so job 1 gets the first
        // slot and job 0 (now the lower slot count) the second. The same
        // dance repeats at t=21 for the tails.
        assert_eq!(s[1].map[0].start_s, 11.0);
        assert_eq!(s[0].map[2].start_s, 11.0);
        assert_eq!(s[1].map[1].start_s, 21.0);
        assert_eq!(s[0].map_end_s, 31.0, "job 0's tail serializes on 1 slot");
        assert_eq!(s[1].map_end_s, 31.0);
    }

    #[test]
    fn capacity_weights_tenant_shares() {
        let mut cluster = ClusterSpec::tiny(1);
        cluster.map_slots = 4; // one node, four map slots
        let mut lo = sim_job(0, 0.0, 8);
        lo.weight = 1.0;
        lo.map_cap_per_node = 4;
        let mut hi = sim_job(1, 0.0, 8);
        hi.weight = 3.0;
        hi.map_cap_per_node = 4;
        let s = interleave(&[lo, hi], &cluster, SchedPolicy::Capacity);
        // First wave (t=1): the id tiebreak hands tenant 0 one slot, after
        // which tenant 1's weight-normalized share (k/3) stays below tenant
        // 0's (1/1) until tenant 1 holds 3 of the 4 slots — a 3:1 split.
        let wave1 = |sch: &JobSchedule| sch.map.iter().filter(|p| p.start_s == 1.0).count();
        assert_eq!(wave1(&s[0]), 1);
        assert_eq!(wave1(&s[1]), 3);
        // Sustaining that split, the weighted tenant clears its 8 tasks in
        // three waves while tenant 0 needs the cluster to drain first.
        assert_eq!(s[1].map_end_s, 31.0);
        assert_eq!(s[0].map_end_s, 41.0);
    }

    #[test]
    fn declared_memory_caps_cross_job_admission() {
        let cluster = ClusterSpec::tiny(1); // 2 map slots, 4 GB node
        let mut a = sim_job(0, 0.0, 1);
        a.task_mem = 3 << 30;
        let mut b = sim_job(1, 0.0, 1);
        b.task_mem = 3 << 30;
        let s = interleave(&[a, b], &cluster, SchedPolicy::Fair);
        // Two free slots, but 3 GB + 3 GB > 4 GB: job 1's map waits for job
        // 0's to release the node's declared memory.
        assert_eq!(s[0].map[0].start_s, 1.0);
        assert_eq!(s[1].map[0].start_s, 11.0);
    }

    #[test]
    fn fair_improves_late_small_job_latency_over_fifo() {
        let cluster = ClusterSpec::tiny(2); // 2 nodes x 2 map slots
                                            // A burst of big jobs at t=0, then a small interactive job at t=2.
        let mut jobs: Vec<SimJob> = (0..4)
            .map(|i| {
                let mut j = sim_job(0, 0.0, 4);
                j.map_tasks = (0..4).map(|k| (k % 2, 10.0)).collect();
                j.arrival_s = 0.1 * i as f64;
                j
            })
            .collect();
        let mut small = sim_job(1, 2.0, 1);
        small.reduce_tasks.clear();
        small.shuffle_s = 0.0;
        jobs.push(small);
        let fifo = interleave(&jobs, &cluster, SchedPolicy::Fifo);
        let fair = interleave(&jobs, &cluster, SchedPolicy::Fair);
        let lat = |s: &[JobSchedule]| s[4].finish_s - jobs[4].arrival_s;
        assert!(
            lat(&fair) < lat(&fifo),
            "fair {} !< fifo {}",
            lat(&fair),
            lat(&fifo)
        );
    }

    #[test]
    fn interleave_is_deterministic_and_complete() {
        let cluster = ClusterSpec::tiny(3);
        let jobs: Vec<SimJob> = (0..6)
            .map(|i| {
                let mut j = sim_job(i % 3, 0.7 * i as f64, 3 + i % 2);
                j.map_tasks = (0..j.map_tasks.len()).map(|k| ((i + k) % 3, 8.0)).collect();
                j
            })
            .collect();
        for policy in SchedPolicy::all() {
            let a = interleave(&jobs, &cluster, policy);
            let b = interleave(&jobs, &cluster, policy);
            assert_eq!(a.len(), jobs.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.map, y.map);
                assert_eq!(x.reduce, y.reduce);
                assert_eq!(x.finish_s.to_bits(), y.finish_s.to_bits());
                assert!(x.finish_s.is_finite());
            }
            // Every task placed exactly once; no slot oversubscription.
            for (j, s) in a.iter().enumerate() {
                assert_eq!(s.map.len(), jobs[j].map_tasks.len());
                assert_eq!(s.reduce.len(), jobs[j].reduce_tasks.len());
                assert!(s.first_slot_s >= jobs[j].ready_s());
            }
            let mut events: Vec<(f64, i32, usize)> = Vec::new(); // (t, +1/-1, node)
            for s in &a {
                for p in &s.map {
                    events.push((p.start_s, 1, p.node));
                    events.push((p.finish_s(), -1, p.node));
                }
            }
            events.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
            let mut busy = [0i32; 3];
            for (_, d, node) in events {
                busy[node] += d;
                assert!(busy[node] <= cluster.map_slots as i32);
            }
        }
    }

    #[test]
    fn policy_labels_roundtrip() {
        for p in SchedPolicy::all() {
            assert_eq!(SchedPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(SchedPolicy::parse("lifo"), None);
    }
}
