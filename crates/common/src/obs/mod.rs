//! Observability: hierarchical spans, a unified metrics registry, and
//! job-history reports.
//!
//! The paper's evaluation (Section 6) reads everything — the Q2.1 time
//! breakdown, effective scan bandwidth, locality — from Hadoop's per-task
//! counters and job-history logs. [`Obs`] is our equivalent: engines record
//! a [`JobHistory`] per job, spans mirror the cost model's simulated
//! timeline (exportable as deterministic Chrome trace JSON for Perfetto),
//! and the [`MetricsRegistry`] unifies the counters that used to live in
//! `TaskCost`, the DFS I/O snapshot, and the scheduler.
//!
//! `Obs::disabled()` is a zero-overhead no-op; instrumented code guards
//! expensive collection behind [`Obs::is_enabled`].

pub mod flame;
pub mod history;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod server;
pub mod span;
pub mod trace;
pub mod wall;

pub use history::{IoBytes, JobHistory, Phase, PhaseSlice, StragglerStats, TaskKind, TaskLane};
pub use metrics::{HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    profiles_json, JobProfileReport, PhaseRow, QueryProfile, StageRow, DEFAULT_DRIFT_THRESHOLD_PCT,
};
pub use server::{RejectedLane, ServedLane, ServerRun};
pub use span::{us, Span, SpanId, SpanKind, SpanRecorder};
pub use wall::WallTimer;

use crate::lockorder::Mutex;
use std::sync::Arc;

/// Handle to the most recently recorded job's trace location, so callers
/// (e.g. the query layer adding a final-sort span) can append to the same
/// track.
#[derive(Debug, Clone, Copy)]
pub struct JobRef {
    pub pid: u32,
    pub root: SpanId,
    /// Simulated end of the job (seconds) — where appended work starts.
    pub total_s: f64,
}

/// The observability hub shared across DFS, engine, query layer, and bench
/// harness. Cheap to clone via `Arc`.
pub struct Obs {
    enabled: bool,
    spans: SpanRecorder,
    metrics: MetricsRegistry,
    histories: Mutex<Vec<JobHistory>>,
    profiles: Mutex<Vec<QueryProfile>>,
    server_runs: Mutex<Vec<ServerRun>>,
    last_job: Mutex<Option<JobRef>>,
}

impl Obs {
    pub fn enabled() -> Arc<Obs> {
        Arc::new(Obs {
            enabled: true,
            spans: SpanRecorder::enabled(),
            metrics: MetricsRegistry::enabled(),
            histories: Mutex::new(Vec::new()),
            profiles: Mutex::new(Vec::new()),
            server_runs: Mutex::new(Vec::new()),
            last_job: Mutex::new(None),
        })
    }

    /// The no-op hub: recording and metric updates cost nothing.
    pub fn disabled() -> Arc<Obs> {
        Arc::new(Obs {
            enabled: false,
            spans: SpanRecorder::disabled(),
            metrics: MetricsRegistry::disabled(),
            histories: Mutex::new(Vec::new()),
            profiles: Mutex::new(Vec::new()),
            server_runs: Mutex::new(Vec::new()),
            last_job: Mutex::new(None),
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Record a finished job: stores the history and projects it into the
    /// span recorder. Returns the job's trace location.
    pub fn record_job(&self, h: JobHistory) -> Option<JobRef> {
        if !self.enabled {
            return None;
        }
        let total_s = h.end_s();
        let job_ref =
            trace::record_job(&self.spans, &h).map(|(pid, root)| JobRef { pid, root, total_s });
        self.histories.lock().push(h);
        *self.last_job.lock() = job_ref;
        job_ref
    }

    pub fn last_job(&self) -> Option<JobRef> {
        *self.last_job.lock()
    }

    /// Run `f` over every recorded job history, in recording order.
    pub fn with_histories<R>(&self, f: impl FnOnce(&[JobHistory]) -> R) -> R {
        f(&self.histories.lock())
    }

    /// Store a finished job-server drain's per-tenant swimlane report.
    pub fn record_server_run(&self, r: ServerRun) {
        if self.enabled {
            self.server_runs.lock().push(r);
        }
    }

    /// Run `f` over every recorded server run, in recording order.
    pub fn with_server_runs<R>(&self, f: impl FnOnce(&[ServerRun]) -> R) -> R {
        f(&self.server_runs.lock())
    }

    /// Store a finished query's explain-analyze profile.
    pub fn record_query_profile(&self, p: QueryProfile) {
        if self.enabled {
            self.profiles.lock().push(p);
        }
    }

    /// Run `f` over every recorded query profile, in recording order.
    pub fn with_query_profiles<R>(&self, f: impl FnOnce(&[QueryProfile]) -> R) -> R {
        f(&self.profiles.lock())
    }

    /// Collapsed-stack flamegraph export of every recorded span
    /// (deterministic over simulated time; see [`flame::collapsed`]).
    pub fn flamegraph(&self) -> String {
        flame::collapsed(&self.spans)
    }

    /// Serialize all recorded spans as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        trace::chrome_trace(&self.spans)
    }

    /// Per-job summaries followed by the metrics snapshot, as text.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        self.with_server_runs(|rs| {
            for r in rs {
                out.push_str(&r.render());
            }
        });
        self.with_histories(|hs| {
            for h in hs {
                out.push_str(&h.summary());
            }
        });
        let metrics = self.metrics.snapshot().render();
        if !metrics.is_empty() {
            out.push_str("metrics:\n");
            for line in metrics.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Clear spans, metrics, and histories (e.g. between bench iterations).
    pub fn reset(&self) {
        self.spans.reset();
        self.metrics.reset();
        self.histories.lock().clear();
        self.profiles.lock().clear();
        self.server_runs.lock().clear();
        *self.last_job.lock() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let h = JobHistory {
            name: "j".into(),
            map_s: 1.0,
            ..JobHistory::default()
        };
        assert!(obs.record_job(h).is_none());
        assert!(obs.last_job().is_none());
        obs.with_histories(|hs| assert!(hs.is_empty()));
        assert!(obs.summary().is_empty());
    }

    #[test]
    fn enabled_obs_tracks_jobs_and_resets() {
        let obs = Obs::enabled();
        obs.metrics().counter_add("mapred.jobs", 1);
        let h = JobHistory {
            name: "j".into(),
            map_s: 2.0,
            ..JobHistory::default()
        };
        let j = obs.record_job(h).unwrap();
        assert_eq!(j.total_s, 2.0);
        assert_eq!(obs.last_job().unwrap().pid, j.pid);
        obs.with_histories(|hs| assert_eq!(hs.len(), 1));
        assert!(obs.summary().contains("job j"));
        assert!(obs.summary().contains("mapred.jobs = 1"));
        obs.record_query_profile(QueryProfile::from_histories(
            "Q1.1",
            &[],
            0.5,
            DEFAULT_DRIFT_THRESHOLD_PCT,
        ));
        obs.with_query_profiles(|ps| assert_eq!(ps.len(), 1));
        obs.reset();
        obs.with_histories(|hs| assert!(hs.is_empty()));
        obs.with_query_profiles(|ps| assert!(ps.is_empty()));
        assert!(obs.last_job().is_none());
        assert!(obs.spans().spans().is_empty());
    }
}
