//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides the subset of [`Bytes`] this workspace uses: construction from
//! `Vec<u8>` / static slices, cheap `Clone` via `Arc`, `Deref` to `[u8]`,
//! zero-copy `slice`, and value equality. The real crate's `BytesMut`
//! builder and refcount gymnastics are not needed here.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wrap a `'static` byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-range sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "range out of bounds: {lo}..{hi} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], &[2, 3]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn static_and_eq() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert!(Bytes::new().is_empty());
    }
}
