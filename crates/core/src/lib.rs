//! Clydesdale — structured data processing on MapReduce.
//!
//! This crate is the paper's primary contribution: a star-join query engine
//! that runs as ordinary MapReduce jobs on an *unmodified* framework, yet
//! approaches parallel-DBMS performance by combining:
//!
//! * **columnar storage** (CIF, `clyde-columnar`) with column projection
//!   pushed into the scan (Section 4.1);
//! * a **tailored n-way star-join plan**: the map side builds one hash table
//!   per dimension (predicates applied during the build) and probes all of
//!   them per fact row with early-out; the reduce side groups and
//!   aggregates (Section 4.2, Figure 4);
//! * **multi-core execution**: one map task per node, marked
//!   memory-heavy so the capacity scheduler admits nothing else, running a
//!   multi-threaded [`mtrunner::MtMapRunner`] whose threads share a single
//!   read-only copy of the dimension hash tables (Section 5.1, Figure 5);
//! * **JVM reuse**: hash tables live in per-node state that survives across
//!   the job's tasks, so they are built exactly once per node (Section 5.2);
//! * **block iteration** (B-CIF): the probe loop runs over column arrays,
//!   paying framework overhead once per block instead of once per record
//!   (Section 5.3).
//!
//! Every one of those features can be disabled through
//! [`config::Features`] — that is how the paper's Section 6.5 ablation
//! (Figure 9) is reproduced.
//!
//! ```no_run
//! use clydesdale::Clydesdale;
//! use clyde_dfs::{Dfs, DfsOptions, ClusterSpec, ColocatingPlacement};
//! use clyde_ssb::{gen::SsbGen, loader, query_by_id};
//!
//! let dfs = Dfs::new(ClusterSpec::tiny(4), DfsOptions {
//!     block_size: 1 << 20,
//!     replication: 2,
//!     policy: Box::new(ColocatingPlacement),
//! });
//! let layout = loader::SsbLayout::default();
//! loader::load(&dfs, SsbGen::new(0.01, 46), &layout, &Default::default()).unwrap();
//! let clyde = Clydesdale::new(dfs, layout);
//! let result = clyde.query(&query_by_id("Q2.1").unwrap()).unwrap();
//! for row in &result.rows {
//!     println!("{row}");
//! }
//! ```

pub mod config;
pub mod engine;
pub mod hashtable;
pub mod mtrunner;
pub mod planner;
pub mod probe;
pub mod server;

pub use config::Features;
pub use engine::{Clydesdale, QueryResult};
pub use hashtable::{DimHashTable, DimTables};
pub use probe::KernelOpts;
pub use server::{QueryServer, ServedQuery};
