//! `clyde-profdiff`: attribute the delta between two performance artifacts
//! to named phases and counters.
//!
//! Three artifact kinds are auto-detected:
//!
//! * **Query-profile bundles** (`{"format":"clyde-profiles",...}`, written by
//!   the `profile` binary / [`crate::harness::profile_suite`]) — per-query
//!   simulated makespans with per-stage and per-phase decomposition. The
//!   diff attributes each query's makespan delta to stages, and splits a
//!   map/reduce stage delta across its per-phase critical-path deltas when
//!   those are well-conditioned, so a regression reads "Q2.1 −12%: probe
//!   +9%, shuffle merge +3%" instead of a bare number.
//! * **Chrome traces** (`{"traceEvents":[...]}`) — stage spans and the
//!   final-sort span per job process give stage-level attribution.
//! * **`bench_probe` artifacts** (`BENCH_probe.json` and friends) — probe
//!   throughput and per-ablation-layer benefits; deltas are reported per
//!   query and per optimization layer.
//!
//! Everything sums: for profile and trace pairs the named components add up
//! to the full makespan delta (coverage 1.0) unless the job structure
//! itself changed, in which case the residual is reported as its own
//! component.

use clyde_common::obs::json::{self, Json};

/// Ignore components below this share of the before-makespan when rendering
/// headlines (they still count toward coverage).
const HEADLINE_MIN_PCT: f64 = 0.05;

/// A stage's sub-phase decomposition is trusted when the summed phase deltas
/// agree with the stage delta in sign and explain at least half of it.
const PHASE_CONDITION_MIN: f64 = 0.5;

/// One query (or job process) extracted from an artifact, reduced to
/// additive components.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    pub name: String,
    pub total_s: f64,
    /// Additive stage components `(name, seconds)`; they sum to `total_s`.
    pub stages: Vec<(String, f64)>,
    /// Per-stage phase critical-path seconds (profiles only), used to
    /// sub-attribute a stage's delta.
    pub stage_phases: Vec<(String, Vec<(String, f64)>)>,
}

impl QueryRecord {
    fn stage(&self, name: &str) -> f64 {
        self.stages
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    fn phases_of(&self, stage: &str) -> Option<&[(String, f64)]> {
        self.stage_phases
            .iter()
            .find(|(n, _)| n == stage)
            .map(|(_, p)| p.as_slice())
    }
}

/// Per-query throughput numbers from a `bench_probe` artifact.
#[derive(Debug, Clone)]
pub struct ProbeRecord {
    pub name: String,
    pub scalar_rows_per_s: f64,
    pub vectorized_rows_per_s: f64,
    pub speedup: f64,
    /// `(ablation label, rows/s with that layer off)`.
    pub ablations: Vec<(String, f64)>,
}

/// A parsed artifact.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Makespan-bearing artifacts: query-profile bundles and Chrome traces.
    Makespans {
        kind: &'static str,
        queries: Vec<QueryRecord>,
    },
    /// `bench_probe` throughput artifacts.
    Probe(Vec<ProbeRecord>),
}

impl Artifact {
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Makespans { kind, .. } => kind,
            Artifact::Probe(_) => "bench-probe",
        }
    }
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(|v| v.as_num()).unwrap_or(0.0)
}

fn obj_entries(j: &Json) -> Vec<(String, &Json)> {
    match j {
        Json::Obj(fields) => fields.iter().map(|(k, v)| (k.clone(), v)).collect(),
        _ => Vec::new(),
    }
}

/// Detect and parse an artifact.
pub fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let doc = json::parse(text)?;
    if doc.get("format").and_then(|f| f.as_str()) == Some("clyde-profiles") {
        return parse_profiles(&doc);
    }
    if doc.get("traceEvents").is_some() {
        return parse_trace(&doc);
    }
    if let Some(queries) = doc.get("queries") {
        let probe_like = obj_entries(queries)
            .first()
            .is_some_and(|(_, q)| q.get("scalar_rows_per_s").is_some());
        if probe_like {
            return parse_probe(queries);
        }
    }
    Err(
        "unrecognized artifact: expected a clyde-profiles bundle, a Chrome trace, \
         or a bench_probe JSON"
            .to_string(),
    )
}

fn parse_profiles(doc: &Json) -> Result<Artifact, String> {
    let queries = doc
        .get("queries")
        .and_then(|q| q.as_arr())
        .ok_or("clyde-profiles bundle has no queries array")?;
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let name = q
            .get("query")
            .and_then(|n| n.as_str())
            .ok_or("profile entry has no query name")?
            .to_string();
        let jobs = q.get("jobs").and_then(|j| j.as_arr()).unwrap_or(&[]);
        let multi = jobs.len() > 1;
        let mut stages = Vec::new();
        let mut stage_phases = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            let prefix = if multi {
                format!("job{}/", ji + 1)
            } else {
                String::new()
            };
            if let Some(st) = job.get("stages") {
                for (sname, v) in obj_entries(st) {
                    let key = format!("{prefix}{sname}");
                    let secs = v.as_num().unwrap_or(0.0);
                    stages.push((key.clone(), secs));
                    let detail = match sname.as_str() {
                        "map" => job.get("map_phases"),
                        "reduce" => job.get("reduce_phases"),
                        _ => None,
                    };
                    if let Some(d) = detail {
                        let phases: Vec<(String, f64)> = obj_entries(d)
                            .into_iter()
                            .map(|(p, v)| (p, v.as_num().unwrap_or(0.0)))
                            .collect();
                        if !phases.is_empty() {
                            stage_phases.push((key, phases));
                        }
                    }
                }
            }
        }
        stages.push(("final-sort".to_string(), num(q, "final_sort_s")));
        out.push(QueryRecord {
            name,
            total_s: num(q, "total_s"),
            stages,
            stage_phases,
        });
    }
    Ok(Artifact::Makespans {
        kind: "clyde-profiles",
        queries: out,
    })
}

fn parse_trace(doc: &Json) -> Result<Artifact, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("trace has no traceEvents array")?;
    // pid -> display name, then pid -> stage sums.
    let mut names: Vec<(f64, String)> = Vec::new();
    let mut records: Vec<(f64, QueryRecord)> = Vec::new();
    for e in events {
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
        let pid = num(e, "pid");
        if name == "process_name" {
            if let Some(pname) = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
            {
                names.push((pid, pname.to_string()));
            }
            continue;
        }
        let cat = e.get("cat").and_then(|c| c.as_str()).unwrap_or("");
        let is_stage = cat == "stage";
        let is_final_sort = cat == "phase" && name == "final-sort";
        if !is_stage && !is_final_sort {
            continue;
        }
        let secs = num(e, "dur") / 1e6;
        let rec = match records.iter_mut().find(|(p, _)| *p == pid) {
            Some((_, r)) => r,
            None => {
                records.push((
                    pid,
                    QueryRecord {
                        name: String::new(),
                        total_s: 0.0,
                        stages: Vec::new(),
                        stage_phases: Vec::new(),
                    },
                ));
                &mut records.last_mut().expect("just pushed").1
            }
        };
        match rec.stages.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += secs,
            None => rec.stages.push((name.to_string(), secs)),
        }
        rec.total_s += secs;
    }
    let mut out = Vec::with_capacity(records.len());
    for (pid, mut rec) in records {
        rec.name = names
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("pid{pid}"));
        out.push(rec);
    }
    if out.is_empty() {
        return Err("trace contains no stage spans".to_string());
    }
    Ok(Artifact::Makespans {
        kind: "chrome-trace",
        queries: out,
    })
}

fn parse_probe(queries: &Json) -> Result<Artifact, String> {
    let mut out = Vec::new();
    for (name, q) in obj_entries(queries) {
        out.push(ProbeRecord {
            name,
            scalar_rows_per_s: num(q, "scalar_rows_per_s"),
            vectorized_rows_per_s: num(q, "vectorized_rows_per_s"),
            speedup: num(q, "speedup"),
            ablations: q
                .get("ablations")
                .map(|a| {
                    obj_entries(a)
                        .into_iter()
                        .map(|(l, v)| (l, v.as_num().unwrap_or(0.0)))
                        .collect()
                })
                .unwrap_or_default(),
        });
    }
    Ok(Artifact::Probe(out))
}

/// One query's attributed delta.
#[derive(Debug, Clone)]
pub struct QueryDelta {
    pub name: String,
    pub before_s: f64,
    pub after_s: f64,
    /// Named contributions in seconds, sorted by |contribution| descending;
    /// they sum to `after_s - before_s` up to float noise.
    pub components: Vec<(String, f64)>,
}

impl QueryDelta {
    pub fn delta_s(&self) -> f64 {
        self.after_s - self.before_s
    }

    /// Relative makespan change, percent (positive = slower).
    pub fn delta_pct(&self) -> f64 {
        if self.before_s <= 0.0 {
            0.0
        } else {
            self.delta_s() / self.before_s * 100.0
        }
    }

    /// Fraction of the delta explained by named components (1.0 when the
    /// decomposition is exact).
    pub fn coverage(&self) -> f64 {
        let d = self.delta_s();
        if d.abs() < 1e-12 {
            return 1.0;
        }
        let explained: f64 = self.components.iter().map(|(_, v)| v).sum();
        explained / d
    }

    /// "Q2.1 -12.1%: probe -6.5%, shuffle -2.0%"
    pub fn headline(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (name, secs) in &self.components {
            let pct = if self.before_s > 0.0 {
                secs / self.before_s * 100.0
            } else {
                0.0
            };
            if pct.abs() < HEADLINE_MIN_PCT {
                continue;
            }
            parts.push(format!("{name} {pct:+.1}%"));
            if parts.len() == 4 {
                break;
            }
        }
        let tail = if parts.is_empty() {
            "no component above noise".to_string()
        } else {
            parts.join(", ")
        };
        format!("{} {:+.1}%: {}", self.name, self.delta_pct(), tail)
    }
}

/// The full diff of two artifacts.
#[derive(Debug)]
pub struct DiffReport {
    pub kind: &'static str,
    /// Makespan attribution (empty for bench-probe diffs).
    pub queries: Vec<QueryDelta>,
    /// Pre-rendered lines for bench-probe diffs.
    pub probe_lines: Vec<String>,
}

/// Attribute one query pair's makespan delta to stage/phase components.
fn attribute(before: &QueryRecord, after: &QueryRecord) -> QueryDelta {
    let mut stage_names: Vec<String> = before.stages.iter().map(|(n, _)| n.clone()).collect();
    for (n, _) in &after.stages {
        if !stage_names.iter().any(|s| s == n) {
            stage_names.push(n.clone());
        }
    }
    let mut components: Vec<(String, f64)> = Vec::new();
    let mut attributed = 0.0;
    for stage in &stage_names {
        let d = after.stage(stage) - before.stage(stage);
        attributed += d;
        if d.abs() < 1e-12 {
            continue;
        }
        // Sub-attribute via per-phase critical-path deltas when available
        // and well-conditioned: the phase deltas must point the same way as
        // the stage delta and explain at least half of it — otherwise the
        // decomposition would mislead more than a plain stage name.
        let detail = match (before.phases_of(stage), after.phases_of(stage)) {
            (Some(b), Some(a)) => {
                let mut phase_names: Vec<&str> = b.iter().map(|(n, _)| n.as_str()).collect();
                for (n, _) in a {
                    if !phase_names.contains(&n.as_str()) {
                        phase_names.push(n);
                    }
                }
                let of = |set: &[(String, f64)], n: &str| {
                    set.iter().find(|(pn, _)| pn == n).map_or(0.0, |(_, v)| *v)
                };
                let raw: Vec<(String, f64)> = phase_names
                    .iter()
                    .map(|n| (format!("{stage}/{n}"), of(a, n) - of(b, n)))
                    .collect();
                let sum: f64 = raw.iter().map(|(_, v)| v).sum();
                if sum * d > 0.0 && sum.abs() >= PHASE_CONDITION_MIN * d.abs() {
                    let scale = d / sum;
                    Some(
                        raw.into_iter()
                            .filter(|(_, v)| v.abs() > 1e-12)
                            .map(|(n, v)| (n, v * scale))
                            .collect::<Vec<_>>(),
                    )
                } else {
                    None
                }
            }
            _ => None,
        };
        match detail {
            Some(phases) => components.extend(phases),
            None => components.push((stage.clone(), d)),
        }
    }
    // Residual from structural change (job added/removed: totals move more
    // than the paired stages explain).
    let total_delta = after.total_s - before.total_s;
    let residual = total_delta - attributed;
    if residual.abs() > 1e-9 {
        components.push(("job-structure".to_string(), residual));
    }
    components.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    QueryDelta {
        name: before.name.clone(),
        before_s: before.total_s,
        after_s: after.total_s,
        components,
    }
}

fn diff_probe(before: &[ProbeRecord], after: &[ProbeRecord]) -> Vec<String> {
    let mut lines = Vec::new();
    for b in before {
        let Some(a) = after.iter().find(|r| r.name == b.name) else {
            lines.push(format!("{}: missing from after-artifact", b.name));
            continue;
        };
        let pct = |x: f64, y: f64| if x > 0.0 { (y - x) / x * 100.0 } else { 0.0 };
        lines.push(format!(
            "{}: vectorized {:.2}M -> {:.2}M rows/s ({:+.1}%), scalar {:+.1}%, \
             speedup {:.2}x -> {:.2}x",
            b.name,
            b.vectorized_rows_per_s / 1e6,
            a.vectorized_rows_per_s / 1e6,
            pct(b.vectorized_rows_per_s, a.vectorized_rows_per_s),
            pct(b.scalar_rows_per_s, a.scalar_rows_per_s),
            b.speedup,
            a.speedup,
        ));
        // A layer's benefit factor is all-on / layer-off throughput; if the
        // factor moved, that layer explains part of the swing.
        for (label, b_off) in &b.ablations {
            let Some((_, a_off)) = a.ablations.iter().find(|(l, _)| l == label) else {
                continue;
            };
            if *b_off <= 0.0 || *a_off <= 0.0 {
                continue;
            }
            let b_benefit = b.vectorized_rows_per_s / b_off;
            let a_benefit = a.vectorized_rows_per_s / a_off;
            let moved = (a_benefit / b_benefit - 1.0) * 100.0;
            if moved.abs() >= 1.0 {
                lines.push(format!(
                    "  layer {label}: benefit {b_benefit:.2}x -> {a_benefit:.2}x ({moved:+.1}%)"
                ));
            }
        }
    }
    for a in after {
        if !before.iter().any(|r| r.name == a.name) {
            lines.push(format!("{}: new in after-artifact", a.name));
        }
    }
    lines
}

/// Diff two artifacts of the same kind.
pub fn diff(before: &Artifact, after: &Artifact) -> Result<DiffReport, String> {
    match (before, after) {
        (
            Artifact::Makespans {
                kind: bk,
                queries: bq,
            },
            Artifact::Makespans {
                kind: ak,
                queries: aq,
            },
        ) => {
            if bk != ak {
                return Err(format!("artifact kinds differ: {bk} vs {ak}"));
            }
            let mut out = Vec::new();
            for b in bq {
                match aq.iter().find(|r| r.name == b.name) {
                    Some(a) => out.push(attribute(b, a)),
                    None => out.push(QueryDelta {
                        name: b.name.clone(),
                        before_s: b.total_s,
                        after_s: 0.0,
                        components: vec![("removed".to_string(), -b.total_s)],
                    }),
                }
            }
            for a in aq {
                if !bq.iter().any(|r| r.name == a.name) {
                    out.push(QueryDelta {
                        name: a.name.clone(),
                        before_s: 0.0,
                        after_s: a.total_s,
                        components: vec![("added".to_string(), a.total_s)],
                    });
                }
            }
            Ok(DiffReport {
                kind: bk,
                queries: out,
                probe_lines: Vec::new(),
            })
        }
        (Artifact::Probe(b), Artifact::Probe(a)) => Ok(DiffReport {
            kind: "bench-probe",
            queries: Vec::new(),
            probe_lines: diff_probe(b, a),
        }),
        _ => Err(format!(
            "artifact kinds differ: {} vs {}",
            before.kind(),
            after.kind()
        )),
    }
}

impl DiffReport {
    /// Queries that got slower by more than `threshold_pct` percent.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&QueryDelta> {
        self.queries
            .iter()
            .filter(|q| q.delta_pct() > threshold_pct)
            .collect()
    }

    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "clyde-profdiff ({})", self.kind).expect("string write");
        if !self.probe_lines.is_empty() {
            for l in &self.probe_lines {
                out.push_str(l);
                out.push('\n');
            }
            return out;
        }
        for q in &self.queries {
            writeln!(out, "{}", q.headline()).expect("string write");
            for (name, secs) in &q.components {
                let pct = if q.before_s > 0.0 {
                    secs / q.before_s * 100.0
                } else {
                    0.0
                };
                if pct.abs() < HEADLINE_MIN_PCT {
                    continue;
                }
                writeln!(out, "    {name:<24} {secs:>+10.2}s  {pct:>+7.2}%").expect("string write");
            }
            writeln!(
                out,
                "    {:<24} {:>+10.2}s  coverage {:.0}%",
                "= total",
                q.delta_s(),
                q.coverage() * 100.0
            )
            .expect("string write");
        }
        let before: f64 = self.queries.iter().map(|q| q.before_s).sum();
        let after: f64 = self.queries.iter().map(|q| q.after_s).sum();
        if before > 0.0 {
            writeln!(
                out,
                "suite makespan {before:.1}s -> {after:.1}s ({:+.1}%)",
                (after - before) / before * 100.0
            )
            .expect("string write");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, stages: &[(&str, f64)], phases: &[(&str, &[(&str, f64)])]) -> QueryRecord {
        QueryRecord {
            name: name.to_string(),
            total_s: stages.iter().map(|(_, v)| v).sum(),
            stages: stages.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            stage_phases: phases
                .iter()
                .map(|(s, ps)| {
                    (
                        s.to_string(),
                        ps.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn attribution_splits_stage_delta_across_phases() {
        let before = rec(
            "Q2.1",
            &[("setup", 10.0), ("map", 100.0), ("final-sort", 1.0)],
            &[("map", &[("scan", 40.0), ("probe", 60.0)])],
        );
        let after = rec(
            "Q2.1",
            &[("setup", 10.0), ("map", 120.0), ("final-sort", 1.0)],
            &[("map", &[("scan", 42.0), ("probe", 76.0)])],
        );
        let d = attribute(&before, &after);
        assert!((d.delta_s() - 20.0).abs() < 1e-9);
        assert!((d.coverage() - 1.0).abs() < 1e-9, "exact: {}", d.coverage());
        // Probe's raw delta is 16 of raw-sum 18, scaled onto the 20s stage
        // delta: probe gets the lion's share and leads the ranking.
        assert_eq!(d.components[0].0, "map/probe");
        assert!((d.components[0].1 - 16.0 * (20.0 / 18.0)).abs() < 1e-9);
        let head = d.headline();
        assert!(head.starts_with("Q2.1 +18.0%:"), "{head}");
        assert!(head.contains("map/probe +16.0%"), "{head}");
    }

    #[test]
    fn ill_conditioned_phases_fall_back_to_stage() {
        // Stage got 20s slower but phase deltas point the other way — the
        // split would lie, so the component stays at stage granularity.
        let before = rec(
            "Q1.1",
            &[("map", 100.0)],
            &[("map", &[("scan", 50.0), ("probe", 50.0)])],
        );
        let after = rec(
            "Q1.1",
            &[("map", 120.0)],
            &[("map", &[("scan", 49.0), ("probe", 48.0)])],
        );
        let d = attribute(&before, &after);
        assert_eq!(d.components[0].0, "map");
        assert!((d.components[0].1 - 20.0).abs() < 1e-9);
        assert!((d.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn structural_residual_is_reported() {
        let before = rec("Qx", &[("map", 50.0)], &[]);
        let mut after = rec("Qx", &[("map", 50.0)], &[]);
        after.total_s += 7.0; // an unpaired extra job
        let d = attribute(&before, &after);
        assert!(d
            .components
            .iter()
            .any(|(n, v)| n == "job-structure" && (*v - 7.0).abs() < 1e-9));
        assert!((d.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_artifacts_diff_by_layer() {
        let mk = |vec_rps: f64, no_pref: f64| {
            Artifact::Probe(vec![ProbeRecord {
                name: "Q2.1".into(),
                scalar_rows_per_s: 10e6,
                vectorized_rows_per_s: vec_rps,
                speedup: vec_rps / 10e6,
                ablations: vec![("no-prefetch".into(), no_pref)],
            }])
        };
        let report = diff(&mk(50e6, 48e6), &mk(40e6, 48e6)).unwrap();
        let text = report.render();
        assert!(text.contains("Q2.1: vectorized 50.00M -> 40.00M rows/s (-20.0%)"));
        // Benefit factor collapsed from 1.04x to 0.83x: prefetch named.
        assert!(text.contains("layer no-prefetch"), "{text}");
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let p = Artifact::Probe(Vec::new());
        let m = Artifact::Makespans {
            kind: "clyde-profiles",
            queries: Vec::new(),
        };
        assert!(diff(&p, &m).is_err());
    }
}
