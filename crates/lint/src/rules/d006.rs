//! D006 `floatorder`: non-associative float reductions in merge-scope code.
//!
//! The paper's numbers survive replication because every reduction that
//! crosses a thread or run boundary folds in one fixed order. Inside the
//! merge-scope files — the morsel-parallel runner and the shuffle merge —
//! a floating-point reduction whose order is not pinned is a thread-count
//! dependence waiting to happen. The rule flags, in non-test functions of
//! those files:
//!
//! * `fold(...)` calls — always. The folded closure's associativity is
//!   unknowable statically, so the merge order must be made explicit (or
//!   the site annotated `allow(floatorder, reason=fixed-merge-order …)`
//!   after checking the inputs arrive in a canonical order).
//! * `.sum()` calls and `+=` accumulation in loops — only with visible
//!   `f32`/`f64` evidence in the same statement (float-typed binding, a
//!   float literal/cast). Integer reductions commute; flagging them would
//!   only train people to scatter pragmas.

use super::FileCtx;
use crate::lexer::TokKind;
use crate::{rel_allowed, Rule, Violation};

/// Files whose non-test functions merge cross-thread or cross-run state.
pub const D006_MERGE_SCOPE: &[&str] = &[
    "crates/core/src/mtrunner.rs",
    "crates/mapred/src/shuffle.rs",
];

pub(crate) fn scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    if !rel_allowed(ctx.file, D006_MERGE_SCOPE) {
        return;
    }
    let ast = ctx.ast;
    for f in ast.fns.iter().filter(|f| !f.is_test && !f.nested) {
        // Loop headers seen so far, by depth: `+=` only counts inside one.
        let loop_depths: Vec<(usize, u32)> = f
            .body
            .clone()
            .filter(|&i| {
                ast.sig[i].kind == TokKind::Ident
                    && matches!(ast.sig[i].text.as_str(), "for" | "while" | "loop")
            })
            .map(|i| (i, ast.depth[i]))
            .collect();
        for stmt in ast.statements(&f.body) {
            let float_evidence = stmt.clone().any(|i| {
                let t = &ast.sig[i];
                (t.kind == TokKind::Ident
                    && (t.text == "f32" || t.text == "f64" || ast.float_names.contains(&t.text)))
                    || t.kind == TokKind::Float
            });
            for i in stmt.clone() {
                let t = &ast.sig[i];
                // A call: `name(` or turbofish `name::<T>(`.
                let is_call = ast.is_punct(i + 1, "(")
                    || (ast.is_punct(i + 1, ":")
                        && ast.is_punct(i + 2, ":")
                        && ast.is_punct(i + 3, "<"));
                if t.kind == TokKind::Ident && is_call {
                    let hit = match t.text.as_str() {
                        "fold" => Some("fold"),
                        "sum" if float_evidence => Some("sum"),
                        _ => None,
                    };
                    if let Some(what) = hit {
                        violations.push(Violation {
                            file: ctx.file.to_path_buf(),
                            line: ast.line(i),
                            rule: Rule::FloatOrder,
                            message: format!(
                                "`{what}` reduction in merge-scope fn `{}` — the fold order \
                                 decides the result for non-associative (float) operations; \
                                 pin a canonical order or annotate \
                                 `clyde-lint: allow(floatorder, reason=fixed-merge-order …)`",
                                f.name
                            ),
                        });
                    }
                }
                // `acc += …` on a float-evidenced accumulator, inside a loop.
                if t.kind == TokKind::Punct
                    && t.text == "+"
                    && ast.is_punct(i + 1, "=")
                    && i > 0
                    && ast.sig[i - 1].kind == TokKind::Ident
                    && ast.float_names.contains(&ast.sig[i - 1].text)
                    && loop_depths
                        .iter()
                        .any(|&(at, d)| at < i && d < ast.depth[i])
                {
                    violations.push(Violation {
                        file: ctx.file.to_path_buf(),
                        line: ast.line(i),
                        rule: Rule::FloatOrder,
                        message: format!(
                            "float `+=` accumulation on `{}` in a loop in merge-scope fn \
                             `{}` — iteration order decides the sum; pin a canonical order \
                             or annotate `clyde-lint: allow(floatorder, \
                             reason=fixed-merge-order …)`",
                            ast.sig[i - 1].text,
                            f.name
                        ),
                    });
                }
            }
        }
    }
}
