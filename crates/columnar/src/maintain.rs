//! Fact-table maintenance: roll-in and roll-out.
//!
//! The paper contrasts Clydesdale with Llama on exactly this point
//! (Section 2): because the fact table is not kept in any sorted order,
//! "roll-in and roll-out of fact table data is straightforward" — new data
//! appends as fresh row groups, old data drops by deleting whole row
//! groups, and nothing is ever merged or rewritten. Section 8 lists
//! managing updates as the system's first avenue of future work; this
//! module implements that avenue:
//!
//! * [`CifAppender`] — open an existing CIF table and append rows; each
//!   flush creates new immutable row-group directories (placed by the same
//!   co-locating policy) and atomically replaces the metadata file;
//! * [`roll_out`] — drop the `n` oldest row groups, freeing their DFS
//!   blocks and advancing the table's `first_group` watermark.
//!
//! Readers opened before a maintenance operation keep working against the
//! groups that still exist; readers opened after see the new extent.

use crate::cif::{CifReader, CifTableMeta};
use crate::encoding::{choose_encoding, encode_column};
use clyde_common::{ClydeError, Result, Row, RowBlockBuilder};
use clyde_dfs::Dfs;
use std::sync::Arc;

/// Appends rows to an existing CIF table as new row groups.
pub struct CifAppender {
    dfs: Arc<Dfs>,
    meta: CifTableMeta,
    builder: RowBlockBuilder,
}

impl CifAppender {
    /// Open the table for roll-in. Fails if the table does not exist.
    pub fn open(dfs: Arc<Dfs>, base: &str) -> Result<CifAppender> {
        let meta = CifReader::open(&dfs, base)?.meta().clone();
        let dtypes: Vec<_> = meta.schema.fields().iter().map(|f| f.dtype).collect();
        Ok(CifAppender {
            dfs,
            meta,
            builder: RowBlockBuilder::new(&dtypes),
        })
    }

    /// Rows currently live in the table (before this batch lands).
    pub fn existing_rows(&self) -> u64 {
        self.meta.total_rows()
    }

    pub fn append(&mut self, row: &Row) -> Result<()> {
        self.builder.push_row(row)?;
        if self.builder.len() as u64 >= self.meta.rows_per_group {
            self.flush_group()?;
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let dtypes: Vec<_> = self.meta.schema.fields().iter().map(|f| f.dtype).collect();
        let block = std::mem::replace(&mut self.builder, RowBlockBuilder::new(&dtypes)).finish();
        // The new group's logical index is the current group count; its
        // physical directory is first_group + that, which has never been
        // used (roll-out only moves first_group forward).
        let group = self.meta.group_rows.len();
        let placement = self.meta.placement_group(group);
        for (i, col) in block.columns().iter().enumerate() {
            let name = &self.meta.schema.field(i).name;
            let encoded = encode_column(col, choose_encoding(col))?;
            let mut w = self.dfs.create(
                self.meta.column_path(group, name),
                Some(placement.clone()),
                None,
            )?;
            w.write_all(&encoded);
            w.close()?;
        }
        self.meta.group_rows.push(block.len() as u64);
        Ok(())
    }

    /// Flush the partial tail group (roll-in batches do not merge into the
    /// previous batch's tail — groups are immutable) and publish the new
    /// metadata.
    pub fn close(mut self) -> Result<CifTableMeta> {
        self.flush_group()?;
        replace_meta(&self.dfs, &self.meta)?;
        Ok(self.meta)
    }
}

/// Drop the `n` oldest row groups of a CIF table, deleting their column
/// files and advancing the metadata watermark. Returns the new metadata.
pub fn roll_out(dfs: &Arc<Dfs>, base: &str, n: usize) -> Result<CifTableMeta> {
    let mut meta = CifReader::open(dfs, base)?.meta().clone();
    if n > meta.num_groups() {
        return Err(ClydeError::Config(format!(
            "cannot roll out {n} groups: table has {}",
            meta.num_groups()
        )));
    }
    // Delete the oldest n groups' files (logical indices 0..n).
    for g in 0..n {
        for field in meta.schema.fields() {
            dfs.delete(&meta.column_path(g, &field.name))?;
        }
    }
    meta.first_group += n as u64;
    meta.group_rows.drain(..n);
    replace_meta(dfs, &meta)?;
    Ok(meta)
}

/// Atomically (within the single-namenode model) replace the `_meta` file.
fn replace_meta(dfs: &Arc<Dfs>, meta: &CifTableMeta) -> Result<()> {
    let path = format!("{}/_meta", meta.base);
    if dfs.exists(&path) {
        dfs.delete(&path)?;
    }
    dfs.write_file(path, None, &meta.encode_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cif::CifWriter;
    use clyde_common::{row, Field, Schema};
    use clyde_mapred::TaskIo;

    fn schema() -> Schema {
        Schema::new(vec![Field::i32("k"), Field::i64("v")])
    }

    fn base_table(dfs: &Arc<Dfs>, n: usize) {
        let mut w = CifWriter::new(Arc::clone(dfs), "/t/f", schema(), 10).unwrap();
        for i in 0..n {
            w.append(&row![i as i32, (i * 2) as i64]).unwrap();
        }
        w.close().unwrap();
    }

    fn all_keys(dfs: &Arc<Dfs>) -> Vec<i32> {
        CifReader::open(dfs, "/t/f")
            .unwrap()
            .read_all_rows(dfs)
            .unwrap()
            .iter()
            .map(|r| r.at(0).as_i32().unwrap())
            .collect()
    }

    #[test]
    fn roll_in_appends_new_groups() {
        let dfs = Dfs::for_tests(3);
        base_table(&dfs, 25); // groups [10, 10, 5]
        let mut a = CifAppender::open(Arc::clone(&dfs), "/t/f").unwrap();
        assert_eq!(a.existing_rows(), 25);
        for i in 25..42 {
            a.append(&row![i, (i * 2) as i64]).unwrap();
        }
        let meta = a.close().unwrap();
        // The 5-row tail group is untouched; the batch lands as [10, 7].
        assert_eq!(meta.group_rows, vec![10, 10, 5, 10, 7]);
        assert_eq!(all_keys(&dfs), (0..42).collect::<Vec<_>>());
    }

    #[test]
    fn roll_out_drops_oldest_groups() {
        let dfs = Dfs::for_tests(3);
        base_table(&dfs, 30); // groups [10, 10, 10]
        let before = dfs.used_bytes_per_node().iter().sum::<u64>();
        let meta = roll_out(&dfs, "/t/f", 2).unwrap();
        assert_eq!(meta.first_group, 2);
        assert_eq!(meta.group_rows, vec![10]);
        assert_eq!(all_keys(&dfs), (20..30).collect::<Vec<_>>());
        // Blocks of the dropped groups were freed.
        let after = dfs.used_bytes_per_node().iter().sum::<u64>();
        assert!(after < before);
    }

    #[test]
    fn roll_in_after_roll_out_never_reuses_directories() {
        let dfs = Dfs::for_tests(3);
        base_table(&dfs, 20); // phys rg0, rg1
        roll_out(&dfs, "/t/f", 1).unwrap(); // drops rg0
        let mut a = CifAppender::open(Arc::clone(&dfs), "/t/f").unwrap();
        for i in 100..115 {
            a.append(&row![i, 0i64]).unwrap();
        }
        let meta = a.close().unwrap();
        // Live logical groups: old rg1, new rg2, rg3 (physical).
        assert_eq!(meta.first_group, 1);
        assert_eq!(meta.group_rows, vec![10, 10, 5]);
        let keys = all_keys(&dfs);
        assert_eq!(&keys[..10], (10..20).collect::<Vec<_>>().as_slice());
        assert_eq!(&keys[10..], (100..115).collect::<Vec<_>>().as_slice());
        // Write-once discipline held: rg0 stays deleted, rg1 untouched.
        assert!(dfs.list("/t/f/rg000000/").is_empty());
    }

    #[test]
    fn rolled_in_groups_remain_colocated() {
        let dfs = Dfs::for_tests(5);
        base_table(&dfs, 10);
        let mut a = CifAppender::open(Arc::clone(&dfs), "/t/f").unwrap();
        for i in 0..10 {
            a.append(&row![i + 100, 0i64]).unwrap();
        }
        a.close().unwrap();
        let reader = CifReader::open(&dfs, "/t/f").unwrap();
        for g in 0..reader.meta().num_groups() {
            assert_eq!(
                reader.group_hosts(&dfs, g).unwrap().len(),
                2,
                "group {g} lost co-location"
            );
        }
        // And scans from a host stay fully local.
        let host = reader.group_hosts(&dfs, 1).unwrap()[0];
        let io = TaskIo::new(Arc::clone(&dfs), host);
        reader.read_group(&io, 1, &[0, 1]).unwrap();
        assert_eq!(io.stats.remote(), 0);
    }

    #[test]
    fn roll_out_more_than_exists_errors() {
        let dfs = Dfs::for_tests(2);
        base_table(&dfs, 15);
        assert!(roll_out(&dfs, "/t/f", 3).is_err());
        // Rolling out everything is allowed; the table becomes empty.
        let meta = roll_out(&dfs, "/t/f", 2).unwrap();
        assert_eq!(meta.num_groups(), 0);
        assert!(all_keys(&dfs).is_empty());
    }

    #[test]
    fn appender_on_missing_table_errors() {
        let dfs = Dfs::for_tests(2);
        assert!(CifAppender::open(dfs, "/nope").is_err());
    }
}
