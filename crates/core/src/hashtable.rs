//! Dimension hash tables (paper Section 4.2).
//!
//! One table per dimension join: key = dimension primary key, value = the
//! auxiliary columns the query references. The dimension predicate is
//! evaluated during the build, so non-qualifying rows never enter the table
//! and the probe's miss *is* the filter. Once built, the tables are
//! read-only and are shared by every thread and every subsequent task on
//! the node without synchronization — exactly the property the paper
//! exploits (Section 5.1).
//!
//! Qualifying rows additionally get a dense **group id** (`u32`, assigned
//! in build order): the vectorized probe kernel works in ids and packs them
//! into a single `u64` group key, rematerializing the aux `Row`s only once
//! per task at emit time. [`DimHashTable::get`] still returns the aux row
//! directly for the scalar paths.

use clyde_columnar::SortedDict;
use clyde_common::{ClydeError, FxHashMap, Result, Row};
use clyde_ssb::queries::{CodePred, DimJoin};
use clyde_ssb::schema;

/// Direct-index probe tables are built when the key range spans at most
/// this many slots (16 MiB of `u32`). SSB dimension keys are small dense
/// integers (or, for dates, a narrow `yyyymmdd` band), so measurement-scale
/// tables always qualify; a dimension whose key range outgrows the cap
/// falls back to hash probing transparently.
const DIRECT_MAX_SLOTS: i64 = 1 << 22;

/// Maximum slots-per-entry ratio for the direct-index table. Requiring
/// density keeps the array's footprint proportional to the dimension's
/// cardinality (so it scales like the hash map it shadows) once the range
/// outgrows [`DIRECT_SMALL_RANGE`].
const DIRECT_MAX_SLOTS_PER_ENTRY: usize = 4;

/// Key ranges at most this wide always get a direct-index table, however
/// sparse (≤ 512 KiB of `u32` — cheaper than the hash map it replaces
/// would ever be to probe). This is what puts yyyymmdd date keys, whose
/// 7-year span occupies ~2.5k of ~61k slots and therefore fails the
/// density rule, on the array path: the date dimension is probed by every
/// fact row of flights 2-4, so its probe is the kernel's hottest load.
const DIRECT_SMALL_RANGE: i64 = 1 << 17;

/// Sentinel in the direct-index table: key present in range but filtered
/// out or absent.
pub(crate) const NONE_ID: u32 = u32::MAX;

/// A read-only hash table over one (filtered) dimension.
#[derive(Debug)]
pub struct DimHashTable {
    /// Primary key → dense aux id (index into `aux_rows`).
    map: FxHashMap<i64, u32>,
    /// Direct-index probe table `(min_key, ids)`: `ids[key - min_key]` is
    /// the dense aux id or [`NONE_ID`]. Used by [`DimHashTable::get_id`]
    /// (the vectorized kernel) — an array load instead of a hash probe.
    direct: Option<(i64, Vec<u32>)>,
    /// Aux rows in id order; the group-id dictionary.
    aux_rows: Vec<Row>,
    /// Rows scanned while building (qualifying or not) — the build cost.
    pub rows_scanned: u64,
    /// Approximate heap footprint, for the node memory model — the part
    /// that grows with dimension cardinality (map entries, aux rows, and
    /// direct-array slots up to [`DIRECT_MAX_SLOTS_PER_ENTRY`] per entry).
    pub mem_bytes: u64,
    /// Range-bounded footprint that does NOT grow with cardinality: the
    /// slack of a small-range direct array beyond the density cap (e.g.
    /// the yyyymmdd date array, whose ~61k slots are fixed by the 7-year
    /// calendar at every scale factor). The cost extrapolator scales
    /// `mem_bytes` with dimension cardinality but carries this through
    /// unscaled.
    pub mem_fixed_bytes: u64,
}

impl DimHashTable {
    /// Build from dimension rows per the join description. `buildHashTables`
    /// in the paper's Figure 4 pseudocode. Evaluates the predicate with
    /// plain string compares; see [`DimHashTable::build_with`] for the
    /// dictionary-predicate path.
    pub fn build(join: &DimJoin, rows: &[Row]) -> Result<DimHashTable> {
        DimHashTable::build_with(join, rows, false)
    }

    /// Build with an explicit predicate-evaluation strategy. With
    /// `dict_predicates` on and a predicate that compares strings, each
    /// referenced string column is dictionary-encoded once (sorted dict +
    /// one `u32` code per row) and the predicate is compiled to code
    /// compares ([`CodePred`]): equality = one code lookup, string ranges =
    /// one code range. The resulting table is identical either way — only
    /// the build-time compare work changes.
    pub fn build_with(join: &DimJoin, rows: &[Row], dict_predicates: bool) -> Result<DimHashTable> {
        let dim_schema = schema::schema_of(&join.dimension)
            .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
        let pred = join.predicate.compile(&dim_schema)?;
        let pk_idx = dim_schema.index_of(&join.pk)?;
        let aux_idx: Vec<usize> = join
            .aux
            .iter()
            .map(|a| dim_schema.index_of(a))
            .collect::<Result<_>>()?;

        // Dictionary-predicate compilation (DESIGN.md §10): encode the
        // predicate's string columns once, then the per-row filter below
        // runs integer compares only.
        let mut str_cols = Vec::new();
        pred.str_cols(&mut str_cols);
        let dict_path: Option<(CodePred, FxHashMap<usize, Vec<u32>>)> =
            if dict_predicates && !str_cols.is_empty() {
                let mut dicts: FxHashMap<usize, SortedDict> = FxHashMap::default();
                let mut codes: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
                for &c in &str_cols {
                    let vals: Vec<&str> = rows
                        .iter()
                        .map(|r| {
                            r.at(c).as_str().ok_or_else(|| {
                                ClydeError::Plan(format!(
                                    "{} column {c} is not a string but its predicate compares one",
                                    join.dimension
                                ))
                            })
                        })
                        .collect::<Result<_>>()?;
                    let d = SortedDict::build(vals.iter().copied());
                    codes.insert(c, d.encode(vals.iter().copied()));
                    dicts.insert(c, d);
                }
                Some((CodePred::compile(&pred, &dicts), codes))
            } else {
                None
            };

        let mut map: FxHashMap<i64, u32> = FxHashMap::default();
        let mut aux_rows: Vec<Row> = Vec::new();
        let mut mem = 0u64;
        for (ri, r) in rows.iter().enumerate() {
            let qualifies = match &dict_path {
                Some((cp, codes)) => cp.eval(ri, codes, r),
                None => pred.eval(r),
            };
            if !qualifies {
                continue;
            }
            let pk = r.at(pk_idx).as_i64().ok_or_else(|| {
                ClydeError::Plan(format!(
                    "{}.{} is not an integer key",
                    join.dimension, join.pk
                ))
            })?;
            let aux: Row = aux_idx.iter().map(|&i| r.at(i).clone()).collect();
            mem += 8 + aux.heap_size() as u64 + 16; // key + value + bucket overhead
            let id = aux_rows.len() as u32;
            if map.insert(pk, id).is_some() {
                return Err(ClydeError::Plan(format!(
                    "duplicate primary key {pk} in dimension {}",
                    join.dimension
                )));
            }
            aux_rows.push(aux);
        }
        // Direct-index table over the qualifying-key range: always for
        // small absolute ranges, otherwise when the range is both narrow
        // and dense. Built from the finished map, so duplicate detection
        // above is unaffected.
        let mut mem_fixed = 0u64;
        let direct = match (map.keys().min(), map.keys().max()) {
            (Some(&lo), Some(&hi))
                if hi - lo < DIRECT_SMALL_RANGE
                    || (hi - lo < DIRECT_MAX_SLOTS
                        && (hi - lo + 1) as usize
                            <= map.len().saturating_mul(DIRECT_MAX_SLOTS_PER_ENTRY)) =>
            {
                let mut ids = vec![NONE_ID; (hi - lo + 1) as usize];
                // clyde-lint: allow(unordered, reason=scatter to distinct pk-indexed slots; order cannot matter)
                for (&pk, &id) in &map {
                    ids[(pk - lo) as usize] = id;
                }
                // Up to the density cap the array scales with entry count;
                // anything past it is range-bound slack (the sparse
                // small-range case) and stays constant across scale factors.
                let array = 4 * ids.len() as u64;
                let scaling_cap =
                    4 * (map.len() as u64).saturating_mul(DIRECT_MAX_SLOTS_PER_ENTRY as u64);
                mem += array.min(scaling_cap);
                mem_fixed += array.saturating_sub(scaling_cap);
                Some((lo, ids))
            }
            _ => None,
        };
        Ok(DimHashTable {
            map,
            direct,
            aux_rows,
            rows_scanned: rows.len() as u64,
            mem_bytes: mem,
            mem_fixed_bytes: mem_fixed,
        })
    }

    /// Probe by foreign key; `None` both for filtered-out and absent keys.
    #[inline]
    pub fn get(&self, fk: i64) -> Option<&Row> {
        self.map.get(&fk).map(|&id| &self.aux_rows[id as usize])
    }

    /// Probe by foreign key for the dense aux id (vectorized kernel path):
    /// a bounds-checked array load when the direct-index table exists, a
    /// hash probe otherwise. Identical hit/miss behavior to
    /// [`DimHashTable::get`] either way.
    #[inline]
    pub fn get_id(&self, fk: i64) -> Option<u32> {
        match &self.direct {
            Some((min, ids)) => {
                let idx = fk.wrapping_sub(*min);
                if (idx as u64) < ids.len() as u64 {
                    let id = ids[idx as usize];
                    (id != NONE_ID).then_some(id)
                } else {
                    None
                }
            }
            None => self.map.get(&fk).copied(),
        }
    }

    /// Aux row for a dense id returned by [`DimHashTable::get_id`].
    #[inline]
    pub fn aux(&self, id: u32) -> &Row {
        &self.aux_rows[id as usize]
    }

    /// Number of slots in the direct-index array, `None` when the table is
    /// hash-probed. Public so the `profile` bench target can report whether
    /// a fixture clears the kernel's prefetch gate.
    pub fn direct_slots(&self) -> Option<usize> {
        self.direct.as_ref().map(|(_, ids)| ids.len())
    }

    /// Raw direct-index parts `(min_key, ids)` for the vectorized kernel's
    /// inner loops, which index the array directly (ids are [`NONE_ID`] for
    /// absent keys). `None` when the table is hash-probed.
    #[inline]
    pub(crate) fn direct_parts(&self) -> Option<(i64, &[u32])> {
        self.direct
            .as_ref()
            .map(|(min, ids)| (*min, ids.as_slice()))
    }

    /// The key → dense-id hash map (the fallback probe side).
    #[inline]
    pub(crate) fn id_map(&self) -> &FxHashMap<i64, u32> {
        &self.map
    }

    /// Size of the dense id space (= qualifying entries).
    pub fn num_ids(&self) -> usize {
        self.aux_rows.len()
    }

    /// Qualifying entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Estimated probe hit rate: the fraction of dimension rows that
    /// survived the build predicate. SSB foreign keys are uniform over the
    /// dimension, so this predicts how often a probe finds a match — the
    /// kernel uses it to pick branchy vs branch-free compaction.
    pub fn hit_rate(&self) -> f64 {
        if self.rows_scanned == 0 {
            0.0
        } else {
            self.len() as f64 / self.rows_scanned as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The set of hash tables for one query, built once per node and shared.
#[derive(Debug)]
pub struct DimTables {
    pub tables: Vec<DimHashTable>,
    /// Total rows scanned across all builds.
    pub build_rows: u64,
    /// Total cardinality-scaling memory charged for the shared copy.
    pub mem_bytes: u64,
    /// Total range-bounded memory (see [`DimHashTable::mem_fixed_bytes`]).
    pub mem_fixed_bytes: u64,
    /// Join indices sorted by ascending build-side hit rate: probing the
    /// most selective dimension first lets early-out kill rows before the
    /// permissive probes ever run (ties broken by join index, so the order
    /// is deterministic). Every probe kernel iterates joins in this order.
    probe_order: Vec<usize>,
}

impl DimTables {
    /// Build all tables for `joins`, fetching dimension rows through
    /// `fetch` (node-local cache, the DFS, or in-memory test data).
    ///
    /// Fetches run sequentially (`fetch` is `FnMut` and usually I/O-bound on
    /// a shared cache), then the CPU-bound builds run on one scoped thread
    /// per dimension — the paper notes build parallelism is bounded by the
    /// number of dimensions (Section 4.2). Accounting is accumulated in
    /// join order, so `build_rows`/`mem_bytes` are identical to a
    /// sequential build.
    pub fn build_all(
        joins: &[DimJoin],
        fetch: impl FnMut(&str) -> Result<Vec<Row>>,
    ) -> Result<DimTables> {
        DimTables::build_all_with(joins, false, fetch)
    }

    /// [`DimTables::build_all`] with the dictionary-predicate strategy
    /// selectable (see [`DimHashTable::build_with`]).
    pub fn build_all_with(
        joins: &[DimJoin],
        dict_predicates: bool,
        mut fetch: impl FnMut(&str) -> Result<Vec<Row>>,
    ) -> Result<DimTables> {
        let fetched: Vec<Vec<Row>> = joins
            .iter()
            .map(|j| fetch(&j.dimension))
            .collect::<Result<_>>()?;

        let built: Vec<Result<DimHashTable>> = if joins.len() <= 1 {
            joins
                .iter()
                .zip(&fetched)
                .map(|(join, rows)| DimHashTable::build_with(join, rows, dict_predicates))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = joins
                    .iter()
                    .zip(&fetched)
                    .map(|(join, rows)| {
                        s.spawn(move || DimHashTable::build_with(join, rows, dict_predicates))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("dimension build thread panicked"))
                    .collect()
            })
        };

        let mut tables = Vec::with_capacity(joins.len());
        let mut build_rows = 0;
        let mut mem_bytes = 0;
        let mut mem_fixed_bytes = 0;
        for t in built {
            let t = t?;
            build_rows += t.rows_scanned;
            mem_bytes += t.mem_bytes;
            mem_fixed_bytes += t.mem_fixed_bytes;
            tables.push(t);
        }
        let mut probe_order: Vec<usize> = (0..tables.len()).collect();
        probe_order.sort_by(|&a, &b| {
            tables[a]
                .hit_rate()
                .total_cmp(&tables[b].hit_rate())
                .then(a.cmp(&b))
        });
        Ok(DimTables {
            tables,
            build_rows,
            mem_bytes,
            mem_fixed_bytes,
            probe_order,
        })
    }

    /// The selectivity-ordered join sequence every probe kernel follows
    /// (see the `probe_order` field).
    pub fn probe_order(&self) -> &[usize] {
        &self.probe_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::{query_by_id, DimPred};

    fn date_join_year(year: i32) -> DimJoin {
        DimJoin {
            dimension: schema::DATE.into(),
            pk: "d_datekey".into(),
            fk: "lo_orderdate".into(),
            predicate: DimPred::I32Eq {
                column: "d_year".into(),
                value: year,
            },
            aux: vec!["d_year".into()],
        }
    }

    #[test]
    fn build_filters_and_keeps_aux() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let t = DimHashTable::build(&date_join_year(1993), &dates).unwrap();
        assert_eq!(t.len(), 365);
        assert_eq!(t.rows_scanned, 2557);
        assert!(t.mem_bytes > 0);
        // A qualifying key probes to its aux row.
        let aux = t.get(19930704).unwrap();
        assert_eq!(aux.at(0).as_i64(), Some(1993));
        // Non-qualifying (1994) and absent keys miss.
        assert!(t.get(19940704).is_none());
        assert!(t.get(12345678).is_none());
    }

    #[test]
    fn group_ids_are_dense_and_consistent() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let t = DimHashTable::build(&date_join_year(1993), &dates).unwrap();
        assert_eq!(t.num_ids(), t.len());
        let mut seen = vec![false; t.num_ids()];
        for r in &dates {
            let pk = r.at(0).as_i64().unwrap();
            match t.get_id(pk) {
                Some(id) => {
                    // Dense, in-range, and aux(id) is exactly what get() sees.
                    assert!((id as usize) < t.num_ids());
                    seen[id as usize] = true;
                    assert_eq!(t.aux(id), t.get(pk).unwrap());
                }
                None => assert!(t.get(pk).is_none()),
            }
        }
        assert!(seen.iter().all(|&s| s), "every id must be reachable");
        // Probes outside the direct-index key range miss cleanly.
        assert!(t.get_id(0).is_none());
        assert!(t.get_id(-1).is_none());
        assert!(t.get_id(i64::MAX).is_none());
        assert!(t.get_id(i64::MIN).is_none());
    }

    #[test]
    fn sparse_key_range_falls_back_to_hash_probing() {
        // A key tens of millions away from the rest pushes the range past
        // DIRECT_MAX_SLOTS; get_id must silently use the hash map and still
        // agree with get() everywhere.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut rows: Vec<Row> = dates.iter().take(50).cloned().collect();
        let far: Row = (0..rows[0].len())
            .map(|i| {
                if i == 0 {
                    clyde_common::Datum::I32(250_000_000)
                } else {
                    rows[0].at(i).clone()
                }
            })
            .collect();
        rows.push(far);
        let mut join = date_join_year(0);
        join.predicate = DimPred::True;
        let t = DimHashTable::build(&join, &rows).unwrap();
        assert_eq!(t.len(), 51);
        for r in &rows {
            let pk = r.at(0).as_i64().unwrap();
            assert_eq!(t.get_id(pk).map(|id| t.aux(id)), t.get(pk));
        }
        assert!(t.get_id(250_000_000).is_some());
        assert!(t.get_id(123).is_none());
    }

    #[test]
    fn date_dimension_gets_a_direct_index_table() {
        // The yyyymmdd key span (~61k slots for 2557 dates) fails the
        // density rule but sits under DIRECT_SMALL_RANGE, so the hottest
        // probe in flights 2-4 must be an array load, not a hash probe.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut join = date_join_year(0);
        join.predicate = DimPred::True;
        let t = DimHashTable::build(&join, &dates).unwrap();
        assert!(
            t.direct_parts().is_some(),
            "date keys must use the direct-index path"
        );
        let (min, ids) = t.direct_parts().unwrap();
        assert!(ids.len() as i64 <= super::DIRECT_SMALL_RANGE);
        for r in &dates {
            let pk = r.at(0).as_i64().unwrap();
            assert_ne!(ids[(pk - min) as usize], super::NONE_ID);
        }
    }

    #[test]
    fn sparse_direct_array_slack_is_accounted_as_fixed_memory() {
        let data = SsbGen::new(0.005, 46).gen_all();
        // Dates, unfiltered: the full 7-year calendar spans ~61k yyyymmdd
        // slots for ~2.5k days, so the array is mostly range-bound slack —
        // which must land in the fixed bucket (the calendar does not grow
        // with scale factor).
        let mut date_join = date_join_year(1993);
        date_join.predicate = DimPred::True;
        let date = DimHashTable::build(&date_join, &data.date).unwrap();
        let cap = 4 * date.len() as u64 * super::DIRECT_MAX_SLOTS_PER_ENTRY as u64;
        let (_, ids) = date.direct_parts().unwrap();
        assert!(4 * ids.len() as u64 > cap, "calendar array must exceed cap");
        assert_eq!(date.mem_fixed_bytes, 4 * ids.len() as u64 - cap);
        // Suppliers, unfiltered: dense 1..N keys, array ∝ cardinality —
        // nothing fixed.
        let join = DimJoin {
            dimension: schema::SUPPLIER.into(),
            pk: "s_suppkey".into(),
            fk: "lo_suppkey".into(),
            predicate: DimPred::True,
            aux: vec!["s_region".into()],
        };
        let supp = DimHashTable::build(&join, &data.supplier).unwrap();
        assert!(supp.direct_parts().is_some());
        assert_eq!(supp.mem_fixed_bytes, 0);
    }

    #[test]
    fn dict_predicate_build_matches_plain_build_for_every_query() {
        // The dictionary-predicate path must construct byte-identical
        // tables: same keys, same dense ids, same aux rows, same memory
        // accounting.
        let data = SsbGen::new(0.002, 7).gen_all();
        for q in clyde_ssb::all_queries() {
            for join in &q.joins {
                let rows = data.dimension(&join.dimension).unwrap();
                let pk_idx = schema::schema_of(&join.dimension)
                    .unwrap()
                    .index_of(&join.pk)
                    .unwrap();
                let plain = DimHashTable::build_with(join, rows, false).unwrap();
                let dict = DimHashTable::build_with(join, rows, true).unwrap();
                assert_eq!(plain.len(), dict.len(), "{} {}", q.id, join.dimension);
                assert_eq!(plain.num_ids(), dict.num_ids());
                assert_eq!(plain.mem_bytes, dict.mem_bytes);
                assert_eq!(plain.mem_fixed_bytes, dict.mem_fixed_bytes);
                assert_eq!(plain.rows_scanned, dict.rows_scanned);
                for r in rows {
                    let pk = r.at(pk_idx).as_i64().unwrap();
                    assert_eq!(
                        plain.get_id(pk),
                        dict.get_id(pk),
                        "{} {} key {pk}",
                        q.id,
                        join.dimension
                    );
                    if let Some(id) = plain.get_id(pk) {
                        assert_eq!(plain.aux(id), dict.aux(id));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_aux_tables_work() {
        // Flight 1 joins carry no auxiliary columns — the probe is a filter.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut join = date_join_year(1993);
        join.aux.clear();
        let t = DimHashTable::build(&join, &dates).unwrap();
        assert_eq!(t.get(19930101).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_pk_is_rejected() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut doubled = dates.clone();
        // Duplicate a row that qualifies under the build predicate (1993);
        // non-qualifying duplicates are filtered before key insertion.
        let qualifying = dates
            .iter()
            .find(|r| r.at(4).as_i64() == Some(1993))
            .unwrap()
            .clone();
        doubled.push(qualifying);
        assert!(DimHashTable::build(&date_join_year(1993), &doubled).is_err());
    }

    #[test]
    fn build_all_for_q21() {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        assert_eq!(tables.tables.len(), 3);
        // Join order is date, part, supplier. Date is unfiltered.
        assert_eq!(tables.tables[0].len(), 2557);
        // Part filtered to category MFGR#12 (~1/25 of parts).
        let parts = data.part.len();
        let kept = tables.tables[1].len();
        assert!(kept > 0 && kept < parts / 10, "kept {kept} of {parts}");
        assert_eq!(
            tables.build_rows,
            (data.part.len() + data.supplier.len() + 2557) as u64
        );
        assert!(tables.mem_bytes > 0);
    }

    #[test]
    fn parallel_build_matches_sequential_accounting() {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q4.1").unwrap(); // four dimensions
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        // Sequential ground truth.
        let mut build_rows = 0u64;
        let mut mem_bytes = 0u64;
        let mut mem_fixed_bytes = 0u64;
        for join in &q.joins {
            let rows = data.dimension(&join.dimension).unwrap();
            let t = DimHashTable::build(join, rows).unwrap();
            build_rows += t.rows_scanned;
            mem_bytes += t.mem_bytes;
            mem_fixed_bytes += t.mem_fixed_bytes;
        }
        assert_eq!(tables.build_rows, build_rows);
        assert_eq!(tables.mem_bytes, mem_bytes);
        assert_eq!(tables.mem_fixed_bytes, mem_fixed_bytes);
    }

    #[test]
    fn build_all_propagates_fetch_errors() {
        let q = query_by_id("Q2.1").unwrap();
        let r = DimTables::build_all(&q.joins, |_| Err(ClydeError::Dfs("cache miss".into())));
        assert!(r.is_err());
    }
}
