//! Shared primitives for the Clydesdale reproduction.
//!
//! This crate holds the vocabulary types every other crate speaks:
//!
//! * [`Datum`] / [`Row`] — dynamically typed values and tuples, used on the
//!   cold paths (dimension tables, shuffle keys, query results). Hot paths
//!   (fact-table scans) use columnar blocks from `clyde-columnar` instead.
//! * [`Schema`] / [`Field`] — table and record descriptions.
//! * [`keycodec`] — an order-preserving ("memcomparable") binary encoding of
//!   rows, used as the MapReduce shuffle key format so that byte-wise sorting
//!   equals logical sorting.
//! * [`hash`] — an Fx-style fast hasher for integer-keyed hash tables
//!   (dimension primary keys), implemented locally to stay dependency-free.
//! * [`varint`] — LEB128 variable-length integers used by the storage formats.
//! * [`obs`] — observability: hierarchical span recording, the global
//!   metrics registry, and job-history reports with Chrome-trace export.
//! * [`lockorder`] — `Mutex`/`RwLock` wrappers that panic on inconsistent
//!   lock-acquisition orders in debug builds; the workspace's audited
//!   concurrency modules use these instead of raw `std::sync` primitives.

pub mod colblock;
pub mod datum;
pub mod error;
pub mod hash;
pub mod keycodec;
pub mod lockorder;
pub mod obs;
pub mod row;
pub mod rowcodec;
pub mod schema;
pub mod varint;

pub use colblock::{ColumnData, RowBlock, RowBlockBuilder};
pub use datum::{Datum, DatumType};
pub use error::{ClydeError, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use obs::Obs;
pub use row::Row;
pub use schema::{Field, Schema};
