//! Error type shared across the workspace.

use std::fmt;

/// Unified error type for the Clydesdale reproduction.
///
/// The variants mirror the failure domains of the original system: the
/// distributed filesystem, the MapReduce framework, storage-format
/// (de)serialization, query planning, and resource exhaustion (the paper's
/// Section 6.4 reports Hive mapjoin plans failing with out-of-memory errors
/// on cluster A — we model that failure mode explicitly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClydeError {
    /// Distributed-filesystem failures: missing files, short reads,
    /// placement constraint violations.
    Dfs(String),
    /// MapReduce framework failures: bad job configuration, scheduling
    /// impossibilities, task panics.
    MapReduce(String),
    /// Storage format corruption or schema mismatch during (de)serialization.
    Format(String),
    /// Query planning errors: unknown columns, unsupported shapes.
    Plan(String),
    /// A task or job exceeded the memory available on a node.
    ///
    /// Carries (required bytes, available bytes).
    OutOfMemory { required: u64, available: u64 },
    /// Invalid user-supplied configuration.
    Config(String),
}

impl fmt::Display for ClydeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClydeError::Dfs(m) => write!(f, "dfs error: {m}"),
            ClydeError::MapReduce(m) => write!(f, "mapreduce error: {m}"),
            ClydeError::Format(m) => write!(f, "format error: {m}"),
            ClydeError::Plan(m) => write!(f, "plan error: {m}"),
            ClydeError::OutOfMemory {
                required,
                available,
            } => write!(
                f,
                "out of memory: task requires {required} bytes but only {available} are available"
            ),
            ClydeError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for ClydeError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ClydeError>;

impl ClydeError {
    /// True if this error is the OOM failure mode (used by the Hive baseline
    /// to report queries that cannot complete on a memory-constrained
    /// cluster, mirroring the paper's cluster-A mapjoin failures).
    pub fn is_oom(&self) -> bool {
        matches!(self, ClydeError::OutOfMemory { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_domain() {
        assert!(ClydeError::Dfs("x".into()).to_string().contains("dfs"));
        assert!(ClydeError::MapReduce("x".into())
            .to_string()
            .contains("mapreduce"));
        assert!(ClydeError::Format("x".into())
            .to_string()
            .contains("format"));
        assert!(ClydeError::Plan("x".into()).to_string().contains("plan"));
        assert!(ClydeError::Config("x".into())
            .to_string()
            .contains("config"));
    }

    #[test]
    fn oom_detection() {
        let e = ClydeError::OutOfMemory {
            required: 100,
            available: 10,
        };
        assert!(e.is_oom());
        assert!(!ClydeError::Dfs("no".into()).is_oom());
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains("10"));
    }
}
