//! The grandfathered-findings baseline and its downward ratchet.
//!
//! `crates/lint/baseline.lint` records, per `(rule, file)`, how many
//! findings existed when the rule landed. The contract:
//!
//! * **Over baseline** — any `(rule, file)` whose current count exceeds its
//!   baseline entry fails, and every finding in that group is reported (the
//!   author sees the whole surface, not just the delta).
//! * **At baseline** — findings are suppressed and counted as `baselined`.
//! * **Under baseline** — progress. Locally this prints a note; in CI
//!   (`--ratchet`) a stale entry *fails* until the baseline is regenerated
//!   with `--write-baseline`, so the recorded debt only ever shrinks and a
//!   regression can never hide inside old slack.
//!
//! The file format is one tab-separated `CODE<TAB>file<TAB>count` per line,
//! sorted, `#` comments allowed — diff-reviewable and merge-friendly.

use crate::Violation;
use std::collections::BTreeMap;

/// Parsed baseline: `(rule code, file) → grandfathered count`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parse the baseline file format. Malformed lines are reported as
    /// errors, not ignored — a silently dropped entry would un-ratchet.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let entry = (|| -> Option<((String, String), usize)> {
                let code = parts.next()?.trim();
                let file = parts.next()?.trim();
                let count: usize = parts.next()?.trim().parse().ok()?;
                if code.is_empty() || file.is_empty() || count == 0 {
                    return None;
                }
                Some(((code.to_string(), file.to_string()), count))
            })();
            match entry {
                Some((key, count)) => {
                    counts.insert(key, count);
                }
                None => {
                    return Err(format!(
                        "baseline line {}: expected `CODE<TAB>file<TAB>count`, got `{line}`",
                        idx + 1
                    ))
                }
            }
        }
        Ok(Baseline { counts })
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

/// Render the baseline that would exactly cover `violations`.
pub fn render(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts
            .entry((
                v.rule.code().to_string(),
                v.file.to_string_lossy().replace('\\', "/"),
            ))
            .or_default() += 1;
    }
    let mut out = String::from(
        "# clyde-lint baseline: grandfathered findings, ratcheted down in CI.\n\
         # Regenerate with `clyde-lint --write-baseline` after burning debt down.\n",
    );
    for ((code, file), count) in &counts {
        out.push_str(&format!("{code}\t{file}\t{count}\n"));
    }
    out
}

/// The outcome of applying a baseline to a scan.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings that must fail the run: new `(rule, file)` keys, or every
    /// finding of a key whose count grew past its baseline entry.
    pub failing: Vec<Violation>,
    /// Findings suppressed by the baseline.
    pub baselined: usize,
    /// `(code, file, baseline, actual)` where actual < baseline — debt was
    /// paid down and the baseline should be regenerated.
    pub stale: Vec<(String, String, usize, usize)>,
}

/// Split a scan's violations into failing / baselined, and detect stale
/// (over-generous) baseline entries.
pub fn apply(baseline: &Baseline, violations: Vec<Violation>) -> Applied {
    let mut grouped: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in violations {
        grouped
            .entry((
                v.rule.code().to_string(),
                v.file.to_string_lossy().replace('\\', "/"),
            ))
            .or_default()
            .push(v);
    }
    let mut out = Applied::default();
    for (key, group) in &grouped {
        let allowed = baseline.counts.get(key).copied().unwrap_or(0);
        if group.len() > allowed {
            out.failing.extend(group.iter().cloned());
        } else {
            out.baselined += group.len();
            if group.len() < allowed {
                out.stale
                    .push((key.0.clone(), key.1.clone(), allowed, group.len()));
            }
        }
    }
    for (key, &allowed) in &baseline.counts {
        if !grouped.contains_key(key) {
            out.stale.push((key.0.clone(), key.1.clone(), allowed, 0));
        }
    }
    out.failing.sort();
    out.stale.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use std::path::PathBuf;

    fn v(file: &str, line: usize, rule: Rule) -> Violation {
        Violation {
            file: PathBuf::from(file),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let vs = vec![
            v("a.rs", 1, Rule::PanicFree),
            v("a.rs", 2, Rule::PanicFree),
            v("b.rs", 3, Rule::FloatOrder),
        ];
        let text = render(&vs);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.total(), 3);
        let applied = apply(&b, vs);
        assert!(applied.failing.is_empty());
        assert_eq!(applied.baselined, 3);
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn growth_fails_the_whole_group() {
        let b = Baseline::parse("D007\ta.rs\t1\n").unwrap();
        let applied = apply(
            &b,
            vec![v("a.rs", 1, Rule::PanicFree), v("a.rs", 2, Rule::PanicFree)],
        );
        assert_eq!(applied.failing.len(), 2);
        assert_eq!(applied.baselined, 0);
    }

    #[test]
    fn shrinkage_is_stale_not_failing() {
        let b = Baseline::parse("D007\ta.rs\t3\nD006\tgone.rs\t2\n").unwrap();
        let applied = apply(&b, vec![v("a.rs", 1, Rule::PanicFree)]);
        assert!(applied.failing.is_empty());
        assert_eq!(applied.baselined, 1);
        assert_eq!(
            applied.stale,
            vec![
                ("D006".into(), "gone.rs".into(), 2, 0),
                ("D007".into(), "a.rs".into(), 3, 1),
            ]
        );
    }

    #[test]
    fn new_keys_fail() {
        let b = Baseline::parse("").unwrap();
        let applied = apply(&b, vec![v("a.rs", 1, Rule::WallTaint)]);
        assert_eq!(applied.failing.len(), 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("D007 a.rs 1\n").is_err()); // spaces, not tabs
        assert!(Baseline::parse("D007\ta.rs\tzero\n").is_err());
        assert!(Baseline::parse("# comment\n\nD007\ta.rs\t1\n").is_ok());
    }
}
