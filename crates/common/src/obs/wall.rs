//! The one place in the workspace allowed to read the wall clock.
//!
//! Everything this codebase *reports* — query results, metric snapshots,
//! Chrome traces, job histories — must be a pure function of inputs and
//! seeds, so `clyde-lint` rule **D002** bans `Instant::now` / `SystemTime`
//! everywhere except this module. Code that legitimately wants wall time
//! (phase attribution in runners, bench harness stopwatches) goes through
//! [`WallTimer`], which keeps every reading funneled past one audited
//! boundary and makes the call sites grep-able.
//!
//! Wall readings are observability-only by convention: they may be *recorded*
//! (task `wall_ns`, `Phase` attribution, bench reports) but must never feed
//! back into simulated time, scheduling decisions, or result content. The
//! shadow dual-run harness (`shadow_check`) enforces that convention
//! dynamically by byte-diffing the deterministic outputs across runs.

use std::time::Instant;

/// A started stopwatch. The only sanctioned way to measure wall time.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Start measuring now.
    pub fn start() -> WallTimer {
        WallTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`WallTimer::start`], saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds since [`WallTimer::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = WallTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
        assert!(t.elapsed_s() >= 0.0);
    }
}
