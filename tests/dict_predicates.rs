//! Property test: dictionary-compiled string predicates are exactly the
//! plain string predicates.
//!
//! For a random dictionary (random column contents, duplicates and all)
//! and a random equality / IN / range / conjunction predicate — whose
//! constants may or may not occur in the column — [`CodePred`] compiled
//! against the column's [`SortedDict`] must accept exactly the rows the
//! scalar string-comparison path ([`CompiledDimPred::eval`]) accepts.

use clyde_columnar::SortedDict;
use clyde_common::{row, Field, FxHashMap, Row, Schema};
use clyde_ssb::queries::{CodePred, DimPred};
use proptest::prelude::*;

/// Strings drawn from a tiny alphabet so equalities, range endpoints and
/// duplicates actually collide with the column contents.
fn arb_s() -> impl Strategy<Value = String> {
    "[ab]{0,3}"
}

fn arb_pred() -> impl Strategy<Value = DimPred> {
    let eq = arb_s().prop_map(|value| DimPred::StrEq {
        column: "s".into(),
        value,
    });
    let in_ = proptest::collection::vec(arb_s(), 0..4).prop_map(|values| DimPred::StrIn {
        column: "s".into(),
        values,
    });
    let between = (arb_s(), arb_s()).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        DimPred::StrBetween {
            column: "s".into(),
            lo,
            hi,
        }
    });
    // Inverted (empty) ranges must also agree — both sides reject all.
    let empty_between = (arb_s(), arb_s()).prop_map(|(a, b)| {
        let (lo, hi) = match a.cmp(&b) {
            std::cmp::Ordering::Greater => (a, b),
            std::cmp::Ordering::Equal => (format!("{a}z"), b),
            std::cmp::Ordering::Less => (b, a),
        };
        DimPred::StrBetween {
            column: "s".into(),
            lo,
            hi,
        }
    });
    prop_oneof![eq, in_, between, empty_between]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn code_pred_matches_string_pred(
        values in proptest::collection::vec(arb_s(), 1..50),
        p1 in arb_pred(),
        p2 in arb_pred(),
        conj in any::<bool>(),
    ) {
        let schema = Schema::new(vec![Field::str("s")]);
        let pred = if conj {
            DimPred::And(vec![p1, p2])
        } else {
            p1
        };
        let compiled = pred.compile(&schema).unwrap();

        let rows: Vec<Row> = values.iter().map(|v| row![v.as_str()]).collect();
        let dict = SortedDict::build(values.iter().map(|v| v.as_str()));
        let codes: FxHashMap<usize, Vec<u32>> =
            [(0usize, dict.encode(values.iter().map(|v| v.as_str())))]
                .into_iter()
                .collect();
        let code_pred = CodePred::compile(&compiled, &[(0usize, dict)].into_iter().collect());

        for (ri, row) in rows.iter().enumerate() {
            prop_assert_eq!(
                code_pred.eval(ri, &codes, row),
                compiled.eval(row),
                "row {} ({:?}) diverges under {:?} -> {:?}",
                ri, values[ri], compiled, code_pred
            );
        }
    }
}
