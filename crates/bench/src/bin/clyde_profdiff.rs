//! Attribute the performance delta between two artifacts to named phases.
//!
//! ```text
//! clyde-profdiff <before> <after> [--gate-pct N]
//! ```
//!
//! `before`/`after` may be two `clyde-profiles` bundles (from the `profile`
//! binary), two Chrome traces (from `q21_breakdown --trace`), or two
//! `bench_probe` JSON artifacts (`BENCH_probe.json` / `probe-now.json`).
//! The kind is auto-detected; both sides must match.
//!
//! With `--gate-pct N`, exits 1 when any query's makespan regressed by more
//! than N percent — the CI bench-gate uses this to turn a bare floor
//! violation into a phase-attributed failure message.

use clyde_bench::profdiff;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: clyde-profdiff <before.json> <after.json> [--gate-pct N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut gate_pct: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate-pct" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                gate_pct = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            p => paths.push(p),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("clyde-profdiff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str, text: &str| -> profdiff::Artifact {
        profdiff::parse_artifact(text).unwrap_or_else(|e| {
            eprintln!("clyde-profdiff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let before_text = read(paths[0]);
    let after_text = read(paths[1]);
    let before = parse(paths[0], &before_text);
    let after = parse(paths[1], &after_text);

    let report = match profdiff::diff(&before, &after) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clyde-profdiff: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());

    if let Some(threshold) = gate_pct {
        let regressed = report.regressions(threshold);
        if !regressed.is_empty() {
            eprintln!(
                "clyde-profdiff: {} query(ies) regressed more than {threshold}%:",
                regressed.len()
            );
            for q in regressed {
                eprintln!("  {}", q.headline());
            }
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
