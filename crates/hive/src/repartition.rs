//! The repartition ("common") join stage.
//!
//! Hive's robust fallback plan (paper Section 6.1): mappers read *both*
//! tables, tag each record with its source, and emit it keyed by the join
//! column; records of both sides with the same key meet at a reducer, which
//! produces the joined rows. The entire fact side crosses the network — the
//! shuffle cost that makes this plan slow (Q2.1 stage 1: 9,720 s).

use crate::union::{split_tag, TAG_LEFT, TAG_RIGHT};
use clyde_common::{ClydeError, Datum, Result, Row, Schema};
use clyde_mapred::runner::Mapper;
use clyde_mapred::shuffle::Reducer;
use clyde_mapred::MapTaskContext;
use clyde_ssb::queries::{fact_preds_eval_row, CompiledDimPred, FactPred};

/// Mapper for the tagged two-source input: fact rows keyed by FK, dimension
/// rows filtered then keyed by PK.
pub struct RepartitionMapper {
    /// FK index in the fact-side (left) schema.
    pub fk_idx: usize,
    /// PK index in the dimension-side (right) scan schema.
    pub pk_idx: usize,
    /// Aux column indices in the dimension-side scan schema.
    pub aux_idx: Vec<usize>,
    /// Dimension predicate, compiled against the dimension scan schema.
    pub dim_pred: CompiledDimPred,
    /// Fact predicates (first stage only) + schema to resolve them.
    pub fact_preds: Vec<FactPred>,
    pub left_schema: Schema,
}

impl Mapper for RepartitionMapper {
    fn map(&self, _key: &Row, value: &Row, ctx: &MapTaskContext<'_>) -> Result<()> {
        let (row, tag) = split_tag(value.clone());
        match tag {
            TAG_LEFT => {
                if !self.fact_preds.is_empty()
                    && !fact_preds_eval_row(&self.fact_preds, &row, &self.left_schema)?
                {
                    return Ok(());
                }
                let fk = row
                    .at(self.fk_idx)
                    .as_i64()
                    .ok_or_else(|| ClydeError::Plan("non-integer foreign key".into()))?;
                // Value = [tag] ++ full row, so the reducer can separate sides.
                let mut v = Row::with_capacity(row.len() + 1);
                v.push(Datum::I32(TAG_LEFT));
                for d in row.iter() {
                    v.push(d.clone());
                }
                ctx.emit(&clyde_common::row![fk], v);
            }
            TAG_RIGHT => {
                if !self.dim_pred.eval(&row) {
                    return Ok(());
                }
                let pk = row
                    .at(self.pk_idx)
                    .as_i64()
                    .ok_or_else(|| ClydeError::Plan("non-integer dimension key".into()))?;
                let mut v = Row::with_capacity(self.aux_idx.len() + 1);
                v.push(Datum::I32(TAG_RIGHT));
                for &i in &self.aux_idx {
                    v.push(row.at(i).clone());
                }
                ctx.emit(&clyde_common::row![pk], v);
            }
            other => {
                return Err(ClydeError::MapReduce(format!(
                    "unexpected source tag {other}"
                )))
            }
        }
        Ok(())
    }
}

/// Reducer: join the two sides of one key. Dimension keys are unique in SSB,
/// but the implementation handles the general M×N case like Hive's.
pub struct RepartitionReducer;

impl Reducer for RepartitionReducer {
    fn reduce(&self, _key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
        let mut dims: Vec<Row> = Vec::new();
        let mut facts: Vec<Row> = Vec::new();
        for v in values {
            let tag = v
                .at(0)
                .as_i32()
                .ok_or_else(|| ClydeError::MapReduce("reducer value missing source tag".into()))?;
            let rest = Row::new(v.values()[1..].to_vec());
            if tag == TAG_RIGHT {
                dims.push(rest);
            } else {
                facts.push(rest);
            }
        }
        for f in &facts {
            for d in &dims {
                out.push(f.concat(d));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;

    #[test]
    fn reducer_joins_sides() {
        let values = vec![
            row![0i32, 10i32, 100i32], // fact (10, 100)
            row![1i32, "ASIA"],        // dim aux
            row![0i32, 20i32, 200i32], // fact (20, 200)
        ];
        let mut out = Vec::new();
        RepartitionReducer
            .reduce(&row![5i64], &values, &mut out)
            .unwrap();
        assert_eq!(
            out,
            vec![row![10i32, 100i32, "ASIA"], row![20i32, 200i32, "ASIA"]]
        );
    }

    #[test]
    fn reducer_with_no_dim_side_emits_nothing() {
        let values = vec![row![0i32, 10i32]];
        let mut out = Vec::new();
        RepartitionReducer
            .reduce(&row![5i64], &values, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn reducer_rejects_untagged_values() {
        let values = vec![row!["oops"]];
        let mut out = Vec::new();
        assert!(RepartitionReducer
            .reduce(&row![5i64], &values, &mut out)
            .is_err());
    }
}
