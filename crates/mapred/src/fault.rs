//! Seeded, deterministic fault plans for the simulated cluster.
//!
//! A [`FaultPlan`] is a pure function of its seed: every decision — which
//! task attempts fail, how slow a node runs, when a datanode dies, which
//! block replicas are corrupted — is derived by hashing the seed with a
//! stream id and an index through a splitmix64 finalizer. Two runs with the
//! same seed inject byte-identical faults, which is what lets the CI
//! fault-matrix assert that recovery is *transparent*: the query output under
//! any survivable plan must equal the fault-free output bit for bit.
//!
//! Plans are attempt-scoped on the task axis (an injected task failure burns
//! one attempt, never the whole budget) and wall-clock-free on the time axis
//! (datanode deaths trigger at a *simulated* time, compared against the cost
//! model's task durations), so fault runs stay as deterministic as clean runs.

/// The named plans exercised by the CI fault-matrix, in matrix order.
pub const NAMES: [&str; 6] = [
    "none",
    "task-fail",
    "slow-node",
    "datanode-death",
    "corruption",
    "combined",
];

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Streams keep the per-task, per-count decisions statistically independent.
const STREAM_TASK_FAIL: u64 = 1;
const STREAM_FAIL_COUNT: u64 = 2;

/// A scheduled datanode death: `node` (wrapped modulo the cluster size)
/// drops off the cluster once simulated time passes `at_sim_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatanodeDeath {
    /// Victim node index; wrapped modulo the number of workers at use time.
    pub node: usize,
    /// Simulated job time (seconds) after which the node is considered dead.
    pub at_sim_s: f64,
}

/// A deterministic description of everything that goes wrong during one job.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every injected fault is a pure function of it.
    pub seed: u64,
    /// Probability that a map task draws a run of injected attempt failures.
    pub task_fail_rate: f64,
    /// `(node, factor)` pairs: the node's simulated task durations are
    /// multiplied by `factor` (straggler injection).
    pub slow_nodes: Vec<(usize, f64)>,
    /// Datanodes that die mid-job at a simulated time.
    pub datanode_deaths: Vec<DatanodeDeath>,
    /// Number of block replicas to flip a byte in before the job starts.
    pub corrupt_replicas: u32,
    /// Launch a backup attempt for any task slower than `factor × median`
    /// task duration. `f64::INFINITY` disables speculative execution.
    pub speculative_slowdown: f64,
}

impl FaultPlan {
    /// A plan that injects nothing but keeps speculation armed at the
    /// default 1.5× slowdown threshold.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            task_fail_rate: 0.0,
            slow_nodes: Vec::new(),
            datanode_deaths: Vec::new(),
            corrupt_replicas: 0,
            speculative_slowdown: 1.5,
        }
    }

    /// The named CI-matrix plans (see [`NAMES`]); `None` for unknown names.
    pub fn named(name: &str, seed: u64) -> Option<FaultPlan> {
        let mut plan = FaultPlan::new(seed);
        match name {
            "none" => {}
            "task-fail" => plan.task_fail_rate = 0.5,
            "slow-node" => plan.slow_nodes = vec![(1, 3.0)],
            "datanode-death" => {
                plan.datanode_deaths = vec![DatanodeDeath {
                    node: 2,
                    at_sim_s: 1.0,
                }]
            }
            // High enough to cover every eligible block of a small test
            // cluster: whatever file the job scans, its preferred replica is
            // rotten and the checksum-fallback path must fire.
            "corruption" => plan.corrupt_replicas = 64,
            "combined" => {
                plan.task_fail_rate = 0.3;
                plan.slow_nodes = vec![(1, 2.5)];
                plan.datanode_deaths = vec![DatanodeDeath {
                    node: 2,
                    at_sim_s: 1.0,
                }];
                plan.corrupt_replicas = 64;
            }
            _ => return None,
        }
        Some(plan)
    }

    /// Keyed hash: independent 64-bit draw per (stream, index).
    fn hash(&self, stream: u64, idx: u64) -> u64 {
        mix(self.seed ^ mix(stream ^ mix(idx)))
    }

    /// How many leading attempts of `task` fail. Always `< max_attempts`, so
    /// an injected failure run is recoverable by construction — the plan
    /// models flaky attempts, not impossible tasks.
    pub fn planned_failures(&self, task: usize, max_attempts: u32) -> u32 {
        if self.task_fail_rate <= 0.0 || max_attempts <= 1 {
            return 0;
        }
        let h = self.hash(STREAM_TASK_FAIL, task as u64);
        // 53 high bits → uniform in [0, 1).
        let fraction = (h >> 11) as f64 / (1u64 << 53) as f64;
        if fraction >= self.task_fail_rate {
            return 0;
        }
        let h2 = self.hash(STREAM_FAIL_COUNT, task as u64);
        1 + (h2 % (max_attempts as u64 - 1)) as u32
    }

    /// Whether attempt `attempt` (0-based) of `task` is injected to fail.
    pub fn fails_attempt(&self, task: usize, attempt: u32, max_attempts: u32) -> bool {
        attempt < self.planned_failures(task, max_attempts)
    }

    /// Straggler multiplier for `node` in a cluster of `workers` nodes
    /// (1.0 when the node is not slowed; max factor on collisions).
    pub fn slow_factor(&self, node: usize, workers: usize) -> f64 {
        if workers == 0 {
            return 1.0;
        }
        self.slow_nodes
            .iter()
            .filter(|(n, _)| n % workers == node % workers)
            .map(|&(_, f)| f)
            .fold(1.0, f64::max)
    }

    /// Simulated time at which `node` dies, if the plan kills it.
    pub fn death_time(&self, node: usize, workers: usize) -> Option<f64> {
        if workers == 0 {
            return None;
        }
        self.datanode_deaths
            .iter()
            .filter(|d| d.node % workers == node % workers)
            .map(|d| d.at_sim_s)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_plan_exists_and_unknown_names_do_not() {
        for name in NAMES {
            assert!(FaultPlan::named(name, 46).is_some(), "missing plan {name}");
        }
        assert!(FaultPlan::named("chaos-monkey", 46).is_none());
    }

    #[test]
    fn planned_failures_are_deterministic_and_recoverable() {
        let plan = FaultPlan::named("task-fail", 46).unwrap();
        let again = FaultPlan::named("task-fail", 46).unwrap();
        let mut any_failed = false;
        for task in 0..64 {
            let n = plan.planned_failures(task, 4);
            assert_eq!(n, again.planned_failures(task, 4));
            assert!(n < 4, "failure run must leave one surviving attempt");
            any_failed |= n > 0;
        }
        assert!(
            any_failed,
            "rate 0.5 over 64 tasks should hit at least once"
        );
    }

    #[test]
    fn different_seeds_draw_different_failures() {
        let a = FaultPlan::named("task-fail", 1).unwrap();
        let b = FaultPlan::named("task-fail", 2).unwrap();
        let pattern =
            |p: &FaultPlan| -> Vec<u32> { (0..64).map(|t| p.planned_failures(t, 4)).collect() };
        assert_ne!(pattern(&a), pattern(&b));
    }

    #[test]
    fn fails_attempt_is_a_prefix_of_the_attempt_sequence() {
        let plan = FaultPlan::named("task-fail", 46).unwrap();
        for task in 0..32 {
            let n = plan.planned_failures(task, 4);
            for attempt in 0..4 {
                assert_eq!(plan.fails_attempt(task, attempt, 4), attempt < n);
            }
        }
    }

    #[test]
    fn slow_factor_wraps_node_indices() {
        let plan = FaultPlan::named("slow-node", 46).unwrap();
        assert_eq!(plan.slow_factor(1, 4), 3.0);
        assert_eq!(plan.slow_factor(0, 4), 1.0);
        // Node 1 wraps onto node 0 in a 1-node cluster.
        assert_eq!(plan.slow_factor(0, 1), 3.0);
        assert_eq!(plan.slow_factor(7, 0), 1.0);
    }

    #[test]
    fn death_time_picks_the_earliest_matching_death() {
        let mut plan = FaultPlan::new(46);
        plan.datanode_deaths = vec![
            DatanodeDeath {
                node: 2,
                at_sim_s: 5.0,
            },
            DatanodeDeath {
                node: 6,
                at_sim_s: 2.0,
            },
        ];
        assert_eq!(plan.death_time(2, 4), Some(2.0));
        assert_eq!(plan.death_time(1, 4), None);
    }
}
