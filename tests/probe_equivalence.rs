//! Property test: the three probe kernels are interchangeable.
//!
//! For any SSB query, any generator seed, and any block-size partitioning
//! of the fact table, the vectorized kernel ([`probe_block_vec`]), the
//! scalar block kernel ([`probe_block`]) and the row-at-a-time fallback
//! ([`probe_row`]) must produce identical group aggregates, identical
//! [`ProbeStats`] (rows, probes **and survivors** — early-out must shrink
//! the selection vector exactly as the scalar loop skips), and all must
//! agree with the trusted single-process reference executor.

use clyde_common::{FxHashMap, Row, RowBlock, RowBlockBuilder, Schema};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::{all_queries, reference_answer, schema};
use clydesdale::hashtable::DimTables;
use clydesdale::probe::{
    probe_block, probe_block_vec, probe_row, GroupAcc, GroupLayout, ProbePlan, ProbeStats, SelBuf,
};
use proptest::prelude::*;

/// Chunk the projected fact rows into blocks of `block_rows`.
fn blocks_of(
    rows: &[Row],
    scan_schema: &Schema,
    cols: &[usize],
    block_rows: usize,
) -> Vec<RowBlock> {
    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    rows.chunks(block_rows.max(1))
        .map(|chunk| {
            let mut b = RowBlockBuilder::new(&dtypes);
            for r in chunk {
                b.push_row(&r.project(cols)).unwrap();
            }
            b.finish()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Vectorized == scalar block == row-at-a-time == reference, for every
    /// query shape, over arbitrary seeds and block boundaries.
    #[test]
    fn kernels_agree_with_each_other_and_the_reference(
        qi in 0usize..13,
        seed in 0u64..1_000,
        block_rows in 1usize..3_000,
    ) {
        let data = SsbGen::new(0.002, seed).gen_all();
        let q = &all_queries()[qi];
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(q, &scan_schema).unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        let blocks = blocks_of(&data.lineorder, &scan_schema, &cols, block_rows);

        // Scalar block kernel.
        let mut acc_scalar = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        for b in &blocks {
            probe_block(b, &plan, &tables, &mut acc_scalar, &mut st_scalar).unwrap();
        }

        // Row-at-a-time kernel.
        let mut acc_row = FxHashMap::default();
        let mut st_row = ProbeStats::default();
        for lo in &data.lineorder {
            probe_row(&lo.project(&cols), &plan, &tables, &mut acc_row, &mut st_row).unwrap();
        }

        // Vectorized kernel: packed keys, rematerialized (and folded —
        // distinct dimension rows can share aux values) at emit time.
        let layout = GroupLayout::new(&plan, &tables).expect("packed key fits for SSB");
        let mut acc = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut st_vec = ProbeStats::default();
        for b in &blocks {
            probe_block_vec(b, &plan, &tables, &layout, &mut acc, &mut buf, &mut st_vec).unwrap();
        }
        let mut acc_vec: FxHashMap<Row, i64> = FxHashMap::default();
        for (k, v) in acc.entries() {
            let key = layout.rematerialize(k, &tables);
            let slot = acc_vec.entry(key).or_insert_with(|| plan.aggregate.identity());
            *slot = plan.aggregate.fold(*slot, v);
        }

        // All three kernels: same aggregates, same counters.
        prop_assert_eq!(&acc_vec, &acc_scalar, "{}: vectorized != scalar", q.id);
        prop_assert_eq!(&acc_row, &acc_scalar, "{}: row != scalar", q.id);
        prop_assert_eq!(st_vec.survivors, st_scalar.survivors,
            "{}: survivor counts diverge", q.id);
        prop_assert_eq!(st_vec, st_scalar, "{}: vectorized stats != scalar", q.id);
        prop_assert_eq!(st_row, st_scalar, "{}: row stats != scalar", q.id);
        prop_assert_eq!(st_scalar.rows, data.lineorder.len() as u64);

        // And the reference executor blesses the shared answer.
        let mut rows: Vec<Row> = acc_scalar
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = reference_answer(&data, q).unwrap();
        prop_assert_eq!(rows, expect, "{}: kernels disagree with reference", q.id);
    }
}
