//! D001–D005: the line/token rules, unchanged in semantics from the
//! original scanner but fed by the lexer's masked rendering.

use super::FileCtx;
use crate::{
    rel_allowed, Rule, Violation, D002_ALLOWED, D004_AUDITED, D005_ALLOWED, D005_CACHE_METRICS,
    D005_NAMESPACES, D005_SCHEDULER_METRICS,
};

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `needle` occur in `hay` bounded by non-identifier characters?
pub(crate) fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_char(hay[..abs].chars().next_back().unwrap());
        let after = hay[abs + needle.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Collect identifiers bound to hash containers in this file: `name:
/// FxHashMap<...>` declarations (lets, struct fields, parameters) and
/// `let name = FxHashMap::default()`-style initializations.
fn hash_container_names(masked: &[String]) -> Vec<String> {
    const TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
    let mut names: Vec<String> = Vec::new();
    for line in masked {
        for ty in TYPES {
            let mut start = 0;
            while let Some(pos) = line[start..].find(ty) {
                let abs = start + pos;
                start = abs + ty.len();
                let before = &line[..abs];
                if before
                    .chars()
                    .next_back()
                    .is_some_and(|c| is_ident_char(c) && c != ':')
                {
                    continue; // part of a longer identifier
                }
                let name = if line[abs + ty.len()..].trim_start().starts_with("::") {
                    // `let [mut] name = FxHashMap::default()`
                    before
                        .rfind('=')
                        .map(|eq| before[..eq].trim_end())
                        .map(|d| {
                            d.rsplit(|c: char| !is_ident_char(c))
                                .next()
                                .unwrap_or("")
                                .to_string()
                        })
                } else {
                    // `name: [wrappers<]FxHashMap<...>` — walk back past `:`
                    // and any generic wrappers (`Mutex<`, `Arc<`, `&`, …).
                    before.rfind(':').map(|colon| {
                        let mut d = before[..colon].trim_end();
                        if d.ends_with(':') {
                            d = d[..d.len() - 1].trim_end(); // `::` path, not a decl
                            let _ = d;
                            return String::new();
                        }
                        d.rsplit(|c: char| !is_ident_char(c))
                            .next()
                            .unwrap_or("")
                            .to_string()
                    })
                };
                if let Some(n) = name {
                    if !n.is_empty()
                        && !n.chars().next().unwrap().is_numeric()
                        && n != "mut"
                        && !names.contains(&n)
                    {
                        names.push(n);
                    }
                }
            }
        }
    }
    names
}

/// Suffixes after a container name that constitute iteration.
const ITER_SUFFIXES: [&str; 6] = [
    ".iter()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// Same-line terminal reductions that are insensitive to iteration order.
const ORDER_FREE: [&str; 8] = [
    ".sum()",
    ".sum::<",
    ".count()",
    ".min()",
    ".max()",
    ".min_by",
    ".max_by",
    ".is_empty()",
];

/// Sort/ordered-collect patterns that discharge D001 when they appear on the
/// flagged line or within the next `D001_WINDOW` lines.
const SORTED_NEARBY: [&str; 7] = [
    ".sort()",
    ".sort_by",
    ".sort_unstable",
    ".sorted()",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

const D001_WINDOW: usize = 4;

pub(crate) fn d001_scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    let names = hash_container_names(ctx.masked);
    if names.is_empty() {
        return;
    }
    let lines = ctx.masked;
    for (idx, line) in lines.iter().enumerate() {
        let mut hit: Option<String> = None;
        for name in &names {
            let mut start = 0;
            while let Some(pos) = line[start..].find(name.as_str()) {
                let abs = start + pos;
                start = abs + name.len();
                let before_ok =
                    abs == 0 || !is_ident_char(line[..abs].chars().next_back().unwrap());
                if !before_ok {
                    continue;
                }
                let after = &line[abs + name.len()..];
                if ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                    hit = Some(format!("{name}{}", iter_suffix(after)));
                    break;
                }
                // `for x in [&[mut ]]name [{...]` — direct IntoIterator use.
                let head = &line[..abs];
                let head_t = head.trim_end();
                if (head_t.ends_with(" in") || head_t.ends_with("in &") || head_t.ends_with("&mut"))
                    && line.contains("for ")
                    && (after.trim_start().starts_with('{') || after.trim_end().is_empty())
                {
                    hit = Some(format!("for _ in {name}"));
                    break;
                }
            }
            if hit.is_some() {
                break;
            }
        }
        let Some(site) = hit else { continue };
        // Discharged by an order-insensitive reduction on the same line?
        if ORDER_FREE.iter().any(|p| line.contains(p)) {
            continue;
        }
        // Discharged by sorting/ordered-collection nearby?
        let window_end = (idx + 1 + D001_WINDOW).min(lines.len());
        if lines[idx..window_end]
            .iter()
            .any(|l| SORTED_NEARBY.iter().any(|p| l.contains(p)))
        {
            continue;
        }
        violations.push(Violation {
            file: ctx.file.to_path_buf(),
            line: idx + 1,
            rule: Rule::Unordered,
            message: format!(
                "unordered hash-container iteration `{site}` may leak nondeterministic \
                 order into output — sort nearby, collect into a BTreeMap/BTreeSet, or \
                 pragma with a reason the order cannot escape"
            ),
        });
    }
}

fn iter_suffix(after: &str) -> &'static str {
    for s in ITER_SUFFIXES {
        if after.starts_with(s) {
            return s;
        }
    }
    ""
}

pub(crate) fn d002_scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    if rel_allowed(ctx.file, D002_ALLOWED) {
        return;
    }
    const PATTERNS: [&str; 4] = [
        "Instant::now",
        "SystemTime",
        "std::time::Instant",
        "time::Instant",
    ];
    for (idx, line) in ctx.masked.iter().enumerate() {
        if let Some(p) = PATTERNS.iter().find(|p| line.contains(*p)) {
            violations.push(Violation {
                file: ctx.file.to_path_buf(),
                line: idx + 1,
                rule: Rule::WallClock,
                message: format!(
                    "`{p}` outside the wall-phase module — measure through \
                     clyde_common::obs::WallTimer (crates/common/src/obs/wall.rs) instead"
                ),
            });
        }
    }
}

pub(crate) fn d003_scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    const PATTERNS: [&str; 6] = [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
        "rand::random",
    ];
    for (idx, line) in ctx.masked.iter().enumerate() {
        if let Some(p) = PATTERNS.iter().find(|p| contains_token(line, p)) {
            violations.push(Violation {
                file: ctx.file.to_path_buf(),
                line: idx + 1,
                rule: Rule::Entropy,
                message: format!(
                    "entropy-seeded randomness `{p}` — all RNG must flow from explicit \
                     seeds (splitmix64 plumbing in crates/mapred/src/fault.rs, SsbGen)"
                ),
            });
        }
    }
}

pub(crate) fn d004_scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    if rel_allowed(ctx.file, D004_AUDITED) {
        return;
    }
    const PATTERNS: [&str; 5] = [
        "thread::spawn",
        "thread::scope",
        "Mutex",
        "RwLock",
        "Condvar",
    ];
    for (idx, line) in ctx.masked.iter().enumerate() {
        if let Some(p) = PATTERNS
            .iter()
            .find(|p| line.contains(*p) && (p.contains("::") || contains_token(line, p)))
        {
            violations.push(Violation {
                file: ctx.file.to_path_buf(),
                line: idx + 1,
                rule: Rule::Concurrency,
                message: format!(
                    "concurrency primitive `{p}` outside the audited modules — shared \
                     mutable state belongs in the runners/engine/DFS state holders \
                     (see clyde_lint::D004_AUDITED); task code paths stay lock-free"
                ),
            });
        }
    }
}

/// The metric emitters D005 covers.
const D005_EMITTERS: [&str; 3] = ["counter_add", "gauge_set", "histogram_record"];

/// How many lines below an emitter call D005 searches for the name literal
/// (multi-line call sites put the name on the following line).
const D005_WINDOW: usize = 2;

/// Extract the first double-quoted literal from `raw`, starting no earlier
/// than byte `from`.
fn first_str_literal(raw: &str, from: usize) -> Option<&str> {
    let tail = raw.get(from..)?;
    let open = tail.find('"')?;
    let body = &tail[open + 1..];
    let close = body.find('"')?;
    Some(&body[..close])
}

pub(crate) fn d005_scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    if rel_allowed(ctx.file, D005_ALLOWED) {
        return;
    }
    let raw_lines: Vec<&str> = ctx.raw.lines().collect();
    for (idx, line) in ctx.masked.iter().enumerate() {
        let Some(emitter) = D005_EMITTERS.iter().find(|e| contains_token(line, e)) else {
            continue;
        };
        // A definition or forwarding signature, not a call site.
        if contains_token(line, "fn") {
            continue;
        }
        // The name literal: same line after the emitter token, or (for
        // wrapped calls) the first literal on one of the next few lines.
        let call_pos = line.find(emitter).unwrap_or(0);
        let mut name: Option<&str> = raw_lines
            .get(idx)
            .and_then(|r| first_str_literal(r, call_pos.min(r.len())));
        if name.is_none() {
            for look in raw_lines.iter().skip(idx + 1).take(D005_WINDOW) {
                name = first_str_literal(look, 0);
                if name.is_some() {
                    break;
                }
            }
        }
        match name {
            None => violations.push(Violation {
                file: ctx.file.to_path_buf(),
                line: idx + 1,
                rule: Rule::MetricName,
                message: format!(
                    "`{emitter}` call without a literal metric name — names must be \
                     greppable string literals in a registered namespace \
                     (mapred.* | dfs.* | scheduler.* | probe.* | cache.*)"
                ),
            }),
            Some(n) if !D005_NAMESPACES.iter().any(|p| n.starts_with(p)) => {
                violations.push(Violation {
                    file: ctx.file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MetricName,
                    message: format!(
                        "metric name `{n}` outside the registered namespaces \
                         (mapred.* | dfs.* | scheduler.* | probe.* | cache.*) — register \
                         the namespace in clyde_lint::D005_NAMESPACES or fix the name"
                    ),
                });
            }
            Some(n) if n.starts_with("scheduler.") && !D005_SCHEDULER_METRICS.contains(&n) => {
                violations.push(Violation {
                    file: ctx.file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MetricName,
                    message: format!(
                        "unregistered scheduler series `{n}` — the scheduler.* namespace \
                         is closed (the CI workload-gate reads it by name); add the \
                         series to clyde_lint::D005_SCHEDULER_METRICS first"
                    ),
                });
            }
            Some(n) if n.starts_with("cache.") && !D005_CACHE_METRICS.contains(&n) => {
                violations.push(Violation {
                    file: ctx.file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MetricName,
                    message: format!(
                        "unregistered cache series `{n}` — the cache.* namespace is \
                         closed (the CI restore-gate and shadow_check --restore read it \
                         by name); add the series to clyde_lint::D005_CACHE_METRICS first"
                    ),
                });
            }
            Some(_) => {}
        }
    }
}
