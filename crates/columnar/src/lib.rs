//! Storage formats for structured data on the simulated DFS.
//!
//! Four formats, mirroring the storage landscape of the paper:
//!
//! * **CIF** ([`cif`]) — the column-oriented InputFormat of Section 4.1:
//!   each column of each row group is a separate DFS file, placed with the
//!   co-locating policy so every row group has a node that can scan all its
//!   columns locally. Queries name the columns they need and pay I/O only
//!   for those.
//! * **MultiCIF / B-CIF** ([`input`]) — the multi-split packing of
//!   Section 5.1 (so each thread of a multi-threaded map task gets its own
//!   constituent split to deserialize) and the block-iteration reader of
//!   Section 5.3 (arrays of rows instead of one `next()` per record).
//! * **RCFile** ([`rcfile`]) — the PAX-style hybrid layout Hive used
//!   (Section 6.2): one file, row groups inside, columns laid out
//!   contiguously within each group so unneeded columns can be skipped.
//! * **Delimited text** ([`text`]) — the `dbgen`-style interchange format.
//!
//! Column bytes are encoded with the schemes in [`encoding`] (plain,
//! dictionary, run-length) and carry checksums.

pub mod cif;
pub mod dict;
pub mod encoding;
pub mod input;
pub mod maintain;
pub mod rcfile;
pub mod text;

pub use cif::{CifReader, CifTableMeta, CifWriter};
pub use dict::SortedDict;
pub use encoding::{peek_zone_map, Encoding, ZONE_HEADER_MAX};
pub use input::{CifInputFormat, MultiSplit, ScanMode, ZonePred};
pub use maintain::{roll_out, CifAppender};
pub use rcfile::{RcFileInputFormat, RcFileReader, RcFileWriter};
pub use text::{TextInputFormat, TextWriter};
