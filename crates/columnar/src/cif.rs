//! CIF — the column-oriented table layout (paper Section 4.1).
//!
//! A CIF table at DFS path `base` consists of:
//!
//! * `base/_meta` — schema, rows per group, per-group row counts;
//! * `base/rg{g}/{column}.col` — one encoded column chunk per column per row
//!   group, every file of a row group created with placement group
//!   `base/rg{g}` so the co-locating policy puts them on one node set.
//!
//! A scan names the columns it needs and reads only those files — the I/O
//! saving measured by the paper's columnar-off ablation (3.4x average,
//! Section 6.5).

use crate::encoding::{choose_encoding, decode_column, encode_column};
use clyde_common::{rowcodec, Field};
use clyde_common::{varint, ClydeError, Result, Row, RowBlock, RowBlockBuilder, Schema};
use clyde_dfs::{Dfs, NodeId};
use clyde_mapred::TaskIo;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"CIF1";

/// Metadata of a CIF table.
///
/// Row groups are addressed by *logical* index `0..num_groups()`; the
/// physical directory name is `first_group + logical`. Roll-out advances
/// `first_group` (dropping the oldest groups) and roll-in appends new ones,
/// so group directories are immutable once written — the property that
/// makes fact-table maintenance "straightforward" in the paper's contrast
/// with Llama's sorted projections (Section 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CifTableMeta {
    pub base: String,
    pub schema: Schema,
    pub rows_per_group: u64,
    /// Physical index of the first (oldest) live row group.
    pub first_group: u64,
    /// Row count of each live group, oldest first (all equal to
    /// `rows_per_group` except possibly trailing partial groups from
    /// roll-in batch boundaries).
    pub group_rows: Vec<u64>,
}

impl CifTableMeta {
    pub fn num_groups(&self) -> usize {
        self.group_rows.len()
    }

    pub fn total_rows(&self) -> u64 {
        self.group_rows.iter().sum()
    }

    /// Physical directory index of a logical group.
    pub fn physical_group(&self, group: usize) -> u64 {
        self.first_group + group as u64
    }

    /// DFS path of one column chunk (logical group index).
    pub fn column_path(&self, group: usize, column: &str) -> String {
        let phys = self.physical_group(group);
        format!("{}/rg{phys:06}/{column}.col", self.base)
    }

    /// Placement group of a row group's files (logical group index).
    pub fn placement_group(&self, group: usize) -> String {
        let phys = self.physical_group(group);
        format!("{}/rg{phys:06}", self.base)
    }

    fn meta_path(base: &str) -> String {
        format!("{base}/_meta")
    }

    /// Serialized metadata bytes (used by maintenance operations that
    /// replace the `_meta` file).
    pub fn encode_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let types: Vec<_> = self.schema.fields().iter().map(|f| f.dtype).collect();
        rowcodec::write_types(&mut out, &types);
        varint::write_u64(&mut out, self.schema.len() as u64);
        for f in self.schema.fields() {
            varint::write_u64(&mut out, f.name.len() as u64);
            out.extend_from_slice(f.name.as_bytes());
        }
        varint::write_u64(&mut out, self.rows_per_group);
        varint::write_u64(&mut out, self.first_group);
        varint::write_u64(&mut out, self.group_rows.len() as u64);
        for &r in &self.group_rows {
            varint::write_u64(&mut out, r);
        }
        out
    }

    fn decode(base: &str, data: &[u8]) -> Result<CifTableMeta> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(ClydeError::Format("not a CIF meta file".into()));
        }
        let mut pos = 4usize;
        let types = rowcodec::read_types(data, &mut pos)?;
        let n = varint::read_u64(data, &mut pos)? as usize;
        if n != types.len() {
            return Err(ClydeError::Format(
                "CIF meta name/type count mismatch".into(),
            ));
        }
        let mut fields = Vec::with_capacity(n);
        for t in types {
            let len = varint::read_u64(data, &mut pos)? as usize;
            let end = pos + len;
            let bytes = data
                .get(pos..end)
                .ok_or_else(|| ClydeError::Format("truncated CIF meta".into()))?;
            pos = end;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| ClydeError::Format("invalid utf-8 in CIF meta".into()))?;
            fields.push(Field::new(name, t));
        }
        let rows_per_group = varint::read_u64(data, &mut pos)?;
        let first_group = varint::read_u64(data, &mut pos)?;
        let g = varint::read_u64(data, &mut pos)? as usize;
        let mut group_rows = Vec::with_capacity(g);
        for _ in 0..g {
            group_rows.push(varint::read_u64(data, &mut pos)?);
        }
        Ok(CifTableMeta {
            base: base.to_string(),
            schema: Schema::new(fields),
            rows_per_group,
            first_group,
            group_rows,
        })
    }
}

/// Streaming writer for a CIF table.
pub struct CifWriter {
    dfs: Arc<Dfs>,
    meta: CifTableMeta,
    builder: RowBlockBuilder,
    writer_node: Option<NodeId>,
}

impl CifWriter {
    pub fn new(
        dfs: Arc<Dfs>,
        base: impl Into<String>,
        schema: Schema,
        rows_per_group: u64,
    ) -> Result<CifWriter> {
        if rows_per_group == 0 {
            return Err(ClydeError::Config("rows_per_group must be positive".into()));
        }
        let dtypes: Vec<_> = schema.fields().iter().map(|f| f.dtype).collect();
        Ok(CifWriter {
            dfs,
            meta: CifTableMeta {
                base: base.into(),
                schema,
                rows_per_group,
                first_group: 0,
                group_rows: Vec::new(),
            },
            builder: RowBlockBuilder::new(&dtypes),
            writer_node: None,
        })
    }

    pub fn append(&mut self, row: &Row) -> Result<()> {
        self.builder.push_row(row)?;
        if self.builder.len() as u64 >= self.meta.rows_per_group {
            self.flush_group()?;
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let dtypes: Vec<_> = self.meta.schema.fields().iter().map(|f| f.dtype).collect();
        let block = std::mem::replace(&mut self.builder, RowBlockBuilder::new(&dtypes)).finish();
        let group = self.meta.group_rows.len();
        let placement = self.meta.placement_group(group);
        for (i, col) in block.columns().iter().enumerate() {
            let name = &self.meta.schema.field(i).name;
            let encoded = encode_column(col, choose_encoding(col))?;
            let path = self.meta.column_path(group, name);
            let mut w = self
                .dfs
                .create(path, Some(placement.clone()), self.writer_node)?;
            w.write_all(&encoded);
            w.close()?;
        }
        self.meta.group_rows.push(block.len() as u64);
        Ok(())
    }

    /// Flush the tail group and write the meta file.
    pub fn close(mut self) -> Result<CifTableMeta> {
        self.flush_group()?;
        self.dfs.write_file(
            CifTableMeta::meta_path(&self.meta.base),
            None,
            &self.meta.encode(),
        )?;
        Ok(self.meta)
    }
}

/// Reader for a CIF table.
#[derive(Debug, Clone)]
pub struct CifReader {
    meta: CifTableMeta,
}

impl CifReader {
    pub fn open(dfs: &Dfs, base: &str) -> Result<CifReader> {
        let data = dfs.read_file(&CifTableMeta::meta_path(base), None)?;
        Ok(CifReader {
            meta: CifTableMeta::decode(base, &data)?,
        })
    }

    pub fn meta(&self) -> &CifTableMeta {
        &self.meta
    }

    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// Read the selected columns of one row group. Only the named columns'
    /// files are touched — the heart of CIF's I/O saving.
    pub fn read_group(&self, io: &TaskIo, group: usize, col_indices: &[usize]) -> Result<RowBlock> {
        let expected = *self
            .meta
            .group_rows
            .get(group)
            .ok_or_else(|| ClydeError::Format(format!("row group {group} out of range")))?;
        let mut columns = Vec::with_capacity(col_indices.len());
        for &ci in col_indices {
            let name = &self.meta.schema.field(ci).name;
            let data = io.read_file(&self.meta.column_path(group, name))?;
            let col = decode_column(&data)?;
            if col.len() as u64 != expected {
                return Err(ClydeError::Format(format!(
                    "column {name} of group {group} has {} rows, expected {expected}",
                    col.len()
                )));
            }
            columns.push(col);
        }
        RowBlock::new(columns)
    }

    /// All columns of one group (convenience; used by the columnar-off
    /// ablation which deliberately reads everything).
    pub fn read_group_all(&self, io: &TaskIo, group: usize) -> Result<RowBlock> {
        let all: Vec<usize> = (0..self.meta.schema.len()).collect();
        self.read_group(io, group, &all)
    }

    /// Nodes that hold every selected column file of `group` — candidates
    /// for a fully local scan.
    pub fn group_hosts(&self, dfs: &Dfs, group: usize) -> Result<Vec<NodeId>> {
        let paths: Vec<String> = self
            .meta
            .schema
            .fields()
            .iter()
            .map(|f| self.meta.column_path(group, &f.name))
            .collect();
        dfs.common_hosts(&paths)
    }

    /// Total stored bytes of the selected columns across all groups.
    pub fn selected_bytes(&self, dfs: &Dfs, col_indices: &[usize]) -> Result<u64> {
        let mut total = 0u64;
        for g in 0..self.meta.num_groups() {
            for &ci in col_indices {
                let name = &self.meta.schema.field(ci).name;
                total += dfs.file_len(&self.meta.column_path(g, name))?;
            }
        }
        Ok(total)
    }

    /// Bytes of the selected columns in one group.
    pub fn group_bytes(&self, dfs: &Dfs, group: usize, col_indices: &[usize]) -> Result<u64> {
        let mut total = 0u64;
        for &ci in col_indices {
            let name = &self.meta.schema.field(ci).name;
            total += dfs.file_len(&self.meta.column_path(group, name))?;
        }
        Ok(total)
    }

    /// Materialize the entire table as rows (test/reference helper).
    pub fn read_all_rows(&self, dfs: &Arc<Dfs>) -> Result<Vec<Row>> {
        let io = TaskIo::client(Arc::clone(dfs));
        let mut rows = Vec::with_capacity(self.meta.total_rows() as usize);
        for g in 0..self.meta.num_groups() {
            let block = self.read_group_all(&io, g)?;
            for i in 0..block.len() {
                rows.push(block.row(i));
            }
        }
        Ok(rows)
    }

    /// Find a column's index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.meta.schema.index_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::{row, Datum, DatumType};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::i32("k"),
            Field::str("region"),
            Field::i64("revenue"),
        ])
    }

    fn write_table(dfs: &Arc<Dfs>, base: &str, n: usize, rpg: u64) -> CifTableMeta {
        let mut w = CifWriter::new(Arc::clone(dfs), base, schema(), rpg).unwrap();
        for i in 0..n {
            let region = if i % 2 == 0 { "ASIA" } else { "EUROPE" };
            w.append(&row![i as i32, region, (i as i64) * 10]).unwrap();
        }
        w.close().unwrap()
    }

    #[test]
    fn roundtrip_with_partial_tail_group() {
        let dfs = Dfs::for_tests(4);
        let meta = write_table(&dfs, "/t/fact", 25, 10);
        assert_eq!(meta.group_rows, vec![10, 10, 5]);
        let reader = CifReader::open(&dfs, "/t/fact").unwrap();
        assert_eq!(reader.meta(), &meta);
        let rows = reader.read_all_rows(&dfs).unwrap();
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[3], row![3i32, "EUROPE", 30i64]);
        assert_eq!(rows[24], row![24i32, "ASIA", 240i64]);
    }

    #[test]
    fn empty_table_roundtrips() {
        let dfs = Dfs::for_tests(2);
        let w = CifWriter::new(Arc::clone(&dfs), "/t/empty", schema(), 8).unwrap();
        let meta = w.close().unwrap();
        assert_eq!(meta.num_groups(), 0);
        let reader = CifReader::open(&dfs, "/t/empty").unwrap();
        assert!(reader.read_all_rows(&dfs).unwrap().is_empty());
    }

    #[test]
    fn projection_reads_only_selected_columns() {
        let dfs = Dfs::for_tests(4);
        write_table(&dfs, "/t/fact", 100, 50);
        let reader = CifReader::open(&dfs, "/t/fact").unwrap();
        let io = TaskIo::client(Arc::clone(&dfs));
        let block = reader.read_group(&io, 0, &[0, 2]).unwrap();
        assert_eq!(block.num_columns(), 2);
        assert_eq!(block.column(0).as_i32()[5], 5);
        assert_eq!(block.column(1).as_i64()[5], 50);
        // Byte accounting: two columns cost less than all three.
        let partial = reader.selected_bytes(&dfs, &[0, 2]).unwrap();
        let full = reader.selected_bytes(&dfs, &[0, 1, 2]).unwrap();
        assert!(partial < full);
        assert_eq!(
            io.stats.total(),
            reader.group_bytes(&dfs, 0, &[0, 2]).unwrap()
        );
    }

    #[test]
    fn row_groups_are_colocated() {
        let dfs = Dfs::for_tests(6); // co-locating policy, replication 2
        write_table(&dfs, "/t/fact", 60, 10);
        let reader = CifReader::open(&dfs, "/t/fact").unwrap();
        for g in 0..reader.meta().num_groups() {
            let hosts = reader.group_hosts(&dfs, g).unwrap();
            assert_eq!(hosts.len(), 2, "group {g} must share all replicas");
        }
    }

    #[test]
    fn local_scan_from_group_host_is_fully_local() {
        let dfs = Dfs::for_tests(5);
        write_table(&dfs, "/t/fact", 40, 10);
        let reader = CifReader::open(&dfs, "/t/fact").unwrap();
        let host = reader.group_hosts(&dfs, 2).unwrap()[0];
        let io = TaskIo::new(Arc::clone(&dfs), host);
        reader.read_group(&io, 2, &[0, 1, 2]).unwrap();
        assert_eq!(io.stats.remote(), 0);
        assert!(io.stats.local() > 0);
    }

    #[test]
    fn schema_validation_on_append() {
        let dfs = Dfs::for_tests(2);
        let mut w = CifWriter::new(Arc::clone(&dfs), "/t/x", schema(), 4).unwrap();
        assert!(w.append(&row![1i32]).is_err()); // wrong arity
        assert!(w
            .append(&Row::new(vec![
                Datum::str("no"),
                Datum::str("a"),
                Datum::I64(1)
            ]))
            .is_err()); // wrong type
    }

    #[test]
    fn bad_group_and_column_errors() {
        let dfs = Dfs::for_tests(2);
        write_table(&dfs, "/t/f", 10, 5);
        let reader = CifReader::open(&dfs, "/t/f").unwrap();
        let io = TaskIo::client(Arc::clone(&dfs));
        assert!(reader.read_group(&io, 9, &[0]).is_err());
        assert!(reader.column_index("nope").is_err());
        assert_eq!(reader.column_index("revenue").unwrap(), 2);
    }

    #[test]
    fn meta_decode_rejects_garbage() {
        assert!(CifTableMeta::decode("/t", b"nope").is_err());
        assert!(CifTableMeta::decode("/t", b"").is_err());
    }

    #[test]
    fn zero_rows_per_group_rejected() {
        let dfs = Dfs::for_tests(2);
        assert!(CifWriter::new(dfs, "/t/y", schema(), 0).is_err());
    }

    #[test]
    fn rows_per_group_one_makes_one_group_per_row() {
        let dfs = Dfs::for_tests(2);
        let meta = write_table(&dfs, "/t/tiny", 3, 1);
        assert_eq!(meta.num_groups(), 3);
        assert_eq!(meta.total_rows(), 3);
    }

    #[test]
    fn datum_types_survive_roundtrip() {
        let dfs = Dfs::for_tests(2);
        let s = Schema::new(vec![Field::f64("x"), Field::str("y")]);
        let mut w = CifWriter::new(Arc::clone(&dfs), "/t/fs", s, 4).unwrap();
        w.append(&row![1.5f64, "a"]).unwrap();
        w.append(&row![-0.25f64, ""]).unwrap();
        w.close().unwrap();
        let r = CifReader::open(&dfs, "/t/fs").unwrap();
        assert_eq!(r.schema().field(0).dtype, DatumType::F64);
        let rows = r.read_all_rows(&dfs).unwrap();
        assert_eq!(rows[1], row![-0.25f64, ""]);
    }
}
