//! Canonical stage fingerprints for job-output reuse (ReStore-style).
//!
//! A fingerprint is a deterministic 64-bit hash over everything that
//! determines a job's *output bytes*:
//!
//! * the job's **code-identity token** ([`crate::job::JobSpec::code_token`]) —
//!   an explicit, versioned string naming the map/reduce functions and every
//!   planner knob baked into them. An empty token means "not reusable" and
//!   yields no fingerprint at all, so jobs that never opted in can never be
//!   served from the cache;
//! * the **resolved input splits** — each split's address (file path + byte
//!   range, row-group list, or inline record range) and its on-DFS length,
//!   in split order. Fact-partition roll-in/roll-out changes the split list,
//!   so membership changes miss the cache by construction;
//! * the sorted **job configuration** pairs (`JobConf` iterates its
//!   `BTreeMap` in key order, so insertion order cannot leak in);
//! * the **reduce partition count**, which shapes both partitioning and the
//!   set of output files.
//!
//! Deliberately excluded: split *hosts* and locality (placement does not
//! change bytes), the output directory (Hive's per-run tmp dirs are unique
//! per submission), fault plans, thread counts, JVM reuse, and attempt
//! limits — all execution knobs under the workspace-wide invariant that
//! results are byte-identical across them.
//!
//! The hash is the same splitmix64 finalizer used by the seeded-RNG plumbing
//! elsewhere in the workspace, chained over length-prefixed fields so that
//! adjacent strings cannot alias (`"ab","c"` vs `"a","bc"`).

use crate::input::{InputSplit, SplitSpec};
use crate::job::JobSpec;

/// splitmix64 finalizer: the workspace-standard bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Incremental fingerprint accumulator: a chained mix64 over tagged,
/// length-prefixed fields.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprinter {
    state: u64,
}

impl Fingerprinter {
    pub fn new() -> Fingerprinter {
        // Domain-separation constant so an empty fingerprint is not 0.
        Fingerprinter {
            state: mix64(0x636c_7964_655f_6670), // "clyde_fp"
        }
    }

    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.state = mix64(self.state ^ mix64(v));
        self
    }

    pub fn push_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.push_u64(b.len() as u64);
        for chunk in b.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.push_u64(u64::from_le_bytes(word));
        }
        self
    }

    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_bytes(s.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

/// Canonical fingerprint of a job over its resolved splits. Returns `None`
/// when the spec carries no code-identity token — such jobs bypass the
/// result cache entirely.
///
/// When the spec carries a [`JobSpec::lineage`] fingerprint, the splits are
/// *not* hashed: downstream stages of a chained plan read per-run tmp
/// directories whose paths never repeat, so their identity is the upstream
/// stage's fingerprint instead. The lineage and split branches use distinct
/// domain tags, so a lineage fingerprint can never collide with a
/// split-based one by field layout.
pub fn job_fingerprint(spec: &JobSpec, splits: &[InputSplit]) -> Option<u64> {
    if spec.code_token.is_empty() {
        return None;
    }
    let mut fp = Fingerprinter::new();
    fp.push_str(&spec.code_token);
    fp.push_u64(spec.conf.len() as u64);
    for (k, v) in spec.conf.iter() {
        fp.push_str(k).push_str(v);
    }
    fp.push_u64(spec.num_reducers as u64);
    match spec.lineage {
        Some(upstream) => {
            fp.push_u64(0x006c_696e_6561_6765); // "lineage" domain tag
            fp.push_u64(upstream);
        }
        None => {
            fp.push_u64(0x7370_6c69_7473); // "splits" domain tag
            fp.push_u64(splits.len() as u64);
            for s in splits {
                push_split(&mut fp, s);
            }
        }
    }
    Some(fp.finish())
}

fn push_split(fp: &mut Fingerprinter, split: &InputSplit) {
    match &split.spec {
        SplitSpec::FileRange { path, offset, len } => {
            fp.push_u64(1)
                .push_str(path)
                .push_u64(*offset)
                .push_u64(*len);
        }
        SplitSpec::Groups { base, groups } => {
            fp.push_u64(2).push_str(base).push_u64(groups.len() as u64);
            for g in groups {
                fp.push_u64(*g as u64);
            }
        }
        SplitSpec::Inline { from, to } => {
            fp.push_u64(3).push_u64(*from as u64).push_u64(*to as u64);
        }
    }
    fp.push_u64(split.bytes);
}

/// The file paths a fingerprint depends on, for cache invalidation: deleting
/// or rewriting any of these must drop the cached entry.
pub fn input_paths(splits: &[InputSplit]) -> Vec<String> {
    let mut paths: Vec<String> = splits
        .iter()
        .filter_map(|s| match &s.spec {
            SplitSpec::FileRange { path, .. } => Some(path.clone()),
            SplitSpec::Groups { base, .. } => Some(base.clone()),
            SplitSpec::Inline { .. } => None,
        })
        .collect();
    paths.sort();
    paths.dedup();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::VecInputFormat;
    use crate::runner::FnMapRunner;
    use crate::task::MapTaskContext;
    use clyde_dfs::NodeId;
    use std::sync::Arc;

    fn spec_with_token(token: &str) -> JobSpec {
        let input = Arc::new(VecInputFormat::new(Vec::new(), 1));
        let runner = Arc::new(FnMapRunner(|_ctx: &MapTaskContext<'_>| Ok(())));
        let mut spec = JobSpec::new("fp-test", input, runner);
        spec.code_token = token.into();
        spec
    }

    fn file_split(index: usize, path: &str, offset: u64, len: u64) -> InputSplit {
        InputSplit {
            index,
            spec: SplitSpec::FileRange {
                path: path.into(),
                offset,
                len,
            },
            hosts: vec![NodeId(0)],
            bytes: len,
        }
    }

    #[test]
    fn empty_token_yields_no_fingerprint() {
        let spec = spec_with_token("");
        assert_eq!(job_fingerprint(&spec, &[]), None);
    }

    #[test]
    fn same_inputs_same_fingerprint() {
        let spec = spec_with_token("clyde:q2.1:v1");
        let splits = vec![file_split(0, "/ssb/fact/cif", 0, 4096)];
        assert_eq!(
            job_fingerprint(&spec, &splits),
            job_fingerprint(&spec, &splits)
        );
    }

    #[test]
    fn conf_order_cannot_matter() {
        let mut a = spec_with_token("t");
        a.conf.set("x", "1");
        a.conf.set("a", "2");
        let mut b = spec_with_token("t");
        b.conf.set("a", "2");
        b.conf.set("x", "1");
        let splits = vec![file_split(0, "/f", 0, 10)];
        assert_eq!(job_fingerprint(&a, &splits), job_fingerprint(&b, &splits));
    }

    #[test]
    fn sensitive_to_token_conf_splits_and_reducers() {
        let base = spec_with_token("t");
        let splits = vec![file_split(0, "/f", 0, 10)];
        let fp0 = job_fingerprint(&base, &splits).unwrap();

        let other_token = spec_with_token("t2");
        assert_ne!(fp0, job_fingerprint(&other_token, &splits).unwrap());

        let mut conf = spec_with_token("t");
        conf.conf.set("scan.columns", "lo_revenue");
        assert_ne!(fp0, job_fingerprint(&conf, &splits).unwrap());

        let mut reducers = spec_with_token("t");
        reducers.num_reducers = 8;
        assert_ne!(fp0, job_fingerprint(&reducers, &splits).unwrap());

        for changed in [
            vec![file_split(0, "/g", 0, 10)], // path
            vec![file_split(0, "/f", 1, 10)], // offset
            vec![file_split(0, "/f", 0, 11)], // length
            vec![file_split(0, "/f", 0, 10), file_split(1, "/f", 10, 10)], // membership
        ] {
            assert_ne!(fp0, job_fingerprint(&base, &changed).unwrap());
        }
    }

    #[test]
    fn group_splits_distinguish_membership() {
        let base = spec_with_token("t");
        let mk = |groups: Vec<usize>| {
            vec![InputSplit {
                index: 0,
                spec: SplitSpec::Groups {
                    base: "/fact".into(),
                    groups,
                },
                hosts: Vec::new(),
                bytes: 100,
            }]
        };
        let a = job_fingerprint(&base, &mk(vec![0, 1])).unwrap();
        let b = job_fingerprint(&base, &mk(vec![0, 2])).unwrap();
        let c = job_fingerprint(&base, &mk(vec![0])).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn insensitive_to_execution_knobs() {
        let splits = vec![file_split(0, "/f", 0, 10)];
        let base = spec_with_token("t");
        let fp0 = job_fingerprint(&base, &splits).unwrap();

        let mut exec = spec_with_token("t");
        exec.task_threads = Some(6);
        exec.host_threads = Some(2);
        exec.declared_task_memory = 1 << 30;
        exec.reuse_jvm = false;
        exec.max_task_attempts = 1;
        exec.output = crate::job::OutputSpec::DfsDir("/tmp/run-17".into());
        assert_eq!(fp0, job_fingerprint(&exec, &splits).unwrap());

        // Hosts are placement, not content.
        let mut moved = splits.clone();
        moved[0].hosts = vec![NodeId(2), NodeId(1)];
        assert_eq!(fp0, job_fingerprint(&base, &moved).unwrap());
    }

    #[test]
    fn lineage_replaces_splits() {
        let mut spec = spec_with_token("t");
        spec.lineage = Some(0xdead_beef);
        let a = vec![file_split(0, "/tmp/run-1/part", 0, 10)];
        let b = vec![file_split(0, "/tmp/run-2/part", 0, 10)];
        // Same lineage, different (per-run) splits: identical fingerprint.
        assert_eq!(job_fingerprint(&spec, &a), job_fingerprint(&spec, &b));

        // Different lineage: different fingerprint.
        let mut other = spec_with_token("t");
        other.lineage = Some(0xdead_beef + 1);
        assert_ne!(job_fingerprint(&spec, &a), job_fingerprint(&other, &a));

        // Lineage mode never aliases split mode.
        let split_based = spec_with_token("t");
        assert_ne!(
            job_fingerprint(&spec, &a),
            job_fingerprint(&split_based, &a)
        );
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = Fingerprinter::new();
        a.push_str("ab").push_str("c");
        let mut b = Fingerprinter::new();
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn input_paths_sorted_and_deduped() {
        let splits = vec![
            file_split(0, "/b", 0, 10),
            file_split(1, "/a", 0, 10),
            file_split(2, "/b", 10, 10),
            InputSplit {
                index: 3,
                spec: SplitSpec::Inline { from: 0, to: 5 },
                hosts: Vec::new(),
                bytes: 80,
            },
        ];
        assert_eq!(
            input_paths(&splits),
            vec!["/a".to_string(), "/b".to_string()]
        );
    }
}
