//! The public Clydesdale engine API.

use crate::config::Features;
use crate::planner::plan_query;
use clyde_common::obs::{us, Obs, QueryProfile, SpanKind, DEFAULT_DRIFT_THRESHOLD_PCT};
use clyde_common::{ClydeError, Result, Row};
use clyde_dfs::Dfs;
use clyde_mapred::{CostParams, Engine, FaultPlan, JobCost, JobProfile};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::StarQuery;
use clyde_ssb::schema;
use std::sync::Arc;

/// Result of one Clydesdale query.
#[derive(Debug)]
pub struct QueryResult {
    /// Final rows: group-by columns + the aggregate, in ORDER BY order.
    pub rows: Vec<Row>,
    /// Hardware-independent execution profile (extrapolable / re-priceable).
    pub profile: JobProfile,
    /// Simulated cost on the engine's own cluster spec, including the final
    /// client-side sort.
    pub cost: JobCost,
    /// Simulated seconds of the final single-process ORDER BY sort (paper
    /// Figure 4 line 33; under 10 s for Q2.1 at SF1000).
    pub final_sort_s: f64,
    /// Fraction of scanned bytes read from local replicas.
    pub locality: f64,
}

impl QueryResult {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.cost.total_s() + self.final_sort_s
    }
}

/// Clydesdale: the star-join engine over a DFS + MapReduce substrate.
pub struct Clydesdale {
    engine: Engine,
    layout: SsbLayout,
    features: Features,
    faults: Option<Arc<FaultPlan>>,
    host_threads: Option<u32>,
}

impl Clydesdale {
    pub fn new(dfs: Arc<Dfs>, layout: SsbLayout) -> Clydesdale {
        Clydesdale {
            engine: Engine::new(dfs),
            layout,
            features: Features::default(),
            faults: None,
            host_threads: None,
        }
    }

    pub fn with_features(dfs: Arc<Dfs>, layout: SsbLayout, features: Features) -> Clydesdale {
        Clydesdale {
            engine: Engine::new(dfs),
            layout,
            features,
            faults: None,
            host_threads: None,
        }
    }

    pub fn with_params(
        dfs: Arc<Dfs>,
        layout: SsbLayout,
        features: Features,
        params: CostParams,
    ) -> Clydesdale {
        Clydesdale {
            engine: Engine::with_params(dfs, params),
            layout,
            features,
            faults: None,
            host_threads: None,
        }
    }

    pub fn features(&self) -> Features {
        self.features
    }

    /// Attach an observability hub (chainable): jobs record their history
    /// and spans there, and `query` appends the final-sort phase.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Clydesdale {
        self.engine.set_obs(obs);
        self
    }

    pub fn obs(&self) -> &Arc<Obs> {
        self.engine.obs()
    }

    /// Attach a seeded fault plan (chainable): every query's MapReduce job
    /// runs under the plan's injected failures, and recovery must keep the
    /// results identical to a fault-free run.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Clydesdale {
        self.faults = Some(faults);
        self
    }

    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Override how many *host* OS threads the map runner really spawns
    /// (chainable). The cost model keeps pricing with the cluster's map-slot
    /// count, so any value must leave results, simulated spans, and metric
    /// snapshots byte-identical — the property the thread-count-invariance
    /// test and the `shadow_check` harness assert with 1/2/8.
    pub fn with_host_threads(mut self, host_threads: u32) -> Clydesdale {
        self.host_threads = Some(host_threads);
        self
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub(crate) fn layout(&self) -> &SsbLayout {
        &self.layout
    }

    pub(crate) fn host_threads(&self) -> Option<u32> {
        self.host_threads
    }

    /// Open a multi-tenant query server over this engine: submissions are
    /// admission-controlled against `cfg`, and each drain schedules every
    /// admitted query's tasks on the shared cluster under `cfg.policy` —
    /// in deterministic simulated time, with solo-identical results.
    pub fn serve(&self, cfg: clyde_mapred::ServerConfig) -> crate::server::QueryServer<'_> {
        crate::server::QueryServer::new(self, cfg)
    }

    /// Copy every dimension table's master copy from the DFS onto every
    /// node's local disk (paper Figure 2). Queries repair missing copies on
    /// demand, so this is an optimization, not a requirement.
    pub fn warm_dimension_cache(&self) -> Result<()> {
        for table in [
            schema::CUSTOMER,
            schema::SUPPLIER,
            schema::PART,
            schema::DATE,
        ] {
            let path = self.layout.dim_bin(table);
            if self.engine.dfs().exists(&path) {
                self.engine
                    .local_store()
                    .broadcast_from_dfs(&path, self.engine.dfs())?;
            }
        }
        Ok(())
    }

    /// Describe the MapReduce job a query would run, without running it —
    /// the scan projection, the join pipeline with estimated hash-table
    /// sizes, and the scheduling shape.
    pub fn explain(&self, query: &StarQuery) -> Result<String> {
        use std::fmt::Write as _;
        query.validate()?;
        let (scan_cols, _) = crate::planner::scan_schema(query, &self.features)?;
        let cluster = self.engine.dfs().cluster();
        let mut out = String::new();
        writeln!(out, "== Clydesdale plan for {} ==", query.id).expect("string write");
        writeln!(
            out,
            "scan lineorder [{}]: columns {:?}{}",
            self.layout.fact_cif(),
            scan_cols,
            if self.features.block_iteration {
                " (block iteration)"
            } else {
                " (row-at-a-time)"
            }
        )
        .expect("string write");
        for p in &query.fact_preds {
            writeln!(out, "  fact filter on {}", p.column()).expect("string write");
        }
        for join in &query.joins {
            writeln!(
                out,
                "  hash join {}.{} = lineorder.{} (predicate: {}, aux: {:?})",
                join.dimension,
                join.pk,
                join.fk,
                if join.predicate == clyde_ssb::queries::DimPred::True {
                    "none"
                } else {
                    "pushed into build"
                },
                join.aux,
            )
            .expect("string write");
        }
        writeln!(
            out,
            "map: {} multi-threaded task(s), one per node, {} threads each, \
             tables shared via JVM reuse: {}",
            cluster.num_workers(),
            if self.features.multithreading {
                cluster.map_slots
            } else {
                1
            },
            self.features.jvm_reuse,
        )
        .expect("string write");
        writeln!(
            out,
            "reduce: {} partition(s), aggregate {:?}, group by {:?}",
            cluster.total_reduce_slots(),
            query.aggregate,
            query.group_by,
        )
        .expect("string write");
        let order: Vec<String> = query
            .order_by
            .iter()
            .map(|(t, desc)| {
                let name = match t {
                    clyde_ssb::queries::OrderTerm::Aggregate => "<aggregate>".to_string(),
                    clyde_ssb::queries::OrderTerm::Column(c) => c.clone(),
                };
                format!("{name}{}", if *desc { " desc" } else { "" })
            })
            .collect();
        writeln!(
            out,
            "client: single-process sort by [{}]{}",
            order.join(", "),
            query
                .limit
                .map_or(String::new(), |l| format!(", limit {l}")),
        )
        .expect("string write");
        Ok(out)
    }

    /// Execute a star query end to end: one MapReduce job (join + group-by
    /// aggregation) followed by a single-process ORDER BY sort.
    pub fn query(&self, query: &StarQuery) -> Result<QueryResult> {
        let mut spec = plan_query(
            query,
            &self.layout,
            self.features,
            self.engine.dfs().cluster(),
        )?;
        spec.faults = self.faults.clone();
        spec.host_threads = self.host_threads;
        let obs = self.engine.obs();
        // Histories recorded before this query belong to earlier queries on
        // the same hub; everything past this index is ours.
        let hist_before = obs.with_histories(|hs| hs.len());
        let result = self.engine.run_job(&spec)?;
        let mut rows = result.rows;
        query.finish_result(&mut rows);
        // Price the client-side sort like the paper's single-process sort.
        let final_sort_s = rows.len() as f64 / self.engine.params().sort_records_per_s + 0.5;
        if obs.is_enabled() {
            // Append the client-side sort right after the job on its track.
            if let Some(job) = obs.last_job() {
                obs.spans().span(
                    None,
                    SpanKind::Phase,
                    "final-sort",
                    job.pid,
                    0,
                    us(job.total_s),
                    us(job.total_s + final_sort_s).saturating_sub(us(job.total_s)),
                    vec![("rows".into(), rows.len().to_string())],
                );
            }
            obs.metrics().counter_add("mapred.queries", 1);
            obs.metrics()
                .histogram_record("mapred.final_sort_s", final_sort_s);
            let profile = obs.with_histories(|hs| {
                QueryProfile::from_histories(
                    &query.id,
                    &hs[hist_before..],
                    final_sort_s,
                    DEFAULT_DRIFT_THRESHOLD_PCT,
                )
            });
            obs.record_query_profile(profile);
        }
        Ok(QueryResult {
            rows,
            profile: result.profile,
            cost: result.cost,
            final_sort_s,
            locality: result.locality,
        })
    }

    /// Execute a query and return its result together with the
    /// explain-analyze profile (model-vs-measured stage/phase tree plus
    /// calibration verdicts). Requires an enabled [`Obs`] hub — profiles are
    /// assembled from recorded job histories.
    pub fn explain_analyze(&self, query: &StarQuery) -> Result<(QueryResult, QueryProfile)> {
        let obs = self.engine.obs();
        if !obs.is_enabled() {
            return Err(ClydeError::Config(
                "explain analyze needs observability: construct with with_obs(Obs::enabled())"
                    .into(),
            ));
        }
        let result = self.query(query)?;
        let profile = obs.with_query_profiles(|ps| {
            ps.last()
                .cloned()
                .ok_or_else(|| ClydeError::Config("query recorded no profile".into()))
        })?;
        Ok((result, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_dfs::{ClusterSpec, ColocatingPlacement, DfsOptions};
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::{all_queries, loader, query_by_id, reference_answer};

    fn setup(sf: f64, nodes: usize) -> (Arc<Dfs>, SsbLayout, SsbGen) {
        setup_replicated(sf, nodes, 2)
    }

    fn setup_replicated(sf: f64, nodes: usize, replication: u32) -> (Arc<Dfs>, SsbLayout, SsbGen) {
        let dfs = Dfs::new(
            ClusterSpec::tiny(nodes),
            DfsOptions {
                block_size: 1 << 20,
                replication,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let layout = SsbLayout::default();
        let gen = SsbGen::new(sf, 46);
        loader::load(
            &dfs,
            gen,
            &layout,
            &loader::LoadOpts {
                rows_per_group: 2_000,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap();
        (dfs, layout, gen)
    }

    #[test]
    fn q21_matches_reference() {
        let (dfs, layout, gen) = setup(0.005, 3);
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
        clyde.warm_dimension_cache().unwrap();
        let q = query_by_id("Q2.1").unwrap();
        let result = clyde.query(&q).unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(result.rows, expect);
        assert!(result.total_s() > 0.0);
        // One multi-threaded map task per node.
        assert!(result.profile.map_tasks.len() <= 3);
        assert_eq!(result.profile.map_concurrency, 1);
        // Hash tables built exactly once per participating node.
        let builds: u64 = result
            .profile
            .map_tasks
            .iter()
            .map(|t| t.cost.build_rows)
            .filter(|&b| b > 0)
            .count() as u64;
        assert_eq!(builds, result.profile.map_tasks.len() as u64);
        // CIF co-location + one-split-per-node ⇒ fully local scan.
        assert_eq!(result.locality, 1.0);
    }

    #[test]
    fn all_thirteen_queries_match_reference() {
        let (dfs, layout, gen) = setup(0.01, 4);
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
        clyde.warm_dimension_cache().unwrap();
        let data = gen.gen_all();
        for q in all_queries() {
            let result = clyde.query(&q).unwrap();
            let expect = reference_answer(&data, &q).unwrap();
            assert_eq!(result.rows, expect, "{} mismatch", q.id);
            assert!(!result.rows.is_empty(), "{} empty", q.id);
        }
    }

    #[test]
    fn ablations_change_cost_but_not_results() {
        let (dfs, layout, gen) = setup(0.005, 3);
        let q = query_by_id("Q4.1").unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();

        let baseline = Clydesdale::new(Arc::clone(&dfs), layout.clone());
        let base = baseline.query(&q).unwrap();
        assert_eq!(base.rows, expect);

        for features in [
            Features::without_columnar(),
            Features::without_block_iteration(),
            Features::without_multithreading(),
            Features::without_vectorized(),
            Features::without_zone_skipping(),
        ] {
            let ablated = Clydesdale::with_features(Arc::clone(&dfs), layout.clone(), features);
            let r = ablated.query(&q).unwrap();
            assert_eq!(r.rows, expect, "{} changed results", features.label());
        }

        // Columnar-off reads more bytes.
        let no_col = Clydesdale::with_features(
            Arc::clone(&dfs),
            layout.clone(),
            Features::without_columnar(),
        );
        let r = no_col.query(&q).unwrap();
        let base_bytes =
            base.profile.total_map_cost().local_bytes + base.profile.total_map_cost().remote_bytes;
        let ablated_bytes =
            r.profile.total_map_cost().local_bytes + r.profile.total_map_cost().remote_bytes;
        assert!(
            ablated_bytes > base_bytes * 2,
            "columnar-off must read much more: {ablated_bytes} vs {base_bytes}"
        );

        // Block-iteration-off counts rows through the row path.
        let no_blk = Clydesdale::with_features(
            Arc::clone(&dfs),
            layout.clone(),
            Features::without_block_iteration(),
        );
        let r = no_blk.query(&q).unwrap();
        assert!(r.profile.total_map_cost().rowiter_rows > 0);
        assert_eq!(r.profile.total_map_cost().block_rows, 0);

        // Multithreading-off builds tables once per task, not once per node.
        let no_mt =
            Clydesdale::with_features(Arc::clone(&dfs), layout, Features::without_multithreading());
        let r = no_mt.query(&q).unwrap();
        let rebuilds = r
            .profile
            .map_tasks
            .iter()
            .filter(|t| t.cost.build_rows > 0)
            .count();
        assert_eq!(
            rebuilds,
            r.profile.map_tasks.len(),
            "every single-threaded task must rebuild its tables"
        );
        assert!(r.profile.map_tasks.len() > base.profile.map_tasks.len());
        assert!(r.profile.memory_per_slot > 0);
        assert_eq!(r.profile.memory_shared, 0);
        assert!(base.profile.memory_shared > 0);
    }

    #[test]
    fn zone_skipping_prunes_without_changing_results() {
        let (dfs, layout, gen) = setup(0.01, 4);
        let data = gen.gen_all();
        let on = Clydesdale::new(Arc::clone(&dfs), layout.clone());
        let off = Clydesdale::with_features(
            Arc::clone(&dfs),
            layout.clone(),
            Features::without_zone_skipping(),
        );
        on.warm_dimension_cache().unwrap();
        for id in ["Q1.1", "Q1.2", "Q1.3"] {
            let q = query_by_id(id).unwrap();
            let expect = reference_answer(&data, &q).unwrap();
            let r_on = on.query(&q).unwrap();
            let r_off = off.query(&q).unwrap();
            assert_eq!(r_on.rows, expect, "{id} with zone maps");
            assert_eq!(r_off.rows, expect, "{id} without zone maps");

            let c_on = r_on.profile.total_map_cost();
            let c_off = r_off.profile.total_map_cost();
            // Flight 1 is date-selective; with date-clustered loading the
            // zone maps must prove most groups irrelevant.
            assert!(c_on.zone_checked > 0, "{id}: no zone checks recorded");
            assert!(c_on.zone_skipped > 0, "{id}: no groups skipped");
            assert_eq!(c_off.zone_checked, 0, "{id}: ablation must not check");
            assert_eq!(c_off.zone_skipped, 0, "{id}: ablation must not skip");
            // Skipping means fewer fact rows iterated and fewer bytes read.
            assert!(
                c_on.block_rows < c_off.block_rows,
                "{id}: {} !< {}",
                c_on.block_rows,
                c_off.block_rows
            );
            assert!(
                c_on.local_bytes + c_on.remote_bytes < c_off.local_bytes + c_off.remote_bytes,
                "{id}: zone skipping must reduce scan bytes"
            );
        }
    }

    #[test]
    fn dimension_cache_repair_path() {
        // Clear a node's local cache after warming; the query must repair it
        // from the DFS and still answer correctly (paper Figure 2).
        let (dfs, layout, gen) = setup(0.005, 3);
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
        clyde.warm_dimension_cache().unwrap();
        clyde
            .engine()
            .local_store()
            .clear_node(clyde_dfs::NodeId(1));
        let q = query_by_id("Q3.1").unwrap();
        let result = clyde.query(&q).unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(result.rows, expect);
    }

    #[test]
    fn faulted_query_matches_fault_free_run() {
        // Recovery transparency end to end: a query under an aggressive
        // seeded fault plan returns byte-identical rows to the reference.
        // Replication 3: the combined plan corrupts a replica of every block
        // AND kills a node, so two copies are not guaranteed to survive.
        let (dfs, layout, gen) = setup_replicated(0.005, 3, 3);
        let q = query_by_id("Q2.1").unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        let mut plan = FaultPlan::named("combined", 46).unwrap();
        plan.task_fail_rate = 1.0; // force at least one recovery action
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_faults(Arc::new(plan));
        let result = clyde.query(&q).unwrap();
        assert_eq!(result.rows, expect);
        assert!(result.profile.failed_attempts >= 1);
    }

    #[test]
    fn cold_cache_works_without_warming() {
        let (dfs, layout, gen) = setup(0.005, 2);
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
        let q = query_by_id("Q1.2").unwrap();
        let result = clyde.query(&q).unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(result.rows, expect);
    }
}

#[cfg(test)]
mod limit_and_explain_tests {
    use super::*;
    use clyde_dfs::{ClusterSpec, ColocatingPlacement, DfsOptions};
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::{loader, query_by_id, reference_answer};

    #[test]
    fn limit_truncates_after_the_sort() {
        let dfs = Dfs::new(
            ClusterSpec::tiny(2),
            DfsOptions {
                block_size: 1 << 20,
                replication: 1,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let layout = SsbLayout::default();
        let gen = SsbGen::new(0.004, 46);
        loader::load(
            &dfs,
            gen,
            &layout,
            &loader::LoadOpts {
                rows_per_group: 2_000,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap();
        let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
        let mut q = query_by_id("Q2.1").unwrap();
        let full = clyde.query(&q).unwrap().rows;
        assert!(full.len() > 5);
        q.limit = Some(5);
        q.id = "Q2.1-top5".into();
        let limited = clyde.query(&q).unwrap().rows;
        assert_eq!(limited.len(), 5);
        assert_eq!(limited, full[..5].to_vec(), "limit must keep the top rows");
        // The reference executor agrees on limit semantics.
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(limited, expect);
    }

    #[test]
    fn explain_describes_the_plan_without_executing() {
        let dfs = Dfs::new(ClusterSpec::cluster_a(), DfsOptions::default());
        let clyde = Clydesdale::new(dfs, SsbLayout::default());
        let q = query_by_id("Q3.1").unwrap();
        let plan = clyde.explain(&q).unwrap();
        assert!(plan.contains("Q3.1"));
        assert!(plan.contains("hash join customer.c_custkey = lineorder.lo_custkey"));
        assert!(plan.contains("8 multi-threaded task(s)"));
        assert!(plan.contains("6 threads"));
        assert!(plan.contains("sort by [d_year, <aggregate> desc]"));
        // No data was loaded: explain never touched the fact table.
        assert!(clyde.query(&q).is_err(), "query without data must fail");
    }
}
