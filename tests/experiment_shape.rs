//! Guardrails on the reproduced evaluation: if a change to any crate breaks
//! the *shape* of the paper's results, these tests fail.
//!
//! "Shape" means the qualitative claims of Section 6, with generous margins
//! (absolute numbers depend on calibration constants, recorded in
//! EXPERIMENTS.md):
//!
//! * Clydesdale beats both Hive plans on every query, on both clusters;
//! * cluster-A speedups are larger than cluster-B speedups (fixed per-node
//!   costs matter more when per-node work shrinks);
//! * Hive's mapjoin plan OOMs on cluster A for exactly {Q3.1, Q4.1, Q4.2,
//!   Q4.3} and completes everywhere on cluster B;
//! * each ablation slows Clydesdale down without changing answers, with the
//!   paper's flight ordering (columnar-off hurts narrow-scan flights most;
//!   multithreading-off hurts big-dimension flights most);
//! * Q2.1 on cluster A lands near the paper's 215 s with a build phase near
//!   27 s.

use clyde_bench::harness::{measure, Ablation, Extrapolator, MeasureWhat, MeasurementConfig};
use clyde_bench::paper;
use clyde_dfs::ClusterSpec;
use clyde_hive::JoinStrategy;
use std::sync::OnceLock;

fn measurements() -> &'static clyde_bench::harness::Measurements {
    static M: OnceLock<clyde_bench::harness::Measurements> = OnceLock::new();
    M.get_or_init(|| {
        measure(
            &MeasurementConfig {
                sf: 0.01,
                seed: 46,
                workers: 2,
                rows_per_group: 4_000,
                validate: true,
            },
            MeasureWhat {
                hive: true,
                ablations: true,
            },
        )
        .expect("measurement failed")
    })
}

#[test]
fn clydesdale_wins_everywhere_and_more_on_cluster_a() {
    let m = measurements();
    let on_a = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, m);
    let on_b = Extrapolator::new(ClusterSpec::cluster_b(), 1000.0, m);
    let mut a_speedups = Vec::new();
    let mut b_speedups = Vec::new();
    for qm in &m.queries {
        let ca = on_a.clyde_time(qm).unwrap();
        let cb = on_b.clyde_time(qm).unwrap();
        assert!(cb < ca, "{}: cluster B must be faster", qm.query.id);
        for strategy in [JoinStrategy::Repartition, JoinStrategy::MapJoin] {
            if let Ok(t) = on_a.hive_time(m, qm, strategy) {
                assert!(t > ca, "{}: hive beat clydesdale on A", qm.query.id);
                a_speedups.push(t / ca);
            }
            if let Ok(t) = on_b.hive_time(m, qm, strategy) {
                assert!(t > cb, "{}: hive beat clydesdale on B", qm.query.id);
                b_speedups.push(t / cb);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (avg_a, avg_b) = (avg(&a_speedups), avg(&b_speedups));
    // Paper: 38x on A, 11.1x on B. Accept a factor-of-two band.
    assert!(
        (paper::cluster_a::SPEEDUP_AVG / 2.0..paper::cluster_a::SPEEDUP_AVG * 2.0).contains(&avg_a),
        "cluster A average speedup {avg_a:.1} out of band"
    );
    assert!(
        (paper::cluster_b::SPEEDUP_AVG / 2.0..paper::cluster_b::SPEEDUP_AVG * 2.0).contains(&avg_b),
        "cluster B average speedup {avg_b:.1} out of band"
    );
    assert!(avg_a > avg_b, "speedup must shrink on the bigger cluster");
}

#[test]
fn mapjoin_oom_exactly_reproduces_the_papers_failure_set() {
    let m = measurements();
    let on_a = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, m);
    let on_b = Extrapolator::new(ClusterSpec::cluster_b(), 1000.0, m);
    let failed: Vec<&str> = m
        .queries
        .iter()
        .filter(|qm| on_a.hive_time(m, qm, JoinStrategy::MapJoin).is_err())
        .map(|qm| qm.query.id.as_str())
        .collect();
    assert_eq!(failed, paper::cluster_a::MAPJOIN_OOM.to_vec());
    for qm in &m.queries {
        assert!(
            on_b.hive_time(m, qm, JoinStrategy::MapJoin).is_ok(),
            "{} must complete on cluster B",
            qm.query.id
        );
        assert!(
            on_a.hive_time(m, qm, JoinStrategy::Repartition).is_ok(),
            "{} repartition never OOMs",
            qm.query.id
        );
    }
}

#[test]
fn q21_breakdown_lands_near_the_paper() {
    let m = measurements();
    let ex = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, m);
    let qm = m.queries.iter().find(|q| q.query.id == "Q2.1").unwrap();
    let total = ex.clyde_time(qm).unwrap();
    assert!(
        (150.0..320.0).contains(&total),
        "Q2.1 total {total:.0}s vs paper 215s"
    );
    // Build phase ≈ 27 s (one single-threaded pass over 4.0 M dim rows).
    let e = ex.extrapolate_one_per_node(&qm.query, &qm.clyde);
    let build = e.map_tasks[0].cost.build_rows as f64 / ex.params.build_rows_per_s;
    assert!(
        (15.0..40.0).contains(&build),
        "build {build:.1}s vs paper 27s"
    );
}

#[test]
fn ablation_ordering_matches_figure_9() {
    let m = measurements();
    let ex = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, m);
    let mut per_flight = [[0.0f64; 3]; 5];
    let mut counts = [0usize; 5];
    for qm in &m.queries {
        let base = ex.clyde_time(qm).unwrap();
        let flight = paper::flight_of(&qm.query.id);
        for (i, ab) in [
            Ablation::NoBlockIteration,
            Ablation::NoColumnar,
            Ablation::NoMultithreading,
        ]
        .iter()
        .enumerate()
        {
            let slow = ex.ablation_time(qm, *ab).unwrap() / base;
            assert!(
                slow > 0.95,
                "{}: {} should not speed things up ({slow:.2}x)",
                qm.query.id,
                ab.label()
            );
            per_flight[flight][i] += slow;
        }
        counts[flight] += 1;
    }
    let avg = |f: usize, i: usize| per_flight[f][i] / counts[f] as f64;
    // Columnar-off hurts flight 2 (narrow scans) more than flight 4.
    assert!(avg(2, 1) > avg(4, 1), "columnar ablation ordering");
    // Multithreading-off hurts flight 4 (four dimensions) more than flight 1.
    assert!(avg(4, 2) > avg(1, 2), "multithreading ablation ordering");
    // Block iteration off is a mild, broad penalty.
    let overall_block: f64 = (1..=4).map(|f| avg(f, 0)).sum::<f64>() / 4.0;
    assert!(
        (1.0..1.8).contains(&overall_block),
        "block-iteration ablation {overall_block:.2}x vs paper ~1.2x"
    );
}

#[test]
fn storage_sizes_have_the_papers_ordering() {
    use clyde_dfs::{ColocatingPlacement, Dfs, DfsOptions};
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::loader::{self, SsbLayout};
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let ds = loader::load(
        &dfs,
        SsbGen::new(0.01, 46),
        &SsbLayout::default(),
        &loader::LoadOpts {
            rows_per_group: 5_000,
            cif: true,
            rcfile: true,
            text: true,
            cluster_by_date: true,
        },
    )
    .unwrap();
    // Paper: 600 GB text > 558 GB RCFile > 334 GB Multi-CIF. Our CIF and
    // RCFile share the column encodings, so their sizes are within a few
    // percent of each other (CIF pays per-file chunk headers; RCFile pays a
    // denser footer), while text is much larger than both.
    assert!(ds.fact_bytes_text > ds.fact_bytes_rc);
    assert!(ds.fact_bytes_text > ds.fact_bytes_cif);
    let rc_cif = ds.fact_bytes_rc as f64 / ds.fact_bytes_cif as f64;
    assert!((0.9..1.1).contains(&rc_cif), "rc/cif ratio {rc_cif:.3}");
    // Text-to-binary ratio in the paper is 600/334 ≈ 1.8; ours should be
    // in the same regime (1.3 .. 3.0).
    let ratio = ds.fact_bytes_text as f64 / ds.fact_bytes_cif as f64;
    assert!((1.3..3.0).contains(&ratio), "text/cif ratio {ratio:.2}");
}
