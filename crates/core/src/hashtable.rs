//! Dimension hash tables (paper Section 4.2).
//!
//! One table per dimension join: key = dimension primary key, value = the
//! auxiliary columns the query references. The dimension predicate is
//! evaluated during the build, so non-qualifying rows never enter the table
//! and the probe's miss *is* the filter. Once built, the tables are
//! read-only and are shared by every thread and every subsequent task on
//! the node without synchronization — exactly the property the paper
//! exploits (Section 5.1).
//!
//! Qualifying rows additionally get a dense **group id** (`u32`, assigned
//! in build order): the vectorized probe kernel works in ids and packs them
//! into a single `u64` group key, rematerializing the aux `Row`s only once
//! per task at emit time. [`DimHashTable::get`] still returns the aux row
//! directly for the scalar paths.

use clyde_common::{ClydeError, FxHashMap, Result, Row};
use clyde_ssb::queries::DimJoin;
use clyde_ssb::schema;

/// Direct-index probe tables are built when the key range spans at most
/// this many slots (16 MiB of `u32`). SSB dimension keys are small dense
/// integers (or, for dates, a narrow `yyyymmdd` band), so measurement-scale
/// tables always qualify; a dimension whose key range outgrows the cap
/// falls back to hash probing transparently.
const DIRECT_MAX_SLOTS: i64 = 1 << 22;

/// Maximum slots-per-entry ratio for the direct-index table. Requiring
/// density keeps the array's footprint proportional to the dimension's
/// cardinality (so it scales like the hash map it shadows); sparse key
/// encodings — e.g. yyyymmdd date keys, where a 7-year span occupies
/// ~2.5k of ~69k slots — stay on the hash map.
const DIRECT_MAX_SLOTS_PER_ENTRY: usize = 4;

/// Sentinel in the direct-index table: key present in range but filtered
/// out or absent.
const NONE_ID: u32 = u32::MAX;

/// A read-only hash table over one (filtered) dimension.
#[derive(Debug)]
pub struct DimHashTable {
    /// Primary key → dense aux id (index into `aux_rows`).
    map: FxHashMap<i64, u32>,
    /// Direct-index probe table `(min_key, ids)`: `ids[key - min_key]` is
    /// the dense aux id or [`NONE_ID`]. Used by [`DimHashTable::get_id`]
    /// (the vectorized kernel) — an array load instead of a hash probe.
    direct: Option<(i64, Vec<u32>)>,
    /// Aux rows in id order; the group-id dictionary.
    aux_rows: Vec<Row>,
    /// Rows scanned while building (qualifying or not) — the build cost.
    pub rows_scanned: u64,
    /// Approximate heap footprint, for the node memory model.
    pub mem_bytes: u64,
}

impl DimHashTable {
    /// Build from dimension rows per the join description. `buildHashTables`
    /// in the paper's Figure 4 pseudocode.
    pub fn build(join: &DimJoin, rows: &[Row]) -> Result<DimHashTable> {
        let dim_schema = schema::schema_of(&join.dimension)
            .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
        let pred = join.predicate.compile(&dim_schema)?;
        let pk_idx = dim_schema.index_of(&join.pk)?;
        let aux_idx: Vec<usize> = join
            .aux
            .iter()
            .map(|a| dim_schema.index_of(a))
            .collect::<Result<_>>()?;

        let mut map: FxHashMap<i64, u32> = FxHashMap::default();
        let mut aux_rows: Vec<Row> = Vec::new();
        let mut mem = 0u64;
        for r in rows {
            if !pred.eval(r) {
                continue;
            }
            let pk = r.at(pk_idx).as_i64().ok_or_else(|| {
                ClydeError::Plan(format!(
                    "{}.{} is not an integer key",
                    join.dimension, join.pk
                ))
            })?;
            let aux: Row = aux_idx.iter().map(|&i| r.at(i).clone()).collect();
            mem += 8 + aux.heap_size() as u64 + 16; // key + value + bucket overhead
            let id = aux_rows.len() as u32;
            if map.insert(pk, id).is_some() {
                return Err(ClydeError::Plan(format!(
                    "duplicate primary key {pk} in dimension {}",
                    join.dimension
                )));
            }
            aux_rows.push(aux);
        }
        // Direct-index table over the qualifying-key range, when the range
        // is both narrow and dense. Built from the finished map, so
        // duplicate detection above is unaffected.
        let direct = match (map.keys().min(), map.keys().max()) {
            (Some(&lo), Some(&hi))
                if hi - lo < DIRECT_MAX_SLOTS
                    && (hi - lo + 1) as usize
                        <= map.len().saturating_mul(DIRECT_MAX_SLOTS_PER_ENTRY) =>
            {
                let mut ids = vec![NONE_ID; (hi - lo + 1) as usize];
                // clyde-lint: allow(unordered, reason=scatter to distinct pk-indexed slots; order cannot matter)
                for (&pk, &id) in &map {
                    ids[(pk - lo) as usize] = id;
                }
                mem += 4 * ids.len() as u64;
                Some((lo, ids))
            }
            _ => None,
        };
        Ok(DimHashTable {
            map,
            direct,
            aux_rows,
            rows_scanned: rows.len() as u64,
            mem_bytes: mem,
        })
    }

    /// Probe by foreign key; `None` both for filtered-out and absent keys.
    #[inline]
    pub fn get(&self, fk: i64) -> Option<&Row> {
        self.map.get(&fk).map(|&id| &self.aux_rows[id as usize])
    }

    /// Probe by foreign key for the dense aux id (vectorized kernel path):
    /// a bounds-checked array load when the direct-index table exists, a
    /// hash probe otherwise. Identical hit/miss behavior to
    /// [`DimHashTable::get`] either way.
    #[inline]
    pub fn get_id(&self, fk: i64) -> Option<u32> {
        match &self.direct {
            Some((min, ids)) => {
                let idx = fk.wrapping_sub(*min);
                if (idx as u64) < ids.len() as u64 {
                    let id = ids[idx as usize];
                    (id != NONE_ID).then_some(id)
                } else {
                    None
                }
            }
            None => self.map.get(&fk).copied(),
        }
    }

    /// Aux row for a dense id returned by [`DimHashTable::get_id`].
    #[inline]
    pub fn aux(&self, id: u32) -> &Row {
        &self.aux_rows[id as usize]
    }

    /// Size of the dense id space (= qualifying entries).
    pub fn num_ids(&self) -> usize {
        self.aux_rows.len()
    }

    /// Qualifying entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The set of hash tables for one query, built once per node and shared.
#[derive(Debug)]
pub struct DimTables {
    pub tables: Vec<DimHashTable>,
    /// Total rows scanned across all builds.
    pub build_rows: u64,
    /// Total memory charged for the shared copy.
    pub mem_bytes: u64,
}

impl DimTables {
    /// Build all tables for `joins`, fetching dimension rows through
    /// `fetch` (node-local cache, the DFS, or in-memory test data).
    ///
    /// Fetches run sequentially (`fetch` is `FnMut` and usually I/O-bound on
    /// a shared cache), then the CPU-bound builds run on one scoped thread
    /// per dimension — the paper notes build parallelism is bounded by the
    /// number of dimensions (Section 4.2). Accounting is accumulated in
    /// join order, so `build_rows`/`mem_bytes` are identical to a
    /// sequential build.
    pub fn build_all(
        joins: &[DimJoin],
        mut fetch: impl FnMut(&str) -> Result<Vec<Row>>,
    ) -> Result<DimTables> {
        let fetched: Vec<Vec<Row>> = joins
            .iter()
            .map(|j| fetch(&j.dimension))
            .collect::<Result<_>>()?;

        let built: Vec<Result<DimHashTable>> = if joins.len() <= 1 {
            joins
                .iter()
                .zip(&fetched)
                .map(|(join, rows)| DimHashTable::build(join, rows))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = joins
                    .iter()
                    .zip(&fetched)
                    .map(|(join, rows)| s.spawn(move || DimHashTable::build(join, rows)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("dimension build thread panicked"))
                    .collect()
            })
        };

        let mut tables = Vec::with_capacity(joins.len());
        let mut build_rows = 0;
        let mut mem_bytes = 0;
        for t in built {
            let t = t?;
            build_rows += t.rows_scanned;
            mem_bytes += t.mem_bytes;
            tables.push(t);
        }
        Ok(DimTables {
            tables,
            build_rows,
            mem_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::{query_by_id, DimPred};

    fn date_join_year(year: i32) -> DimJoin {
        DimJoin {
            dimension: schema::DATE.into(),
            pk: "d_datekey".into(),
            fk: "lo_orderdate".into(),
            predicate: DimPred::I32Eq {
                column: "d_year".into(),
                value: year,
            },
            aux: vec!["d_year".into()],
        }
    }

    #[test]
    fn build_filters_and_keeps_aux() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let t = DimHashTable::build(&date_join_year(1993), &dates).unwrap();
        assert_eq!(t.len(), 365);
        assert_eq!(t.rows_scanned, 2557);
        assert!(t.mem_bytes > 0);
        // A qualifying key probes to its aux row.
        let aux = t.get(19930704).unwrap();
        assert_eq!(aux.at(0).as_i64(), Some(1993));
        // Non-qualifying (1994) and absent keys miss.
        assert!(t.get(19940704).is_none());
        assert!(t.get(12345678).is_none());
    }

    #[test]
    fn group_ids_are_dense_and_consistent() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let t = DimHashTable::build(&date_join_year(1993), &dates).unwrap();
        assert_eq!(t.num_ids(), t.len());
        let mut seen = vec![false; t.num_ids()];
        for r in &dates {
            let pk = r.at(0).as_i64().unwrap();
            match t.get_id(pk) {
                Some(id) => {
                    // Dense, in-range, and aux(id) is exactly what get() sees.
                    assert!((id as usize) < t.num_ids());
                    seen[id as usize] = true;
                    assert_eq!(t.aux(id), t.get(pk).unwrap());
                }
                None => assert!(t.get(pk).is_none()),
            }
        }
        assert!(seen.iter().all(|&s| s), "every id must be reachable");
        // Probes outside the direct-index key range miss cleanly.
        assert!(t.get_id(0).is_none());
        assert!(t.get_id(-1).is_none());
        assert!(t.get_id(i64::MAX).is_none());
        assert!(t.get_id(i64::MIN).is_none());
    }

    #[test]
    fn sparse_key_range_falls_back_to_hash_probing() {
        // A key tens of millions away from the rest pushes the range past
        // DIRECT_MAX_SLOTS; get_id must silently use the hash map and still
        // agree with get() everywhere.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut rows: Vec<Row> = dates.iter().take(50).cloned().collect();
        let far: Row = (0..rows[0].len())
            .map(|i| {
                if i == 0 {
                    clyde_common::Datum::I32(250_000_000)
                } else {
                    rows[0].at(i).clone()
                }
            })
            .collect();
        rows.push(far);
        let mut join = date_join_year(0);
        join.predicate = DimPred::True;
        let t = DimHashTable::build(&join, &rows).unwrap();
        assert_eq!(t.len(), 51);
        for r in &rows {
            let pk = r.at(0).as_i64().unwrap();
            assert_eq!(t.get_id(pk).map(|id| t.aux(id)), t.get(pk));
        }
        assert!(t.get_id(250_000_000).is_some());
        assert!(t.get_id(123).is_none());
    }

    #[test]
    fn empty_aux_tables_work() {
        // Flight 1 joins carry no auxiliary columns — the probe is a filter.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut join = date_join_year(1993);
        join.aux.clear();
        let t = DimHashTable::build(&join, &dates).unwrap();
        assert_eq!(t.get(19930101).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_pk_is_rejected() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut doubled = dates.clone();
        // Duplicate a row that qualifies under the build predicate (1993);
        // non-qualifying duplicates are filtered before key insertion.
        let qualifying = dates
            .iter()
            .find(|r| r.at(4).as_i64() == Some(1993))
            .unwrap()
            .clone();
        doubled.push(qualifying);
        assert!(DimHashTable::build(&date_join_year(1993), &doubled).is_err());
    }

    #[test]
    fn build_all_for_q21() {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        assert_eq!(tables.tables.len(), 3);
        // Join order is date, part, supplier. Date is unfiltered.
        assert_eq!(tables.tables[0].len(), 2557);
        // Part filtered to category MFGR#12 (~1/25 of parts).
        let parts = data.part.len();
        let kept = tables.tables[1].len();
        assert!(kept > 0 && kept < parts / 10, "kept {kept} of {parts}");
        assert_eq!(
            tables.build_rows,
            (data.part.len() + data.supplier.len() + 2557) as u64
        );
        assert!(tables.mem_bytes > 0);
    }

    #[test]
    fn parallel_build_matches_sequential_accounting() {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q4.1").unwrap(); // four dimensions
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        // Sequential ground truth.
        let mut build_rows = 0u64;
        let mut mem_bytes = 0u64;
        for join in &q.joins {
            let rows = data.dimension(&join.dimension).unwrap();
            let t = DimHashTable::build(join, rows).unwrap();
            build_rows += t.rows_scanned;
            mem_bytes += t.mem_bytes;
        }
        assert_eq!(tables.build_rows, build_rows);
        assert_eq!(tables.mem_bytes, mem_bytes);
    }

    #[test]
    fn build_all_propagates_fetch_errors() {
        let q = query_by_id("Q2.1").unwrap();
        let r = DimTables::build_all(&q.joins, |_| Err(ClydeError::Dfs("cache miss".into())));
        assert!(r.is_err());
    }
}
