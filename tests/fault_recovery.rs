//! Recovery-transparency properties: under any *survivable* seeded fault
//! plan, a job's output is byte-identical to the fault-free run, and equally
//! deterministic — same seed, same recovery, same answer.
//!
//! Survivable means the plan leaves at least one live node and, for
//! DFS-resident inputs, at least one checksum-clean replica of every block
//! (replication 3 with at most one death guarantees that; injected task
//! failures are attempt-scoped and recoverable by construction).

use clyde_common::{row, rowcodec, Row};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::formats::{RowBinInputFormat, VecInputFormat};
use clyde_mapred::input::InputFormat;
use clyde_mapred::runner::{FnMapper, RowMapRunner};
use clyde_mapred::shuffle::FnReducer;
use clyde_mapred::{DatanodeDeath, Engine, FaultPlan, JobSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn sum_job(input: Arc<dyn InputFormat>, faults: Option<FaultPlan>) -> JobSpec {
    let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
        ctx.emit(&row![v.at(0).as_i64().unwrap() % 4], v.clone());
        Ok(())
    }));
    let mut spec = JobSpec::new("fault-prop", input, Arc::new(mapper));
    spec.reducer = Some(Arc::new(FnReducer(
        |k: &Row, values: &[Row], out: &mut Vec<Row>| {
            let s: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
            out.push(row![k.at(0).as_i64().unwrap(), s]);
            Ok(())
        },
    )));
    spec.num_reducers = 2;
    spec.faults = faults.map(Arc::new);
    spec
}

fn rows(n: i64) -> Vec<Row> {
    (1..=n).map(|i| row![i]).collect()
}

/// Build a plan from integer draws (the shim has no float strategies):
/// failure rate in [0, 1], up to `max_slow` slowed nodes, up to `max_dead`
/// distinct dead nodes, and a corruption count.
fn plan_from(seed: u64, rate_pct: u32, slow_n: usize, dead_n: usize, corrupt: u32) -> FaultPlan {
    let mut p = FaultPlan::new(seed);
    p.task_fail_rate = f64::from(rate_pct) / 100.0;
    p.slow_nodes = (0..slow_n).map(|i| (i, 1.5 + i as f64)).collect();
    p.datanode_deaths = (0..dead_n)
        .map(|i| DatanodeDeath {
            node: i,
            at_sim_s: (seed % 3) as f64,
        })
        .collect();
    p.corrupt_replicas = corrupt;
    p
}

fn run_mem(nodes: usize, faults: Option<FaultPlan>) -> Vec<Row> {
    let engine = Engine::new(Dfs::for_tests(nodes));
    let spec = sum_job(Arc::new(VecInputFormat::new(rows(12), 3)), faults);
    engine.run_job(&spec).unwrap().rows
}

/// A replication-3 cluster with the test rows stored as a DFS row-binary
/// file, so corruption and re-replication act on real blocks.
fn dfs_r3(nodes: usize) -> Arc<Dfs> {
    let dfs = Dfs::new(
        ClusterSpec::tiny(nodes),
        DfsOptions {
            block_size: 64,
            replication: 3,
            policy: Box::new(ColocatingPlacement),
        },
    );
    dfs.write_file("/in/part-00000", None, &rowcodec::write_rows(&rows(40)))
        .unwrap();
    dfs
}

fn run_dfs(dfs: &Arc<Dfs>, faults: Option<FaultPlan>) -> Vec<Row> {
    let engine = Engine::new(Arc::clone(dfs));
    let spec = sum_job(Arc::new(RowBinInputFormat::new("/in")), faults);
    engine.run_job(&spec).unwrap().rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memory-resident input on a 3-node cluster: any plan that leaves one
    /// node alive (deaths capped at 2) recovers to the fault-free answer.
    #[test]
    fn any_survivable_plan_is_transparent_for_memory_input(
        seed in any::<u64>(),
        rate_pct in 0u32..101,
        slow_n in 0usize..3,
        dead_n in 0usize..3,
        corrupt in 0u32..8,
    ) {
        let clean = run_mem(3, None);
        let plan = plan_from(seed, rate_pct, slow_n, dead_n, corrupt);
        let faulted = run_mem(3, Some(plan.clone()));
        prop_assert_eq!(&faulted, &clean);
        // Same seed, same recovery path, same answer.
        let again = run_mem(3, Some(plan));
        prop_assert_eq!(again, faulted);
    }

    /// DFS-resident input at replication 3: corruption plus at most one
    /// death always leaves a clean replica, so recovery stays transparent
    /// even while the namenode re-replicates mid-job.
    #[test]
    fn any_survivable_plan_is_transparent_for_dfs_input(
        seed in any::<u64>(),
        rate_pct in 0u32..101,
        slow_n in 0usize..3,
        dead_n in 0usize..2,
        corrupt in 0u32..32,
    ) {
        let clean = run_dfs(&dfs_r3(4), None);
        let plan = plan_from(seed, rate_pct, slow_n, dead_n, corrupt);
        // Fresh identically-loaded cluster per run: fault plans mutate DFS
        // state (corruption, deaths), so runs must not share one.
        let faulted = run_dfs(&dfs_r3(4), Some(plan.clone()));
        prop_assert_eq!(&faulted, &clean);
        let again = run_dfs(&dfs_r3(4), Some(plan));
        prop_assert_eq!(again, faulted);
    }
}

/// Every named CI-matrix plan is survivable on the matrix topology.
#[test]
fn all_named_plans_recover_on_the_matrix_topology() {
    let clean = run_dfs(&dfs_r3(4), None);
    for name in clyde_mapred::fault::NAMES {
        let plan = FaultPlan::named(name, 46).unwrap();
        let faulted = run_dfs(&dfs_r3(4), Some(plan));
        assert_eq!(faulted, clean, "plan `{name}` changed the answer");
    }
}

/// The failure detector reports, rather than hangs on, an unsurvivable plan.
#[test]
fn unsurvivable_plans_error_cleanly() {
    let mut plan = FaultPlan::new(9);
    plan.datanode_deaths = (0..3)
        .map(|node| DatanodeDeath {
            node,
            at_sim_s: 0.0,
        })
        .collect();
    let engine = Engine::new(Dfs::for_tests(3));
    let spec = sum_job(Arc::new(VecInputFormat::new(rows(12), 3)), Some(plan));
    let err = engine.run_job(&spec).unwrap_err();
    assert!(
        err.to_string().contains("no live node left to retry on"),
        "{err}"
    );
}
