//! A rolling data window: nightly roll-in of fresh orders, roll-out of the
//! oldest row groups — the fact-table maintenance story the paper contrasts
//! with Llama (Section 2) and lists as future work (Section 8).
//!
//! Each "night" appends a new batch of lineorder rows as immutable row
//! groups and retires the oldest groups; the same revenue query runs after
//! every maintenance cycle, always fully node-local.
//!
//! ```text
//! cargo run --example rolling_window --release
//! ```

use clyde_columnar::{roll_out, CifAppender, CifReader};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::sync::Arc;

fn main() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(4),
        DfsOptions {
            block_size: 4 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(0.005, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 3_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .expect("initial load");

    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    clyde.warm_dimension_cache().expect("warm");
    let query = query_by_id("Q1.1").expect("known query");

    println!("night  roll-in  roll-out  live-rows  groups  watermark  revenue(Q1.1)  local%");
    for night in 0..5u64 {
        // Roll in tonight's batch (a fresh generator seed per night).
        let mut appender =
            CifAppender::open(Arc::clone(&dfs), &layout.fact_cif()).expect("open appender");
        let mut rolled_in = 0u64;
        SsbGen::new(0.001, 1000 + night)
            .for_each_lineorder(|r| {
                rolled_in += 1;
                appender.append(r)
            })
            .expect("roll-in");
        appender.close().expect("publish batch");

        // Retire the oldest two groups once the table has grown enough.
        let meta = CifReader::open(&dfs, &layout.fact_cif())
            .expect("reader")
            .meta()
            .clone();
        let rolled_out = if meta.num_groups() > 8 {
            let dropped: u64 = meta.group_rows[..2].iter().sum();
            roll_out(&dfs, &layout.fact_cif(), 2).expect("roll-out");
            dropped
        } else {
            0
        };

        let meta = CifReader::open(&dfs, &layout.fact_cif())
            .expect("reader")
            .meta()
            .clone();
        let result = clyde.query(&query).expect("query");
        let revenue = result.rows.first().map_or(0, |r| r.at(0).as_i64().unwrap());
        println!(
            "{night:>5}  {rolled_in:>7}  {rolled_out:>8}  {:>9}  {:>6}  {:>9}  {revenue:>13}  {:>5.0}",
            meta.total_rows(),
            meta.num_groups(),
            meta.first_group,
            result.locality * 100.0,
        );
    }
    println!("\nno row group was ever rewritten: roll-in appends immutable groups,");
    println!("roll-out deletes whole groups and advances the watermark.");
}
