//! Feature flags — the knobs behind the paper's Section 6.5 ablation.

/// Which of Clydesdale's techniques are enabled. Defaults to all on (the
/// system as shipped); the Figure 9 ablation turns them off one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Columnar scans: read only the query's columns from CIF. Off = read
    /// every fact column (the paper measured a 3.4x average slowdown).
    pub columnar: bool,
    /// Block iteration (B-CIF): probe over column arrays. Off = materialize
    /// one row at a time (paper: ~1.2x slowdown).
    pub block_iteration: bool,
    /// Multi-threaded map tasks with shared hash tables and one task per
    /// node. Off = single-threaded tasks, one per slot, each building its
    /// own copy of the dimension hash tables (paper: ~2.4x slowdown, up to
    /// 4.5x on flight 4).
    pub multithreading: bool,
    /// JVM reuse: share hash tables across consecutive tasks on a node.
    /// Meaningful only when `multithreading` is on; off forces rebuilds.
    pub jvm_reuse: bool,
}

impl Default for Features {
    fn default() -> Features {
        Features {
            columnar: true,
            block_iteration: true,
            multithreading: true,
            jvm_reuse: true,
        }
    }
}

impl Features {
    pub fn all_on() -> Features {
        Features::default()
    }

    pub fn without_columnar() -> Features {
        Features {
            columnar: false,
            ..Features::default()
        }
    }

    pub fn without_block_iteration() -> Features {
        Features {
            block_iteration: false,
            ..Features::default()
        }
    }

    pub fn without_multithreading() -> Features {
        Features {
            multithreading: false,
            jvm_reuse: false,
            ..Features::default()
        }
    }

    /// Human-readable label used by the ablation harness.
    pub fn label(&self) -> &'static str {
        match (self.columnar, self.block_iteration, self.multithreading) {
            (true, true, true) => "all-on",
            (false, true, true) => "no-columnar",
            (true, false, true) => "no-block-iteration",
            (true, true, false) => "no-multithreading",
            _ => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_on() {
        let f = Features::default();
        assert!(f.columnar && f.block_iteration && f.multithreading && f.jvm_reuse);
        assert_eq!(f.label(), "all-on");
    }

    #[test]
    fn ablation_constructors() {
        assert!(!Features::without_columnar().columnar);
        assert!(!Features::without_block_iteration().block_iteration);
        let mt = Features::without_multithreading();
        assert!(!mt.multithreading && !mt.jvm_reuse);
        assert_eq!(mt.label(), "no-multithreading");
        assert_eq!(Features::without_columnar().label(), "no-columnar");
    }
}
