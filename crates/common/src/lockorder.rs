//! Lock-order-checking `Mutex`/`RwLock` wrappers (debug builds only).
//!
//! Deadlocks are the one concurrency bug the deterministic substrate cannot
//! replay its way out of: a cyclic lock acquisition may only bite under a
//! rare interleaving, long after the code that introduced it merged. This
//! module makes the *ordering discipline* checkable on every debug run:
//!
//! * every lock belongs to a **class**, identified by the source location of
//!   its `new()` call (so the per-node mutexes of `LocalStore` form one
//!   class, the DFS state lock another);
//! * each thread tracks the classes it currently holds;
//! * acquiring class `B` while holding class `A` records the edge `A → B` in
//!   a global acquisition graph; if `B` can already reach `A`, the two
//!   orders are inconsistent and the checker panics *at acquisition time* —
//!   even though this particular interleaving did not deadlock;
//! * re-acquiring the **same instance** on the same thread (a guaranteed
//!   self-deadlock for these non-reentrant primitives) panics immediately,
//!   except for `read()` after `read()`, which is merely hazardous and is
//!   left to the class-level graph.
//!
//! Known limitation: the graph works on classes, not instances, so nesting
//! two *different* instances of the same class (e.g. locking two per-node
//! maps at once) is reported as a self-cycle — such code must either be
//! redesigned to lock one instance at a time or carry an explicit
//! `allow(concurrency, reason=...)` pragma. `try_lock` records the hold (so later edges out
//! of it are seen) but inserts no edges itself: inconsistent-order
//! `try_lock` is a legitimate deadlock-*avoidance* pattern.
//!
//! In release builds every check compiles away; the wrappers are transparent
//! poison-free shells over `std::sync` (a poisoned lock yields its guard,
//! matching `parking_lot` semantics — the substrate treats a panicking
//! holder as a task failure, not as data corruption).

use std::fmt;
use std::sync::{self, TryLockError};

#[cfg(debug_assertions)]
use std::panic::Location;

#[cfg(debug_assertions)]
mod track {
    use super::Location;
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};

    /// A lock class: the source location of the wrapper's constructor call.
    pub(super) type Class = &'static Location<'static>;

    /// Orderable key for a class (Location is not Ord).
    type ClassKey = (&'static str, u32, u32);

    fn key(c: Class) -> ClassKey {
        (c.file(), c.line(), c.column())
    }

    /// How a hold was taken; shared read holds of one instance may coexist.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(super) enum Access {
        Shared,
        Exclusive,
    }

    struct HeldEntry {
        token: u64,
        class: Class,
        instance: usize,
        access: Access,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
    }

    /// `from → {to}` acquisition edges observed so far, workspace-global.
    static GRAPH: sync::Mutex<Option<BTreeMap<ClassKey, BTreeSet<ClassKey>>>> =
        sync::Mutex::new(None);

    use std::sync;

    fn with_graph<R>(f: impl FnOnce(&mut BTreeMap<ClassKey, BTreeSet<ClassKey>>) -> R) -> R {
        let mut g = match GRAPH.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        f(g.get_or_insert_with(BTreeMap::new))
    }

    /// Is `to` reachable from `from` over recorded edges?
    fn reaches(
        graph: &BTreeMap<ClassKey, BTreeSet<ClassKey>>,
        from: ClassKey,
        to: ClassKey,
    ) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = graph.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Popped on drop; removal is by token so guards may drop in any order.
    pub(super) struct Held {
        token: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            let token = self.token;
            // Ignore access errors during thread teardown: if the
            // thread-local was already destroyed there is nothing to pop.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().position(|e| e.token == token) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Record an acquisition of `class` on this thread and enforce ordering.
    /// `check_edges` is false for try-acquires.
    pub(super) fn acquire(
        class: Class,
        instance: usize,
        access: Access,
        check_edges: bool,
    ) -> Held {
        let token = NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            *t += 1;
            *t
        });
        let mut cycle: Option<(Class, ClassKey)> = None;
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for e in held.iter() {
                if e.instance == instance
                    && !(e.access == Access::Shared && access == Access::Shared)
                {
                    panic!(
                        "lock-order checker: recursive acquisition of the lock \
                         constructed at {class} on one thread (guaranteed deadlock)",
                    );
                }
            }
            if check_edges {
                let to = key(class);
                for e in held.iter() {
                    if e.instance == instance {
                        // Same instance, shared-shared: no ordering edge.
                        continue;
                    }
                    let from = key(e.class);
                    if from == to {
                        // Same-class instance nesting: indistinguishable from
                        // a self-cycle at class granularity (module docs).
                        cycle = Some((e.class, to));
                        break;
                    }
                    let closes = with_graph(|g| {
                        if g.get(&from).is_some_and(|s| s.contains(&to)) {
                            return false; // already recorded, already acyclic
                        }
                        if reaches(g, to, from) {
                            return true;
                        }
                        g.entry(from).or_default().insert(to);
                        false
                    });
                    if closes {
                        cycle = Some((e.class, to));
                        break;
                    }
                }
            }
            if cycle.is_none() {
                held.push(HeldEntry {
                    token,
                    class,
                    instance,
                    access,
                });
            }
        });
        if let Some((holding, _)) = cycle {
            panic!(
                "lock-order checker: acquiring the lock constructed at {class} while \
                 holding the one from {holding} inverts an acquisition order already \
                 observed elsewhere (potential deadlock cycle)",
            );
        }
        Held { token }
    }
}

/// A mutual-exclusion lock whose acquisition order is checked in debug builds.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static Location<'static>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock (and the checker's hold
/// record) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: track::Held,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(debug_assertions)]
            class: Location::caller(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(debug_assertions)]
    fn instance(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = track::acquire(self.class, self.instance(), track::Access::Exclusive, true);
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let held = track::acquire(self.class, self.instance(), track::Access::Exclusive, false);
        Some(MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: held,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose acquisition order is checked in debug builds.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static Location<'static>,
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: track::Held,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: track::Held,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(debug_assertions)]
            class: Location::caller(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(debug_assertions)]
    fn instance(&self) -> usize {
        self as *const RwLock<T> as *const () as usize
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = track::acquire(self.class, self.instance(), track::Access::Shared, true);
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = track::acquire(self.class, self.instance(), track::Access::Exclusive, true);
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn consistent_nesting_is_fine() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            drop(ga); // out-of-order *release* is fine
            drop(gb);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "recursive acquisition")]
    fn recursive_lock_panics() {
        let m = Mutex::new(0);
        let _g = m.lock();
        let _g2 = m.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "inverts an acquisition order")]
    fn inverted_order_panics() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let _ga = a.lock(); // closes the cycle: a → b recorded, now b → a
    }

    #[cfg(debug_assertions)]
    #[test]
    fn shared_reads_of_one_instance_coexist() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
    }
}
