//! D002 fixture: wall-clock read outside the wall-phase module.
//! This file is NOT compiled; `clyde-lint --self-test` must flag it.

pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
