//! Replay the seeded mixed-tenant workload under every scheduling policy
//! and report throughput plus per-tenant latency percentiles.
//!
//! Usage: `workload [SF] [--seed <n>] [--json PATH] [--report PATH] [--gate PATH]`
//! (default SF 0.005, seed 46).
//!
//! * `--json PATH` writes the runs as the committed-gate JSON document
//!   (see `BENCH_workload.json` at the repo root for a committed run).
//! * `--report PATH` writes the human-readable latency report (uploaded
//!   as the CI `workload-gate` artifact).
//! * `--gate PATH` reads a committed run and **fails (exit 1)** unless
//!   fair scheduling beats FIFO on the starved tenant's p99 and every
//!   policy's throughput stays within 0.95x of its committed value.
//!
//! Query execution is real; the multi-job timeline is deterministic
//! simulated time, so the reported numbers are byte-stable across reruns
//! and machines.

use clyde_bench::workload;
use clyde_mapred::SchedPolicy;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: workload [SF] [--seed <n>] [--json PATH] [--report PATH] [--gate PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut sf = 0.005;
    let mut seed = 46u64;
    let mut json_path = None;
    let mut report_path = None;
    let mut gate_path = None;
    let mut dump = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage("--seed needs an integer"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage("--json needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => usage("--report needs a path"),
            },
            "--gate" => match args.next() {
                Some(p) => gate_path = Some(p),
                None => usage("--gate needs a path"),
            },
            "--dump" => dump = true,
            "--help" | "-h" => usage(""),
            other => match other.parse::<f64>() {
                Ok(v) if v > 0.0 => sf = v,
                _ => usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }

    eprintln!("loading SSB at SF {sf} (seed {seed}) on the workload cluster...");
    let clyde = workload::build_clyde(sf, seed, None, None)
        .unwrap_or_else(|e| panic!("workload cluster setup failed: {e}"));
    let arrivals = workload::scenario(seed);
    eprintln!(
        "replaying {} submissions from {} tenants under {} policies...",
        arrivals.len(),
        workload::TENANTS.len(),
        SchedPolicy::all().len()
    );

    let mut runs = Vec::new();
    for policy in SchedPolicy::all() {
        let run = workload::run_policy(&clyde, &arrivals, policy)
            .unwrap_or_else(|e| panic!("{} replay failed: {e}", policy.label()));
        eprintln!(
            "  {}: {} jobs in {:.1}s simulated ({:.2} jobs/min)",
            policy.label(),
            run.served.len(),
            run.makespan_s,
            run.throughput_jobs_per_min
        );
        if dump {
            for s in &run.served {
                eprintln!(
                    "    {:<7} {:<5} arrive {:>7.2}  start {:>7.2}  finish {:>7.2}  \
                     latency {:>7.2}",
                    s.tenant,
                    s.query_id,
                    s.arrival_s,
                    s.start_s,
                    s.finish_s,
                    s.latency_s()
                );
            }
        }
        runs.push(run);
    }

    let report = workload::render_report(sf, seed, &runs);
    print!("{report}");
    if let Some(path) = report_path {
        std::fs::write(&path, &report).expect("write report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = json_path {
        std::fs::write(&path, workload::to_json(sf, seed, &runs)).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = gate_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate file {path}: {e}"));
        match workload::gate(&runs, &committed) {
            Ok(()) => eprintln!("workload gate passed"),
            Err(violations) => {
                for v in &violations {
                    eprintln!("gate FAIL: {v}");
                }
                eprintln!("workload gate FAILED");
                std::process::exit(1);
            }
        }
    }
}
