//! D007 fixture: panic-capable sites on the recovery surface. The
//! self-test scans this file *as* `crates/mapred/src/fault.rs` (a
//! whole-file recovery module), so the scope plumbing itself is exercised.
//! This file is NOT compiled.

/// Unchecked indexing: panics on an empty replica set — exactly the state
/// re-replication runs in.
pub fn pick_replacement(live: &[u32]) -> u32 {
    live[0]
}

/// `.expect` aborts the job instead of degrading to a typed error.
pub fn commit(best: Option<u32>) -> u32 {
    best.expect("a winner was chosen")
}

/// `panic!` on a budget miss turns a survivable fault into a crash.
pub fn seed_for(attempt: u32) -> u64 {
    if attempt > 8 {
        panic!("attempt budget exhausted");
    }
    u64::from(attempt)
}

/// Checked access is the sanctioned shape — must NOT be flagged.
pub fn checked(live: &[u32]) -> Option<u32> {
    live.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_test_code_are_fine() {
        super::checked(&[1, 2]).unwrap();
    }
}
