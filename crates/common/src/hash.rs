//! Fx-style fast hashing.
//!
//! The dimension hash tables at the heart of Clydesdale's star join are keyed
//! by integer primary keys and probed once per fact row — hundreds of
//! millions of probes per query. SipHash (std's default) would dominate the
//! probe cost, so we use the multiply-and-rotate "Fx" construction that rustc
//! uses. Implemented locally (~40 lines) to avoid a dependency; HashDoS is
//! not a concern for trusted benchmark data.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc "Fx" hasher: wrapping multiply by a constant and a
/// 5-bit rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the remainder length so "a" and "a\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_to_hash(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fx(42u64), fx(42u64));
        assert_eq!(fx("customer"), fx("customer"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx(1u64), fx(2u64));
        assert_ne!(fx("a"), fx("b"));
        assert_ne!(fx("a"), fx("a\0"));
        assert_ne!(fx([1u8, 2, 3].as_slice()), fx([1u8, 2, 3, 0].as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<i32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<i64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn spread_over_sequential_keys() {
        // Sequential integer keys (dimension PKs) must not collide in the low
        // bits, or hashbrown bucket selection degenerates.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0..1024u64 {
            low_bits.insert(fx(k) >> 54); // top 10 bits, which hashbrown uses
        }
        // Expect substantial diversity (not a strict uniformity test).
        assert!(low_bits.len() > 200, "got {}", low_bits.len());
    }
}
