//! Figure 9 / Section 6.5 — the feature ablation on cluster A, SF1000.
//!
//! Runs Clydesdale with each technique disabled (block iteration, columnar
//! storage, multi-threaded tasks), validating that results never change,
//! and reports the slowdown each ablation causes per query and per flight.
//!
//! Paper's findings to reproduce: block iteration off ≈ 1.2x; columnar off
//! ≈ 3.4x average (flight 2 ≈ 3.8x, flight 4 ≈ 2.0x); multithreading off
//! ≈ 2.4x average (flight 1 ≈ 1.2x, flight 4 ≈ 4.5x).

use clyde_bench::harness::{
    measure_with_obs, Ablation, Extrapolator, MeasureWhat, MeasurementConfig,
};
use clyde_bench::paper;
use clyde_bench::report::{render_table, speedup};
use clyde_dfs::ClusterSpec;
use std::sync::Arc;

fn main() {
    let args = clyde_bench::cli::parse("fig9_ablation", 0.02);
    let sf = args.sf;
    let obs = args.obs();
    let config = MeasurementConfig {
        sf,
        ..MeasurementConfig::default()
    };
    eprintln!(
        "measuring all 13 SSB queries at SF {sf} under 6 feature configurations, validating results..."
    );
    let m = measure_with_obs(
        &config,
        MeasureWhat {
            hive: false,
            ablations: true,
        },
        Arc::clone(&obs),
    )
    .expect("measurement failed");
    args.write_trace(&obs);
    let ex = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, &m);

    let ablations = [
        Ablation::NoBlockIteration,
        Ablation::NoColumnar,
        Ablation::NoMultithreading,
        Ablation::NoVectorized,
        Ablation::NoZoneSkipping,
    ];
    let mut rows = Vec::new();
    // slowdown sums per (ablation, flight)
    let mut flight_sum = [[0.0f64; 5]; 5];
    let mut flight_n = [[0usize; 5]; 5];
    let mut zone_rows = Vec::new();
    for qm in &m.queries {
        let base = ex.clyde_time(qm).expect("baseline never OOMs");
        let mut cells = vec![qm.query.id.clone(), clyde_bench::report::secs(base)];
        let flight = paper::flight_of(&qm.query.id);
        for (ai, ab) in ablations.iter().enumerate() {
            let t = ex.ablation_time(qm, *ab).expect("ablations never OOM");
            let slowdown = t / base;
            cells.push(speedup(slowdown));
            flight_sum[ai][flight] += slowdown;
            flight_n[ai][flight] += 1;
        }
        rows.push(cells);

        // Zone-map pruning observed at measurement scale (the counters ride
        // the cost profile but are never priced — pruning shows up as fewer
        // scanned bytes in the baseline column instead).
        let c = qm.clyde.total_map_cost();
        if c.zone_checked > 0 {
            zone_rows.push(vec![
                qm.query.id.clone(),
                c.zone_checked.to_string(),
                c.zone_skipped.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * c.zone_skipped as f64 / c.zone_checked as f64
                ),
            ]);
        }
    }

    println!("\nFigure 9: feature ablation, cluster A, SF1000 (slowdown vs all features on)\n");
    println!(
        "{}",
        render_table(
            &[
                "query",
                "baseline",
                "block-iter off",
                "columnar off",
                "multithreading off",
                "vectorized off",
                "zone skip off",
            ],
            &rows,
        )
    );

    if !zone_rows.is_empty() {
        println!("zone-map pruning in the baseline (measurement scale):\n");
        println!(
            "{}",
            render_table(
                &["query", "groups checked", "skipped", "pruned"],
                &zone_rows
            )
        );
    }

    println!("per-flight average slowdowns:");
    let labels = [
        "block iteration off",
        "columnar off",
        "multithreading off",
        "vectorized probe off",
        "zone skipping off",
    ];
    for (ai, label) in labels.iter().enumerate() {
        let mut parts = Vec::new();
        let mut total = 0.0;
        let mut n = 0;
        for f in 1..=4 {
            if flight_n[ai][f] > 0 {
                let avg = flight_sum[ai][f] / flight_n[ai][f] as f64;
                parts.push(format!("flight{f} {avg:.1}x"));
                total += flight_sum[ai][f];
                n += flight_n[ai][f];
            }
        }
        println!(
            "  {label:<22} {}  overall {:.1}x",
            parts.join("  "),
            total / n as f64
        );
    }
    println!(
        "\npaper reports: block iteration off ≈ {:.1}x;",
        paper::ablation::BLOCK_ITERATION_AVG
    );
    println!(
        "               columnar off ≈ {:.1}x avg (flight2 {:.1}x, flight4 {:.1}x);",
        paper::ablation::COLUMNAR_AVG,
        paper::ablation::COLUMNAR_FLIGHT2,
        paper::ablation::COLUMNAR_FLIGHT4
    );
    println!(
        "               multithreading off ≈ {:.1}x avg (flight1 {:.1}x, flight4 {:.1}x)",
        paper::ablation::MULTITHREADING_AVG,
        paper::ablation::MULTITHREADING_FLIGHT1,
        paper::ablation::MULTITHREADING_FLIGHT4
    );
}
