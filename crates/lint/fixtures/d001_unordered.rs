//! D001 fixture: unordered hash-container iteration leaking into output.
//! This file is NOT compiled; `clyde-lint --self-test` must flag it.

use std::collections::HashMap;

pub fn report(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k} = {v}\n"));
    }
    out
}
