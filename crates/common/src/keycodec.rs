//! Order-preserving ("memcomparable") binary encoding of rows.
//!
//! MapReduce's shuffle sorts map outputs by key bytes. For the sort order to
//! match SQL semantics (the group-by keys and the final ORDER BY), the key
//! encoding must satisfy `encode(a) < encode(b) ⇔ a < b` under plain byte
//! comparison. This module provides that encoding for [`Row`]s of [`Datum`]s,
//! mirroring what Hadoop achieves with `WritableComparable` keys.
//!
//! Encoding per datum (one tag byte, then the payload):
//!
//! * `NULL` → `0x00` (sorts first, matching [`Datum`]'s `Ord`)
//! * integers → `0x01` + big-endian `i64` with the sign bit flipped
//!   (`I32` widens to `I64`, matching `Datum`'s cross-width comparison)
//! * `F64` → `0x02` + IEEE-754 bits transformed for total order
//! * `Str` → `0x03` + bytes with `0x00` escaped as `0x00 0xFF`, terminated by
//!   `0x00 0x00` (so prefixes sort before extensions)
//!
//! Decoding recovers integer datums as `I64`; `Datum`'s coercing equality
//! makes this invisible to result comparison.

use crate::datum::Datum;
use crate::error::{ClydeError, Result};
use crate::row::Row;

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_F64: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Append the order-preserving encoding of `d` to `out`.
pub fn encode_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(TAG_NULL),
        Datum::I32(v) => encode_int(out, i64::from(*v)),
        Datum::I64(v) => encode_int(out, *v),
        Datum::F64(v) => {
            out.push(TAG_F64);
            let bits = v.to_bits();
            // IEEE-754 total-order transform: negative floats get all bits
            // flipped, non-negative floats get the sign bit flipped.
            let ordered = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Datum::Str(s) => {
            out.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

fn encode_int(out: &mut Vec<u8>, v: i64) {
    out.push(TAG_INT);
    out.extend_from_slice(&((v as u64) ^ (1 << 63)).to_be_bytes());
}

/// Encode a whole row; fields concatenate, so rows sort lexicographically by
/// field, and a row that is a prefix of another sorts first.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for d in row.iter() {
        encode_datum(&mut out, d);
    }
    out
}

/// Decode one datum from `buf` at `*pos`, advancing `*pos`.
pub fn decode_datum(buf: &[u8], pos: &mut usize) -> Result<Datum> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| ClydeError::Format("keycodec: empty buffer".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Datum::Null),
        TAG_INT => {
            let raw = take8(buf, pos)?;
            Ok(Datum::I64((u64::from_be_bytes(raw) ^ (1 << 63)) as i64))
        }
        TAG_F64 => {
            let raw = take8(buf, pos)?;
            let ordered = u64::from_be_bytes(raw);
            let bits = if ordered & (1 << 63) != 0 {
                ordered ^ (1 << 63)
            } else {
                !ordered
            };
            Ok(Datum::F64(f64::from_bits(bits)))
        }
        TAG_STR => {
            let mut bytes = Vec::new();
            loop {
                let b = *buf
                    .get(*pos)
                    .ok_or_else(|| ClydeError::Format("keycodec: unterminated string".into()))?;
                *pos += 1;
                if b != 0x00 {
                    bytes.push(b);
                    continue;
                }
                let next = *buf
                    .get(*pos)
                    .ok_or_else(|| ClydeError::Format("keycodec: truncated escape".into()))?;
                *pos += 1;
                match next {
                    0x00 => break,
                    0xFF => bytes.push(0x00),
                    _ => return Err(ClydeError::Format("keycodec: invalid string escape".into())),
                }
            }
            let s = String::from_utf8(bytes)
                .map_err(|_| ClydeError::Format("keycodec: invalid utf-8".into()))?;
            Ok(Datum::from(s))
        }
        other => Err(ClydeError::Format(format!(
            "keycodec: unknown tag {other:#x}"
        ))),
    }
}

/// Decode a full row (reads datums until the buffer is exhausted).
pub fn decode_row(buf: &[u8]) -> Result<Row> {
    let mut pos = 0;
    let mut row = Row::empty();
    while pos < buf.len() {
        row.push(decode_datum(buf, &mut pos)?);
    }
    Ok(row)
}

fn take8(buf: &[u8], pos: &mut usize) -> Result<[u8; 8]> {
    let end = *pos + 8;
    let slice = buf
        .get(*pos..end)
        .ok_or_else(|| ClydeError::Format("keycodec: truncated payload".into()))?;
    *pos = end;
    Ok(slice.try_into().expect("slice length checked"))
}

/// Encode a row where some fields must sort descending.
///
/// The SSB queries in flight 3 ORDER BY `d_year asc, revenue desc`; to keep
/// the final sort a plain byte sort, descending fields are encoded with all
/// payload bytes complemented.
pub fn encode_row_with_directions(row: &Row, descending: &[bool]) -> Vec<u8> {
    debug_assert_eq!(row.len(), descending.len());
    let mut out = Vec::with_capacity(row.len() * 9);
    for (d, &desc) in row.iter().zip(descending) {
        let start = out.len();
        encode_datum(&mut out, d);
        if desc {
            for b in &mut out[start..] {
                *b = !*b;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use proptest::prelude::*;

    #[test]
    fn int_order_preserved() {
        let vals = [i64::MIN, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            let a = encode_row(&row![w[0]]);
            let b = encode_row(&row![w[1]]);
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn cross_width_ints_encode_identically() {
        assert_eq!(encode_row(&row![42i32]), encode_row(&row![42i64]));
    }

    #[test]
    fn string_prefix_sorts_first() {
        assert!(encode_row(&row!["MFGR#12"]) < encode_row(&row!["MFGR#122"]));
        assert!(encode_row(&row!["ASIA"]) < encode_row(&row!["EUROPE"]));
    }

    #[test]
    fn embedded_nul_roundtrip_and_order() {
        let a = Datum::str("a\0b");
        let b = Datum::str("a\0c");
        let mut ea = Vec::new();
        encode_datum(&mut ea, &a);
        let mut eb = Vec::new();
        encode_datum(&mut eb, &b);
        assert!(ea < eb);
        let mut pos = 0;
        assert_eq!(decode_datum(&ea, &mut pos).unwrap(), a);
    }

    #[test]
    fn null_sorts_before_everything() {
        let null = encode_row(&Row::new(vec![Datum::Null]));
        assert!(null < encode_row(&row![i64::MIN]));
        assert!(null < encode_row(&row![""]));
        assert!(null < encode_row(&row![f64::NEG_INFINITY]));
    }

    #[test]
    fn row_prefix_sorts_first() {
        assert!(encode_row(&row![1i64]) < encode_row(&row![1i64, 0i64]));
    }

    #[test]
    fn roundtrip_mixed_row() {
        let r = row![7i64, "ASIA", 3.5f64];
        let decoded = decode_row(&encode_row(&r)).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn descending_direction_flips_order() {
        let asc_small = encode_row_with_directions(&row![1992i64, 10i64], &[false, true]);
        let asc_big = encode_row_with_directions(&row![1992i64, 99i64], &[false, true]);
        // revenue desc: bigger revenue sorts first
        assert!(asc_big < asc_small);
        // but year asc still dominates
        let y93 = encode_row_with_directions(&row![1993i64, 999i64], &[false, true]);
        assert!(asc_small < y93);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(decode_row(&[TAG_INT, 1, 2]).is_err());
        assert!(decode_row(&[TAG_STR, b'a']).is_err());
        assert!(decode_row(&[0x77]).is_err());
        assert!(decode_row(&[TAG_STR, 0x00, 0x33]).is_err());
    }

    fn arb_datum() -> impl Strategy<Value = Datum> {
        prop_oneof![
            Just(Datum::Null),
            any::<i64>().prop_map(Datum::I64),
            any::<f64>().prop_map(Datum::F64),
            "[a-zA-Z0-9#\\x00 ]{0,12}".prop_map(Datum::from),
        ]
    }

    fn arb_row() -> impl Strategy<Value = Row> {
        proptest::collection::vec(arb_datum(), 0..5).prop_map(Row::new)
    }

    proptest! {
        #[test]
        fn encoding_preserves_row_order(a in arb_row(), b in arb_row()) {
            let ea = encode_row(&a);
            let eb = encode_row(&b);
            prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
        }

        #[test]
        fn roundtrip(a in arb_row()) {
            let decoded = decode_row(&encode_row(&a)).unwrap();
            // Coercing equality: I32 comes back as I64, values compare equal.
            prop_assert_eq!(decoded, a);
        }
    }
}
