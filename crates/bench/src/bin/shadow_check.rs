//! Shadow dual-run determinism harness.
//!
//! Usage: `shadow_check [measurement-sf] [--seed <n>] [--queries <id,id,...>]`
//! (default SF 0.008, seed 46, queries Q1.1 and Q2.1).
//!
//! The static pass (`clyde-lint`) proves nobody *wrote* nondeterministic
//! code; this binary proves nothing nondeterministic *executes*. For each
//! query it runs the full stack — fresh simulated cluster, SSB load, warm
//! cache, query with observability on — and captures three artifacts:
//!
//! 1. the serialized result rows,
//! 2. the Chrome trace JSON (simulated time only, by construction),
//! 3. the rendered metrics snapshot with wall-clock metrics filtered out.
//!
//! Each job is executed under four configurations: twice identically (the
//! dual run — catches anything seeded from ambient state), then with the
//! `MtMapRunner` host thread count forced to 1, 2, and 8 while the cost
//! model keeps pricing with the cluster's map slots. Every configuration
//! must produce byte-identical artifacts; any diff is printed and the
//! process exits non-zero, which is what the CI `static-analysis` job gates
//! on.
//!
//! `--workload` switches from single solo queries to the seeded
//! mixed-tenant stream of `clyde_bench::workload` replayed through the
//! multi-job server under fair scheduling (defaults: SF 0.005, seed 46) —
//! the same dual-run and host-thread sweep, proving that *multi-job
//! interleaving* is byte-identical too: every served query's rows, the
//! server-run swimlanes in the Chrome trace, and the `scheduler.*`
//! metrics.
//!
//! `--restore` replays the cold-then-warm stream of `clyde_bench::restore`
//! with the result cache on — the same dual-run and host-thread sweep over
//! both passes, proving the cache is thread-count invariant: every served
//! query's rows (cold and warm), the served-from-cache spans in the trace,
//! and the `cache.*` hit/miss/evict/bytes metrics.

use clyde_bench::harness::{measurement_cluster, MeasurementConfig};
use clyde_bench::{restore, workload};
use clyde_common::{Obs, Result};
use clyde_dfs::{ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::SchedPolicy;
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::queries::StarQuery;
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::process::ExitCode;
use std::sync::Arc;

/// The deterministic artifacts of one full query execution.
struct Artifacts {
    results: Vec<u8>,
    trace: String,
    metrics: String,
}

/// Drop metric lines that are wall-clock-derived (observability-only, the
/// single sanctioned nondeterminism in a snapshot).
fn filter_wall(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| {
            !l.split('=')
                .next()
                .is_some_and(|name| name.contains("wall"))
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

fn run_once(
    config: &MeasurementConfig,
    query: &StarQuery,
    host_threads: Option<u32>,
) -> Result<Artifacts> {
    let cluster = measurement_cluster(config.workers);
    let dfs = Dfs::new(
        cluster,
        DfsOptions {
            block_size: 8 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(config.sf, config.seed),
        &layout,
        &loader::LoadOpts {
            rows_per_group: config.rows_per_group,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )?;
    let obs = Obs::enabled();
    let mut clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    if let Some(t) = host_threads {
        clyde = clyde.with_host_threads(t);
    }
    clyde.warm_dimension_cache()?;
    let r = clyde.query(query)?;
    Ok(Artifacts {
        results: clyde_common::rowcodec::write_rows(&r.rows),
        trace: obs.chrome_trace(),
        metrics: filter_wall(&obs.metrics().snapshot().render()),
    })
}

/// One full replay of the mixed-tenant workload through the multi-job
/// server (fair policy), reduced to the same three artifacts: all served
/// rows in submission order, the trace (solo query spans plus the server
/// run's per-tenant swimlanes), and the metrics snapshot including the
/// `scheduler.*` queue/latency series.
fn run_workload_once(config: &MeasurementConfig, host_threads: Option<u32>) -> Result<Artifacts> {
    let obs = Obs::enabled();
    let clyde =
        workload::build_clyde(config.sf, config.seed, Some(Arc::clone(&obs)), host_threads)?;
    let arrivals = workload::scenario(config.seed);
    let run = workload::run_policy(&clyde, &arrivals, SchedPolicy::Fair)?;
    let mut results = Vec::new();
    for s in &run.served {
        results.extend_from_slice(&clyde_common::rowcodec::write_rows(&s.rows));
    }
    Ok(Artifacts {
        results,
        trace: obs.chrome_trace(),
        metrics: filter_wall(&obs.metrics().snapshot().render()),
    })
}

/// One cold-then-warm replay against the result cache, reduced to the
/// same three artifacts: all served rows (cold pass then warm pass, in
/// submission order), the trace (including the served-from-cache spans),
/// and the metrics snapshot including the `cache.*` series.
fn run_restore_once(config: &MeasurementConfig, host_threads: Option<u32>) -> Result<Artifacts> {
    let obs = Obs::enabled();
    let report = restore::run(config.sf, config.seed, Some(Arc::clone(&obs)), host_threads)?;
    let mut results = Vec::new();
    for s in report.cold.run.served.iter().chain(&report.warm.run.served) {
        results.extend_from_slice(&clyde_common::rowcodec::write_rows(&s.rows));
    }
    Ok(Artifacts {
        results,
        trace: obs.chrome_trace(),
        metrics: filter_wall(&obs.metrics().snapshot().render()),
    })
}

/// Compare `got` against `want`; report which artifact diverged.
fn diff(label: &str, want: &Artifacts, got: &Artifacts) -> bool {
    let mut ok = true;
    if want.results != got.results {
        eprintln!("shadow_check: FAIL [{label}]: result rows diverged");
        ok = false;
    }
    if want.trace != got.trace {
        let at = want
            .trace
            .lines()
            .zip(got.trace.lines())
            .position(|(a, b)| a != b);
        eprintln!(
            "shadow_check: FAIL [{label}]: simulated-time trace diverged \
             (first differing line: {at:?})"
        );
        ok = false;
    }
    if want.metrics != got.metrics {
        eprintln!("shadow_check: FAIL [{label}]: metric snapshot diverged");
        for (a, b) in want.metrics.lines().zip(got.metrics.lines()) {
            if a != b {
                eprintln!("  baseline: {a}\n  shadow:   {b}");
            }
        }
        ok = false;
    }
    ok
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: shadow_check [measurement-sf] [--seed <n>] [--queries <id,id,...>] \
         [--workload] [--restore]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Host thread counts to force through `MtMapRunner`. The cost model prices
/// with the cluster's map slots regardless, so artifacts must not move.
const THREAD_COUNTS: [u32; 3] = [1, 2, 8];

fn main() -> ExitCode {
    let mut config = MeasurementConfig {
        sf: 0.008,
        validate: false,
        ..MeasurementConfig::default()
    };
    let mut query_ids = vec!["Q1.1".to_string(), "Q2.1".to_string()];
    let mut workload_mode = false;
    let mut restore_mode = false;
    let mut sf_given = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => config.seed = s,
                None => usage("--seed needs an integer"),
            },
            "--queries" => match args.next() {
                Some(list) => query_ids = list.split(',').map(|s| s.trim().to_string()).collect(),
                None => usage("--queries needs a comma-separated list"),
            },
            "--workload" => workload_mode = true,
            "--restore" => restore_mode = true,
            "--help" | "-h" => usage(""),
            other => match other.parse::<f64>() {
                Ok(v) if v > 0.0 => {
                    config.sf = v;
                    sf_given = true;
                }
                _ => usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }

    if workload_mode || restore_mode {
        // These modes replay the full 31-job stream per run; default to
        // the workload bench's own scale factor unless one was given
        // explicitly.
        if !sf_given {
            config.sf = 0.005;
        }
        return if restore_mode {
            check_restore(&config)
        } else {
            check_workload(&config)
        };
    }

    let mut failed = false;
    for id in &query_ids {
        let Ok(query) = query_by_id(id) else {
            usage(&format!("unknown query `{id}`"));
        };
        let baseline = match run_once(&config, &query, None) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("shadow_check: {id} baseline run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        // 1. Dual run: identical configuration, fresh cluster and state.
        match run_once(&config, &query, None) {
            Ok(shadow) => {
                if diff(&format!("{id} rerun"), &baseline, &shadow) {
                    println!("shadow_check: OK {id}: dual run byte-identical");
                } else {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("shadow_check: {id} shadow run failed: {e}");
                failed = true;
            }
        }
        // 2. Host-thread variance: real parallelism must not be observable.
        for t in THREAD_COUNTS {
            match run_once(&config, &query, Some(t)) {
                Ok(shadow) => {
                    if diff(&format!("{id} host-threads={t}"), &baseline, &shadow) {
                        println!("shadow_check: OK {id}: host-threads={t} byte-identical");
                    } else {
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("shadow_check: {id} host-threads={t} run failed: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("shadow_check: OK — all runs byte-identical across reruns and thread counts");
        ExitCode::SUCCESS
    }
}

/// The `--workload` mode: dual-run the concurrent mixed-tenant workload,
/// then sweep the host thread count — multi-job interleaving must be
/// byte-identical everywhere.
fn check_workload(config: &MeasurementConfig) -> ExitCode {
    let mut failed = false;
    let baseline = match run_workload_once(config, None) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shadow_check: workload baseline run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_workload_once(config, None) {
        Ok(shadow) => {
            if diff("workload rerun", &baseline, &shadow) {
                println!("shadow_check: OK workload: dual run byte-identical");
            } else {
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("shadow_check: workload shadow run failed: {e}");
            failed = true;
        }
    }
    for t in THREAD_COUNTS {
        match run_workload_once(config, Some(t)) {
            Ok(shadow) => {
                if diff(&format!("workload host-threads={t}"), &baseline, &shadow) {
                    println!("shadow_check: OK workload: host-threads={t} byte-identical");
                } else {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("shadow_check: workload host-threads={t} run failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "shadow_check: OK — concurrent workload byte-identical across reruns and thread counts"
        );
        ExitCode::SUCCESS
    }
}

/// The `--restore` mode: dual-run the cold-then-warm cached replay, then
/// sweep the host thread count — the result cache (hits, fills, evictions,
/// `cache.*` metrics, served-from-cache spans) must be byte-identical
/// everywhere.
fn check_restore(config: &MeasurementConfig) -> ExitCode {
    let mut failed = false;
    let baseline = match run_restore_once(config, None) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shadow_check: restore baseline run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_restore_once(config, None) {
        Ok(shadow) => {
            if diff("restore rerun", &baseline, &shadow) {
                println!("shadow_check: OK restore: dual run byte-identical");
            } else {
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("shadow_check: restore shadow run failed: {e}");
            failed = true;
        }
    }
    for t in THREAD_COUNTS {
        match run_restore_once(config, Some(t)) {
            Ok(shadow) => {
                if diff(&format!("restore host-threads={t}"), &baseline, &shadow) {
                    println!("shadow_check: OK restore: host-threads={t} byte-identical");
                } else {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("shadow_check: restore host-threads={t} run failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "shadow_check: OK — cached cold/warm replay byte-identical across reruns \
             and thread counts"
        );
        ExitCode::SUCCESS
    }
}
