//! D005 fixture: metric names must be string literals in a registered
//! namespace (`mapred.*`, `dfs.*`, `scheduler.*`, `probe.*`).

struct Metrics;
impl Metrics {
    fn add(&self, _name: &str, _delta: u64) {}
}

fn emit(m: &Metrics, dynamic: &str) {
    // Wrong namespace: `clyde.*` was retired when the engine metrics moved
    // under `mapred.*`.
    m.counter_add("clyde.queries", 1);
    // No namespace at all.
    m.gauge_set("locality", 0.5);
    // Keep the non-literal case last: the literal lookahead window must not
    // be able to borrow a name from a following call site.
    m.histogram_record(dynamic, 2.0);
}
