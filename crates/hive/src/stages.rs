//! The trailing stages of every Hive plan: group-by and order-by.
//!
//! After the join stages, Hive launches one more MapReduce job for the
//! GROUP BY (720 s in the paper's Q2.1 breakdown) and a final one for the
//! ORDER BY (19 s).

use clyde_common::{ClydeError, Datum, Result, Row, Schema};
use clyde_mapred::runner::Mapper;
use clyde_mapred::shuffle::Reducer;
use clyde_mapred::MapTaskContext;
use clyde_ssb::queries::{aggregate_eval_row, Aggregate, OrderTerm, StarQuery};

/// Group-by mapper: key = group columns, value = the measure.
pub struct GroupByMapper {
    /// Indices of the group-by columns in the joined schema.
    pub group_idx: Vec<usize>,
    pub aggregate: Aggregate,
    pub joined_schema: Schema,
}

impl Mapper for GroupByMapper {
    fn map(&self, _key: &Row, value: &Row, ctx: &MapTaskContext<'_>) -> Result<()> {
        let key: Row = self
            .group_idx
            .iter()
            .map(|&i| value.at(i).clone())
            .collect();
        let measure = aggregate_eval_row(&self.aggregate, value, &self.joined_schema)?;
        ctx.emit(&key, Row::new(vec![Datum::I64(measure)]));
        Ok(())
    }
}

/// Partial-fold combiner / final-fold reducer for the group-by stage,
/// parameterized by the query's aggregate operation.
pub struct FoldValues {
    /// Combiners emit just the partial value; the final reducer prepends the
    /// group key so the stage output is (group columns..., aggregate).
    pub include_key: bool,
    pub aggregate: Aggregate,
}

impl Reducer for FoldValues {
    fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
        let mut acc = self.aggregate.identity();
        for v in values {
            let partial = v
                .at(0)
                .as_i64()
                .ok_or_else(|| ClydeError::MapReduce("non-integer partial value".into()))?;
            acc = self.aggregate.fold(acc, partial);
        }
        let acc_row = Row::new(vec![Datum::I64(acc)]);
        out.push(if self.include_key {
            key.concat(&acc_row)
        } else {
            acc_row
        });
        Ok(())
    }
}

/// Order-by mapper: key encodes the ORDER BY terms (descending integer
/// terms are negated so the shuffle's ascending byte sort realizes them),
/// followed by the entire row as a deterministic tie-break; value = the row.
pub struct OrderByMapper {
    /// `(index into the stage-input row, descending)` per ORDER BY term.
    pub terms: Vec<(usize, bool)>,
}

impl OrderByMapper {
    /// Resolve a query's ORDER BY against the group-by stage's output shape
    /// (group columns..., aggregate).
    pub fn for_query(query: &StarQuery) -> Result<OrderByMapper> {
        let agg_idx = query.group_by.len();
        let terms = query
            .order_by
            .iter()
            .map(|(term, desc)| {
                let idx = match term {
                    OrderTerm::Aggregate => agg_idx,
                    OrderTerm::Column(name) => query
                        .group_by
                        .iter()
                        .position(|g| g == name)
                        .ok_or_else(|| {
                            ClydeError::Plan(format!("ORDER BY column {name} not grouped"))
                        })?,
                };
                Ok((idx, *desc))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(OrderByMapper { terms })
    }
}

impl Mapper for OrderByMapper {
    fn map(&self, _key: &Row, value: &Row, ctx: &MapTaskContext<'_>) -> Result<()> {
        let mut key = Row::with_capacity(self.terms.len() + value.len());
        for &(idx, desc) in &self.terms {
            let d = value.at(idx);
            if desc {
                let v = d.as_i64().ok_or_else(|| {
                    ClydeError::Plan("descending ORDER BY requires an integer term".into())
                })?;
                key.push(Datum::I64(-v));
            } else {
                key.push(d.clone());
            }
        }
        // Tie-break on the full row so the global order is total and matches
        // the reference executor's.
        for d in value.iter() {
            key.push(d.clone());
        }
        ctx.emit(&key, value.clone());
        Ok(())
    }
}

/// Order-by reducer: identity over the sorted stream.
pub struct EmitValues;

impl Reducer for EmitValues {
    fn reduce(&self, _key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
        out.extend(values.iter().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::query_by_id;

    #[test]
    fn order_by_mapper_resolves_flight3_terms() {
        let q = query_by_id("Q3.1").unwrap();
        // Group columns: c_nation(0), s_nation(1), d_year(2); aggregate at 3.
        let m = OrderByMapper::for_query(&q).unwrap();
        assert_eq!(m.terms, vec![(2, false), (3, true)]);
    }

    #[test]
    fn order_by_mapper_rejects_ungrouped_columns() {
        let mut q = query_by_id("Q3.1").unwrap();
        q.order_by
            .push((OrderTerm::Column("not_grouped".into()), false));
        assert!(OrderByMapper::for_query(&q).is_err());
    }

    #[test]
    fn fold_values_respects_each_aggregate() {
        use clyde_common::row;
        let cases = [
            (Aggregate::SumColumn("x".into()), 60i64),
            (Aggregate::CountStar, 60), // partial counts also sum
            (Aggregate::MinColumn("x".into()), 10),
            (Aggregate::MaxColumn("x".into()), 30),
        ];
        for (aggregate, expect) in cases {
            let f = FoldValues {
                include_key: true,
                aggregate: aggregate.clone(),
            };
            let mut out = Vec::new();
            f.reduce(
                &row!["k"],
                &[row![10i64], row![20i64], row![30i64]],
                &mut out,
            )
            .unwrap();
            assert_eq!(out, vec![row!["k", expect]], "{aggregate:?}");
        }
    }

    #[test]
    fn fold_values_rejects_non_integer_partials() {
        use clyde_common::row;
        let f = FoldValues {
            include_key: false,
            aggregate: Aggregate::CountStar,
        };
        let mut out = Vec::new();
        assert!(f.reduce(&row!["k"], &[row!["oops"]], &mut out).is_err());
    }
}
