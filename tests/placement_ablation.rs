//! The experiment CIF's placement policy exists for (paper Section 4.1):
//! without co-location, the column files of a row group scatter across
//! datanodes and no node can scan a row group fully locally.
//!
//! This test loads the same fact table under both placement policies and
//! compares what Clydesdale's scheduler and scan actually achieve. It is
//! the ablation the paper argues for but does not plot.

use clyde_columnar::CifReader;
use clyde_dfs::{ClusterSpec, ColocatingPlacement, DefaultPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::{query_by_id, reference_answer};
use clydesdale::Clydesdale;
use std::sync::Arc;

fn load_with(policy: Box<dyn clyde_dfs::BlockPlacementPolicy>) -> (Arc<Dfs>, SsbLayout, SsbGen) {
    let dfs = Dfs::new(
        ClusterSpec::tiny(8),
        DfsOptions {
            // Small blocks force multi-block column files, where per-block
            // scatter under the default policy is worst.
            block_size: 64 << 10,
            replication: 2,
            policy,
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.005, 46);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 3_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    (dfs, layout, gen)
}

#[test]
fn colocation_delivers_fully_local_scans_and_default_placement_does_not() {
    let q = query_by_id("Q2.1").unwrap();

    // --- With the co-locating policy (Clydesdale's configuration). ---
    let (dfs, layout, gen) = load_with(Box::new(ColocatingPlacement));
    let reader = CifReader::open(&dfs, &layout.fact_cif()).unwrap();
    for g in 0..reader.meta().num_groups() {
        assert!(
            !reader.group_hosts(&dfs, g).unwrap().is_empty(),
            "co-located group {g} must have a common host"
        );
    }
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let colocated = clyde.query(&q).unwrap();
    assert_eq!(
        colocated.locality, 1.0,
        "co-located scan must be fully local"
    );
    let expect = reference_answer(&gen.gen_all(), &q).unwrap();
    assert_eq!(colocated.rows, expect);

    // --- With HDFS's default per-block placement. ---
    let (dfs, layout, gen) = load_with(Box::new(DefaultPlacement));
    let reader = CifReader::open(&dfs, &layout.fact_cif()).unwrap();
    let groups_without_common_host = (0..reader.meta().num_groups())
        .filter(|&g| reader.group_hosts(&dfs, g).unwrap().is_empty())
        .count();
    assert!(
        groups_without_common_host > 0,
        "default placement should scatter at least one row group"
    );
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let scattered = clyde.query(&q).unwrap();
    // Results stay correct — the DFS serves remote reads — but locality and
    // the bytes crossing the network degrade.
    let expect = reference_answer(&gen.gen_all(), &q).unwrap();
    assert_eq!(scattered.rows, expect, "scatter must not change answers");
    assert!(
        scattered.locality < 1.0,
        "scattered scan should not be fully local (got {:.3})",
        scattered.locality
    );
    let remote = scattered.profile.total_map_cost().remote_bytes;
    assert!(remote > 0, "scattered scan must read over the network");
    assert_eq!(
        colocated.profile.total_map_cost().remote_bytes,
        0,
        "co-located scan must read nothing over the network"
    );
}
