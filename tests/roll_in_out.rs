//! End-to-end fact-table maintenance: roll new data in, roll old data out,
//! and verify that query answers track the live extent exactly.
//!
//! This is the paper's Section 8 "managing updates" future work, built on
//! the property Section 2 advertises: because the fact table is unsorted,
//! maintenance never rewrites existing row groups.

use clyde_columnar::{roll_out, CifAppender, CifReader};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::{query_by_id, reference_answer};
use clydesdale::Clydesdale;
use std::sync::Arc;

const RPG: u64 = 2_000;

#[test]
fn queries_track_roll_in_and_roll_out() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.005, 46);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: RPG,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let mut data = gen.gen_all();
    // Mirror the loader's date clustering so `data.lineorder` tracks the
    // stored physical order — roll-out below drops the *oldest* groups.
    data.lineorder.sort_by_key(|r| r.at(5).as_i64());
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    clyde.warm_dimension_cache().unwrap();
    let q21 = query_by_id("Q2.1").unwrap();
    let q11 = query_by_id("Q1.1").unwrap();

    // Baseline.
    assert_eq!(
        clyde.query(&q21).unwrap().rows,
        reference_answer(&data, &q21).unwrap()
    );

    // --- Roll-in: a fresh batch of orders arrives (different seed, same
    // dimension key space). ---
    let batch_gen = SsbGen::new(0.002, 99);
    let mut appender = CifAppender::open(Arc::clone(&dfs), &layout.fact_cif()).unwrap();
    let mut batch = Vec::new();
    batch_gen
        .for_each_lineorder(|r| {
            // Remap FKs into the base dimension key space (the batch
            // generator's dimensions are smaller, so keys stay valid).
            appender.append(r)?;
            batch.push(r.clone());
            Ok(())
        })
        .unwrap();
    appender.close().unwrap();
    data.lineorder.extend(batch);

    for q in [&q21, &q11] {
        assert_eq!(
            clyde.query(q).unwrap().rows,
            reference_answer(&data, q).unwrap(),
            "{} diverged after roll-in",
            q.id
        );
    }

    // --- Roll-out: retire the two oldest row groups. ---
    let dropped_rows: u64 = {
        let meta = CifReader::open(&dfs, &layout.fact_cif())
            .unwrap()
            .meta()
            .clone();
        meta.group_rows[..2].iter().sum()
    };
    roll_out(&dfs, &layout.fact_cif(), 2).unwrap();
    data.lineorder.drain(..dropped_rows as usize);

    for q in [&q21, &q11] {
        assert_eq!(
            clyde.query(q).unwrap().rows,
            reference_answer(&data, q).unwrap(),
            "{} diverged after roll-out",
            q.id
        );
    }

    // Maintenance preserved scan locality.
    assert_eq!(clyde.query(&q21).unwrap().locality, 1.0);
}

#[test]
fn maintenance_interleaves_with_queries_deterministically() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(2),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.003, 46);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 1_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    let q = query_by_id("Q3.1").unwrap();

    // Sliding window: repeatedly roll in a batch and roll out one group;
    // the row count stays bounded and every step answers consistently.
    let mut last_rows = None;
    for step in 0..3 {
        let mut appender = CifAppender::open(Arc::clone(&dfs), &layout.fact_cif()).unwrap();
        SsbGen::new(0.0005, 100 + step)
            .for_each_lineorder(|r| appender.append(r))
            .unwrap();
        appender.close().unwrap();
        roll_out(&dfs, &layout.fact_cif(), 1).unwrap();

        let a = clyde.query(&q).unwrap().rows;
        let b = clyde.query(&q).unwrap().rows;
        assert_eq!(a, b, "step {step}: non-deterministic answers");
        last_rows = Some(a);
    }
    assert!(last_rows.is_some());
    let meta = CifReader::open(&dfs, &layout.fact_cif())
        .unwrap()
        .meta()
        .clone();
    assert!(meta.first_group >= 3, "watermark must advance");
}
