//! Micro-benchmark of the probe kernels: Q2.1 rows/sec, scalar vs
//! vectorized, over in-memory column blocks (no DFS, no MapReduce — just
//! the inner loop the map task runs).
//!
//! Usage: `bench_probe [SF] [--json PATH]`. With `--json` the result is
//! also written as a small JSON document (see `BENCH_probe.json` at the
//! repo root for a committed run).

use clyde_common::obs::WallTimer;
use clyde_common::{FxHashMap, RowBlock, RowBlockBuilder};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::{query_by_id, schema};
use clydesdale::hashtable::DimTables;
use clydesdale::probe::{
    probe_block, probe_block_vec, GroupAcc, GroupLayout, ProbePlan, ProbeStats, SelBuf,
};

const BLOCK_ROWS: usize = 4096;
const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf: f64 = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    eprintln!("generating SSB at SF {sf}...");
    let data = SsbGen::new(sf, 46).gen_all();
    let q = query_by_id("Q2.1").expect("known query");
    let fact_schema = schema::lineorder_schema();
    let cols: Vec<usize> = q
        .fact_columns()
        .iter()
        .map(|c| fact_schema.index_of(c).unwrap())
        .collect();
    let scan_schema = fact_schema.project(&cols);
    let plan = ProbePlan::compile(&q, &scan_schema).expect("plan compiles");
    let tables = DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
        .expect("tables build");
    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    let blocks: Vec<RowBlock> = data
        .lineorder
        .chunks(BLOCK_ROWS)
        .map(|chunk| {
            let mut b = RowBlockBuilder::new(&dtypes);
            for r in chunk {
                b.push_row(&r.project(&cols)).unwrap();
            }
            b.finish()
        })
        .collect();
    let total_rows = data.lineorder.len() as u64;
    eprintln!(
        "probing {} rows in {} blocks of {} ({} timed iterations)...",
        total_rows,
        blocks.len(),
        BLOCK_ROWS,
        TIMED_ITERS
    );

    // Best-of-N wall time for one full pass over every block.
    let scalar_pass = || {
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        for b in &blocks {
            probe_block(b, &plan, &tables, &mut acc, &mut stats).unwrap();
        }
        (acc.len(), stats)
    };
    let layout = GroupLayout::new(&plan, &tables).expect("packed key fits");
    let vec_pass = || {
        let mut acc = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut stats = ProbeStats::default();
        for b in &blocks {
            probe_block_vec(b, &plan, &tables, &layout, &mut acc, &mut buf, &mut stats).unwrap();
        }
        (acc.entries().len(), stats)
    };
    let time_best = |f: &dyn Fn() -> (usize, ProbeStats)| -> (f64, usize, ProbeStats) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let mut best = f64::INFINITY;
        let mut out = (0, ProbeStats::default());
        for _ in 0..TIMED_ITERS {
            let t = WallTimer::start();
            let r = std::hint::black_box(f());
            best = best.min(t.elapsed_s());
            out = r;
        }
        (best, out.0, out.1)
    };

    let (scalar_s, scalar_groups, scalar_stats) = time_best(&scalar_pass);
    let (vec_s, vec_groups, vec_stats) = time_best(&vec_pass);
    assert_eq!(
        scalar_stats, vec_stats,
        "kernels must count identically (rows/probes/survivors)"
    );
    // Packed keys can out-number final groups (ids are per dimension row);
    // rematerialization folds them, so only >= holds here.
    assert!(vec_groups >= scalar_groups);

    let scalar_rps = total_rows as f64 / scalar_s;
    let vec_rps = total_rows as f64 / vec_s;
    let speedup = vec_rps / scalar_rps;
    println!("Q2.1 probe kernel, SF {sf} ({total_rows} fact rows):");
    println!("  scalar:     {scalar_rps:>12.0} rows/s  ({scalar_s:.4}s per pass)");
    println!("  vectorized: {vec_rps:>12.0} rows/s  ({vec_s:.4}s per pass)");
    println!("  speedup:    {speedup:.2}x");

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"query\": \"Q2.1\",\n  \"sf\": {sf},\n  \"fact_rows\": {total_rows},\n  \
             \"block_rows\": {BLOCK_ROWS},\n  \"scalar_rows_per_s\": {scalar_rps:.0},\n  \
             \"vectorized_rows_per_s\": {vec_rps:.0},\n  \"speedup\": {speedup:.2},\n  \
             \"survivors\": {},\n  \"probes\": {}\n}}\n",
            vec_stats.survivors, vec_stats.probes
        );
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
