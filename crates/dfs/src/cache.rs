//! The result-cache catalog: fingerprint → persisted job output (ReStore).
//!
//! [`CacheCatalog`] is the pure bookkeeping half of the DFS-resident result
//! cache: it maps a 64-bit stage fingerprint to the DFS files holding that
//! stage's persisted output, with size accounting, optional pinning, and
//! LRU eviction under a configurable capacity budget. "LRU" here is ordered
//! by a *logical tick* the catalog increments on every lookup/insert — the
//! deterministic sim-time analogue of recency, so eviction decisions are
//! byte-identical across runs and host thread counts.
//!
//! The catalog itself is deliberately lock-free plain data (and must stay
//! off the D004 concurrency allowlist): the one lock guarding it lives in
//! the audited [`crate::dfs::Dfs`], which also owns the file side effects —
//! the catalog only ever *returns* the paths whose backing files should be
//! deleted (eviction victims, invalidated outputs) and never touches the
//! namespace itself.
//!
//! Coherence contract: an entry records the input paths its fingerprint was
//! derived from. `Dfs::delete` calls [`CacheCatalog::invalidate_path`] for
//! every deleted file, dropping any entry that used the file as an input
//! (fact-partition roll-out; the write-once namespace makes delete+recreate
//! the only way to change bytes behind an existing path) or as an output
//! (the cached copy itself is gone). Roll-*in* needs no hook: new files
//! change the resolved split list, so the fingerprint changes by itself.

use std::collections::BTreeMap;

/// Cumulative catalog counters, mirrored into the `cache.*` metric series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to make room under the capacity budget.
    pub evictions: u64,
    /// Entries dropped because an input (or their own output) was deleted.
    pub invalidations: u64,
    /// Entries admitted.
    pub inserts: u64,
    /// Total cached bytes returned by hits.
    pub bytes_served: u64,
    /// Bytes currently resident (gauge, not cumulative).
    pub bytes_stored: u64,
    /// Entries currently resident (gauge, not cumulative).
    pub entries: u64,
}

impl CacheStats {
    /// Counter-wise difference (`self - earlier`) for delta emission; the
    /// two gauges carry over from `self` unchanged.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
            inserts: self.inserts - earlier.inserts,
            bytes_served: self.bytes_served - earlier.bytes_served,
            bytes_stored: self.bytes_stored,
            entries: self.entries,
        }
    }
}

/// One cached stage output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The canonical stage fingerprint (`clyde_mapred::fingerprint`).
    pub fingerprint: u64,
    /// DFS files holding the persisted output, in read order.
    pub output_paths: Vec<String>,
    /// Total bytes across `output_paths` (size accounting).
    pub bytes: u64,
    /// Rows the original job returned in memory, if it was a Memory-output
    /// job (`None` for DfsDir stages).
    pub memory_rows: Option<u64>,
    /// Input files the fingerprint covered; deleting any of them drops the
    /// entry. Empty for lineage-fingerprinted stages, whose coherence rides
    /// on the upstream fingerprint instead.
    pub input_paths: Vec<String>,
    /// Logical tick of the last lookup or insert (LRU key).
    pub last_used: u64,
    /// Pinned entries are never evicted (they still invalidate).
    pub pinned: bool,
}

/// The fingerprint → entry catalog. Plain data: all locking and all file
/// deletion happen in the owning `Dfs`.
#[derive(Debug, Default)]
pub struct CacheCatalog {
    entries: BTreeMap<u64, CacheEntry>,
    /// Budget in bytes; 0 disables the cache entirely.
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    inserts: u64,
    bytes_served: u64,
}

impl CacheCatalog {
    pub fn new() -> CacheCatalog {
        CacheCatalog::default()
    }

    /// Set the capacity budget. Shrinking below current residency does not
    /// proactively evict; the next insert enforces the new budget.
    pub fn set_capacity(&mut self, bytes: u64) {
        self.capacity_bytes = bytes;
    }

    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            inserts: self.inserts,
            bytes_served: self.bytes_served,
            bytes_stored: self.used_bytes,
            entries: self.entries.len() as u64,
        }
    }

    /// Look up a fingerprint, bumping its recency on a hit. Counts a miss
    /// (and returns `None`) when disabled, so probe traffic against a
    /// switched-off cache is still visible in the stats.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<CacheEntry> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                self.bytes_served += e.bytes;
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Admit an entry, evicting least-recently-used unpinned entries until
    /// it fits. Returns the output files freed by eviction — the caller
    /// must delete them from the DFS. The insert is skipped (empty return)
    /// when the cache is disabled, the fingerprint is already resident, or
    /// the entry cannot fit even after evicting everything unpinned.
    pub fn insert(&mut self, mut entry: CacheEntry) -> Vec<String> {
        if !self.enabled() || self.entries.contains_key(&entry.fingerprint) {
            return Vec::new();
        }
        let pinned_bytes: u64 = self
            .entries
            .values()
            .filter(|e| e.pinned)
            .map(|e| e.bytes)
            .sum();
        if pinned_bytes.saturating_add(entry.bytes) > self.capacity_bytes {
            return Vec::new();
        }
        let mut freed = Vec::new();
        while self.used_bytes.saturating_add(entry.bytes) > self.capacity_bytes {
            let victim = self
                .entries
                .values()
                .filter(|e| !e.pinned)
                .min_by_key(|e| (e.last_used, e.fingerprint))
                .map(|e| e.fingerprint);
            let Some(fp) = victim else { break };
            if let Some(e) = self.entries.remove(&fp) {
                self.used_bytes -= e.bytes;
                self.evictions += 1;
                freed.extend(e.output_paths);
            }
        }
        self.tick += 1;
        entry.last_used = self.tick;
        self.used_bytes += entry.bytes;
        self.inserts += 1;
        self.entries.insert(entry.fingerprint, entry);
        freed
    }

    /// Whether a fingerprint is resident, without touching recency or
    /// hit/miss counters.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Pin or unpin an entry; returns whether it exists.
    pub fn set_pinned(&mut self, fingerprint: u64, pinned: bool) -> bool {
        match self.entries.get_mut(&fingerprint) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    /// Drop every entry that depends on `path` — as a fingerprinted input
    /// (roll-out coherence) or as one of its own persisted outputs (the
    /// cached bytes are gone). Returns the *other* output files of the
    /// dropped entries so the caller can delete them too (`path` itself is
    /// excluded: the caller is already deleting it).
    pub fn invalidate_path(&mut self, path: &str) -> Vec<String> {
        let stale: Vec<u64> = self
            .entries
            .values()
            .filter(|e| {
                e.input_paths.iter().any(|p| p == path) || e.output_paths.iter().any(|p| p == path)
            })
            .map(|e| e.fingerprint)
            .collect();
        let mut freed = Vec::new();
        for fp in stale {
            if let Some(e) = self.entries.remove(&fp) {
                self.used_bytes -= e.bytes;
                self.invalidations += 1;
                freed.extend(e.output_paths.into_iter().filter(|p| p != path));
            }
        }
        freed
    }

    /// Fingerprints currently resident, in order (tests and debugging).
    pub fn resident(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64, bytes: u64, inputs: &[&str]) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            output_paths: vec![format!("/cache/{fp:016x}/rows.bin")],
            bytes,
            memory_rows: Some(1),
            input_paths: inputs.iter().map(|s| s.to_string()).collect(),
            last_used: 0,
            pinned: false,
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut c = CacheCatalog::new();
        assert!(!c.enabled());
        assert!(c.insert(entry(1, 10, &[])).is_empty());
        assert!(c.lookup(1).is_none());
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn insert_lookup_roundtrip_counts() {
        let mut c = CacheCatalog::new();
        c.set_capacity(100);
        c.insert(entry(7, 40, &["/fact/a"]));
        let hit = c.lookup(7).unwrap();
        assert_eq!(hit.bytes, 40);
        assert!(c.lookup(8).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.bytes_served, 40);
        assert_eq!(s.bytes_stored, 40);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = CacheCatalog::new();
        c.set_capacity(100);
        c.insert(entry(1, 40, &[]));
        c.insert(entry(2, 40, &[]));
        c.lookup(1); // 2 is now the LRU entry
        let freed = c.insert(entry(3, 40, &[]));
        assert_eq!(freed, vec![format!("/cache/{:016x}/rows.bin", 2u64)]);
        assert_eq!(c.resident(), vec![1, 3]);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().bytes_stored, 80);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let mut c = CacheCatalog::new();
        c.set_capacity(100);
        c.insert(entry(1, 60, &[]));
        assert!(c.set_pinned(1, true));
        // 60 pinned + 50 new > 100: infeasible, insert skipped, nothing freed.
        assert!(c.insert(entry(2, 50, &[])).is_empty());
        assert_eq!(c.resident(), vec![1]);
        // A fitting entry evicts nothing (pinned stays) and is admitted.
        assert!(c.insert(entry(3, 40, &[])).is_empty());
        assert_eq!(c.resident(), vec![1, 3]);
        // Unpinned, entry 1 becomes evictable again: dropping it alone
        // makes room, so entry 3 survives.
        assert!(c.set_pinned(1, false));
        let freed = c.insert(entry(4, 60, &[]));
        assert_eq!(freed, vec![format!("/cache/{:016x}/rows.bin", 1u64)]);
        assert_eq!(c.resident(), vec![3, 4]);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let mut c = CacheCatalog::new();
        c.set_capacity(100);
        c.insert(entry(1, 40, &[]));
        assert!(c.insert(entry(2, 101, &[])).is_empty());
        assert_eq!(c.resident(), vec![1]);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn invalidate_by_input_and_by_output() {
        let mut c = CacheCatalog::new();
        c.set_capacity(1000);
        c.insert(entry(1, 10, &["/fact/p0", "/fact/p1"]));
        c.insert(entry(2, 10, &["/fact/p1"]));
        c.insert(entry(3, 10, &["/fact/p2"]));
        // Rolling out p1 drops entries 1 and 2; their cached files come back
        // for deletion.
        let freed = c.invalidate_path("/fact/p1");
        assert_eq!(freed.len(), 2);
        assert_eq!(c.resident(), vec![3]);
        assert_eq!(c.stats().invalidations, 2);
        // Deleting a cached output file drops its entry, excluding the path
        // being deleted from the returned list.
        let freed = c.invalidate_path(&format!("/cache/{:016x}/rows.bin", 3u64));
        assert!(freed.is_empty());
        assert!(c.resident().is_empty());
        assert_eq!(c.stats().bytes_stored, 0);
    }

    #[test]
    fn stats_delta() {
        let mut c = CacheCatalog::new();
        c.set_capacity(100);
        c.insert(entry(1, 10, &[]));
        let before = c.stats();
        c.lookup(1);
        c.lookup(2);
        let d = c.stats().delta_since(&before);
        assert_eq!((d.hits, d.misses, d.inserts), (1, 1, 0));
        assert_eq!(d.bytes_stored, 10);
        assert_eq!(d.entries, 1);
    }
}
