//! The query-level frontend to the multi-job server: tenants submit
//! [`StarQuery`]s, the server plans each into a MapReduce job at admission
//! time, and one `drain` lays every admitted query out on the shared
//! cluster under the configured scheduling policy.
//!
//! Each served query's rows are bit-for-bit what [`Clydesdale::query`]
//! returns solo — execution goes through the same planner and engine; only
//! the *timeline* (queue wait, slot interleaving, finish times) comes from
//! the multi-job schedule. The client-side ORDER BY sort is priced per
//! query and appended to its scheduled finish, exactly like the solo path.

use crate::engine::Clydesdale;
use crate::planner::plan_query;
use clyde_common::obs::{QueryProfile, DEFAULT_DRIFT_THRESHOLD_PCT};
use clyde_common::{Result, Row};
use clyde_mapred::{JobCost, JobProfile, JobServer, RejectReason, ServerConfig};
use clyde_ssb::queries::StarQuery;

/// One served query: the solo-identical answer plus its position on the
/// shared server timeline.
pub struct ServedQuery {
    pub tenant: String,
    pub query_id: String,
    /// Submission time on the server clock (seconds).
    pub arrival_s: f64,
    /// First granted slot on the shared cluster.
    pub start_s: f64,
    /// Completion including the client-side final sort.
    pub finish_s: f64,
    /// Simulated seconds of the single-process ORDER BY sort.
    pub final_sort_s: f64,
    /// Final rows, in ORDER BY order (bit-for-bit the solo answer).
    pub rows: Vec<Row>,
    pub profile: JobProfile,
    pub cost: JobCost,
}

impl ServedQuery {
    /// Queue wait: submission to first granted slot.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// End-to-end latency as the tenant saw it (including the final sort).
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// Multi-tenant query frontend; construct via [`Clydesdale::serve`].
pub struct QueryServer<'c> {
    clyde: &'c Clydesdale,
    inner: JobServer<'c>,
    /// Queries behind the admitted submissions, in submission order.
    admitted: Vec<StarQuery>,
}

impl<'c> QueryServer<'c> {
    pub(crate) fn new(clyde: &'c Clydesdale, cfg: ServerConfig) -> QueryServer<'c> {
        QueryServer {
            clyde,
            inner: JobServer::new(clyde.engine(), cfg),
            admitted: Vec::new(),
        }
    }

    pub fn config(&self) -> &ServerConfig {
        self.inner.config()
    }

    /// Queries currently waiting for the next drain.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    /// Submit `query` on behalf of `tenant` at server time `arrival_s`.
    /// Planning errors surface as the outer `Err`; admission-control
    /// rejections (queue full, tenant quota) as the inner one.
    pub fn submit(
        &mut self,
        tenant: &str,
        arrival_s: f64,
        query: &StarQuery,
    ) -> Result<std::result::Result<(), RejectReason>> {
        let engine = self.clyde.engine();
        let mut spec = plan_query(
            query,
            self.clyde.layout(),
            self.clyde.features(),
            engine.dfs().cluster(),
        )?;
        spec.faults = self.clyde.faults().cloned();
        spec.host_threads = self.clyde.host_threads();
        match self.inner.submit(tenant, arrival_s, spec) {
            Ok(()) => {
                self.admitted.push(query.clone());
                Ok(Ok(()))
            }
            Err(reason) => Ok(Err(reason)),
        }
    }

    /// Run everything admitted since the last drain on the shared cluster
    /// and return the served queries in submission order.
    pub fn drain(&mut self) -> Result<Vec<ServedQuery>> {
        let queries = std::mem::take(&mut self.admitted);
        let obs = self.clyde.obs();
        let hist_before = obs.with_histories(|hs| hs.len());
        let served_jobs = self.inner.drain()?;
        let params = self.clyde.engine().params();
        let mut out = Vec::with_capacity(served_jobs.len());
        for (i, (job, query)) in served_jobs.into_iter().zip(queries).enumerate() {
            let mut rows = job.result.rows;
            query.finish_result(&mut rows);
            let final_sort_s = rows.len() as f64 / params.sort_records_per_s + 0.5;
            if obs.is_enabled() {
                obs.metrics().counter_add("mapred.queries", 1);
                obs.metrics()
                    .histogram_record("mapred.final_sort_s", final_sort_s);
                let profile = obs.with_histories(|hs| {
                    QueryProfile::from_histories(
                        &query.id,
                        &hs[hist_before + i..hist_before + i + 1],
                        final_sort_s,
                        DEFAULT_DRIFT_THRESHOLD_PCT,
                    )
                });
                obs.record_query_profile(profile);
            }
            out.push(ServedQuery {
                tenant: job.tenant,
                query_id: query.id.clone(),
                arrival_s: job.arrival_s,
                start_s: job.start_s,
                finish_s: job.finish_s + final_sort_s,
                final_sort_s,
                rows,
                profile: job.result.profile,
                cost: job.result.cost,
            });
        }
        Ok(out)
    }
}
