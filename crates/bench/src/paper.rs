//! The numbers the paper reports, for side-by-side comparison.
//!
//! Figures 7 and 8 are bar charts; the exact per-query values are not
//! printed in the text, but the text states the ranges, averages, the Q2.1
//! breakdown, and the set of failing configurations. Those are the
//! checkable claims this reproduction targets.

/// Cluster A (8 workers, 16 GB), SF1000 — Section 6.3.
pub mod cluster_a {
    /// Speedup of Clydesdale over Hive: paper reports 17.4x–82.7x.
    pub const SPEEDUP_MIN: f64 = 17.4;
    pub const SPEEDUP_MAX: f64 = 82.7;
    /// "averaging a 38x speedup on cluster A".
    pub const SPEEDUP_AVG: f64 = 38.0;
    /// Queries whose Hive **mapjoin** plan ran out of memory (Section 6.4).
    pub const MAPJOIN_OOM: [&str; 4] = ["Q3.1", "Q4.1", "Q4.2", "Q4.3"];

    /// Q2.1 breakdown (Section 6.3).
    pub mod q21 {
        /// Clydesdale total.
        pub const CLYDE_TOTAL_S: f64 = 215.0;
        /// Hash-table build within the map task.
        pub const CLYDE_BUILD_S: f64 = 27.0;
        /// Probe/scan phase of a representative map task.
        pub const CLYDE_PROBE_S: f64 = 164.0;
        /// Observed per-node scan rate during the probe (MB/s).
        pub const CLYDE_SCAN_MB_S: f64 = 67.0;
        /// Final order-by sort: "under 10 seconds".
        pub const CLYDE_SORT_S_MAX: f64 = 10.0;
        /// Hive mapjoin total and its five stages.
        pub const HIVE_MAPJOIN_TOTAL_S: f64 = 15_142.0;
        pub const HIVE_MAPJOIN_STAGES_S: [f64; 5] = [2_640.0, 2_040.0, 9_180.0, 720.0, 19.0];
        /// Hive repartition total and its first three stages.
        pub const HIVE_REPART_TOTAL_S: f64 = 17_700.0;
        pub const HIVE_REPART_JOIN_STAGES_S: [f64; 3] = [9_720.0, 7_140.0, 420.0];
        /// Map tasks in the mapjoin plan's first stage.
        pub const HIVE_STAGE1_TASKS: u64 = 4_887;
    }
}

/// Cluster B (40 workers, 32 GB), SF1000 — Section 6.3/6.4.
pub mod cluster_b {
    pub const SPEEDUP_MIN: f64 = 5.2;
    pub const SPEEDUP_MAX: f64 = 21.4;
    /// "averaging 11.1x".
    pub const SPEEDUP_AVG: f64 = 11.1;
    /// All mapjoin plans completed on cluster B ("Cluster B had more memory
    /// per node and was able to complete the mapjoin plan").
    pub const MAPJOIN_OOM: [&str; 0] = [];
}

/// Section 6.5 ablation (Figure 9), cluster A, SF1000.
pub mod ablation {
    /// "The average slowdown from turning off block iteration was
    /// approximately 1.2x."
    pub const BLOCK_ITERATION_AVG: f64 = 1.2;
    /// "Turning off columnar storage ... resulted in a slowdown of 3.4x."
    pub const COLUMNAR_AVG: f64 = 3.4;
    /// "query flight 2 ... slowed down by 3.8x ... query flight 4 ... was
    /// slower by 2.0x."
    pub const COLUMNAR_FLIGHT2: f64 = 3.8;
    pub const COLUMNAR_FLIGHT4: f64 = 2.0;
    /// "turning off the use of multi threaded tasks slowed down performance
    /// by 2.4x."
    pub const MULTITHREADING_AVG: f64 = 2.4;
    /// "query flight 1 was slowed down by just 1.2x ... query flight 4 ...
    /// was 4.5x slower."
    pub const MULTITHREADING_FLIGHT1: f64 = 1.2;
    pub const MULTITHREADING_FLIGHT4: f64 = 4.5;
}

/// Section 6.2 storage sizes at SF1000.
pub mod storage {
    /// "the size of the uncompressed fact table in text format is
    /// approximately 600GB".
    pub const FACT_TEXT_GB: f64 = 600.0;
    /// "the fact table was stored in Multi-CIF format, whose binary encoding
    /// reduced the size to approximately 334GB".
    pub const FACT_CIF_GB: f64 = 334.0;
    /// "all tables were stored in RCFile format, which required
    /// approximately 558GB".
    pub const ALL_RCFILE_GB: f64 = 558.0;
}

/// The 13 query ids in figure order.
pub const QUERY_IDS: [&str; 13] = [
    "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2",
    "Q4.3",
];

/// Flight of a query id (1-based).
pub fn flight_of(id: &str) -> usize {
    id.as_bytes()[1] as usize - b'0' as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flights() {
        assert_eq!(flight_of("Q1.2"), 1);
        assert_eq!(flight_of("Q4.3"), 4);
        for id in QUERY_IDS {
            assert!((1..=4).contains(&flight_of(id)));
        }
    }
}
