//! The Star Schema Benchmark (O'Neil et al.), the workload of the paper's
//! entire evaluation (Section 6).
//!
//! * [`schema`] — the five tables of Figure 1 (lineorder fact + customer,
//!   supplier, part, date dimensions) with SSB's column domains;
//! * [`gen`] — a deterministic `dbgen`-equivalent: same cardinality scaling
//!   rules, value domains, and foreign-key structure, parameterized by scale
//!   factor and seed;
//! * [`queries`] — the 13 queries (4 flights) as [`queries::StarQuery`]
//!   descriptors consumed by both the Clydesdale engine and the Hive
//!   baseline;
//! * [`loader`] — bulk loaders into CIF (Clydesdale's format), RCFile
//!   (Hive's format), text, and per-node dimension caches;
//! * [`mod@reference`] — a trusted single-process executor used to validate
//!   every engine's results.

pub mod gen;
pub mod loader;
pub mod queries;
pub mod reference;
pub mod schema;

pub use gen::{SsbData, SsbGen};
pub use loader::SsbLayout;
pub use queries::{all_queries, query_by_id, Aggregate, DimJoin, FactPred, StarQuery};
pub use reference::reference_answer;
