//! Job execution.
//!
//! The engine really runs jobs: one worker thread per simulated cluster node
//! drains that node's task queue, tasks read real bytes from the simulated
//! DFS, and the shuffle sorts and merges real records. Simulated time never
//! depends on wall-clock — it is derived afterwards from the recorded
//! [`TaskCost`] counters, so results and costs are
//! deterministic no matter how the OS schedules the threads.
//!
//! Failed map tasks are **re-executed** on alternate nodes up to the job's
//! attempt budget — Hadoop's fault-tolerance contract, one of the properties
//! the paper keeps by staying on an unmodified platform. Out-of-memory
//! failures are not retried: exhausting a deterministic resource model would
//! fail identically everywhere (and this is how the paper's cluster-A
//! mapjoin queries "did not complete").

use crate::cost::{CostParams, TaskCost};
use crate::distcache::DistCache;
use crate::fault::FaultPlan;
use crate::history;
use crate::input::{InputSplit, SplitSpec};
use crate::job::{JobProfile, JobResult, JobSpec, KilledAttempt, OutputSpec, TaskProfile};
use crate::scheduler;
use crate::shuffle;
use crate::task::{
    MapOutputBuffer, MapTaskContext, MemoryLedger, MemoryTracker, NodeState, TaskIo,
};
use clyde_common::lockorder::Mutex;
use clyde_common::obs::{Obs, Phase, SpanKind, TaskKind, WallTimer};
use clyde_common::{keycodec, rowcodec, ClydeError, Result, Row};
use clyde_dfs::IoScope;
use clyde_dfs::{CacheEntry, ClusterSpec, Dfs, IoSnapshot, NodeId, NodeLocalStore};
use std::sync::Arc;

/// A node is blacklisted for further retries once this many of its attempts
/// have failed within one job (Hadoop's `mapred.max.tracker.failures`).
/// Advisory: retries merely *prefer* clean nodes; only DFS-dead nodes are
/// hard-excluded, so a healthy-but-unlucky cluster can still finish the job.
const BLACKLIST_AFTER_FAILURES: u32 = 3;

/// Artifacts prepared by the job client before submission (Hive's master
/// builds mapjoin hash tables here).
#[derive(Default, Clone)]
pub struct ClientArtifacts {
    pub cache: Arc<DistCache>,
    /// Rows the client scanned/inserted building the artifacts.
    pub build_rows: u64,
}

/// Output of one executed map task, waiting for the shuffle.
struct TaskOutput {
    records: Vec<(Vec<u8>, Row)>,
    cost: TaskCost,
    node: NodeId,
    output_file: Option<String>,
    /// Measured wall-clock of the whole attempt (observability-only).
    wall_ns: u64,
    /// Wall-clock the runner attributed to specific phases.
    wall_phases: Vec<(Phase, u64)>,
    /// Whether this output came from a speculative backup attempt.
    speculative: bool,
}

/// Everything a map-task attempt needs, bundled so the first parallel wave
/// and the sequential retry path share one execution function.
struct MapTaskEnv<'a> {
    spec: &'a JobSpec,
    splits: &'a [InputSplit],
    dfs: &'a Arc<Dfs>,
    local: &'a Arc<NodeLocalStore>,
    cache: &'a Arc<DistCache>,
    node_states: &'a [Arc<NodeState>],
    memories: &'a [Arc<MemoryTracker>],
    ledger: &'a Arc<MemoryLedger>,
    concurrency: u32,
    threads: u32,
    host_threads: u32,
    map_only: bool,
    params: &'a CostParams,
    cluster: &'a ClusterSpec,
    faults: Option<&'a FaultPlan>,
    max_attempts: u32,
}

impl MapTaskEnv<'_> {
    /// Execute one attempt of one map task on `node`.
    fn exec(&self, task_idx: usize, node: NodeId) -> Result<TaskOutput> {
        let wall_start = WallTimer::start();
        let split = &self.splits[task_idx];
        let io = TaskIo::new(Arc::clone(self.dfs), node);
        let out = Arc::new(MapOutputBuffer::new());
        let cost = Arc::new(Mutex::new(TaskCost {
            threads: self.threads,
            ..TaskCost::new()
        }));
        let state = if self.spec.reuse_jvm {
            Arc::clone(&self.node_states[node.0])
        } else {
            Arc::new(NodeState::new())
        };
        let memory = Arc::clone(&self.memories[node.0]);
        let ctx = MapTaskContext {
            conf: &self.spec.conf,
            split,
            input: &*self.spec.input,
            io: io.clone(),
            node,
            threads: self.threads,
            host_threads: self.host_threads,
            slot_concurrency: self.concurrency,
            node_state: state,
            memory: Arc::clone(&memory),
            ledger: Arc::clone(self.ledger),
            task_charges: Mutex::new(0),
            local_store: Arc::clone(self.local),
            dist_cache: Arc::clone(self.cache),
            out: Arc::clone(&out),
            cost: Arc::clone(&cost),
            wall_phases: Mutex::new(Vec::new()),
        };
        let run_result = self.spec.map_runner.run(&ctx);
        // Transient per-task memory dies with the attempt, success or not.
        memory.release(*ctx.task_charges.lock());
        let wall_phases = std::mem::take(&mut *ctx.wall_phases.lock());
        drop(ctx);
        run_result?;

        let mut task_cost = *cost.lock();
        task_cost.local_bytes += io.stats.local();
        task_cost.remote_bytes += io.stats.remote();
        task_cost.zone_checked += io.stats.zone_checked();
        task_cost.zone_skipped += io.stats.zone_skipped();

        let mut records = Arc::try_unwrap(out)
            .map_err(|_| ClydeError::MapReduce("collector leaked out of the map task".into()))?
            .into_records();

        let mut output_file = None;
        if self.map_only {
            match &self.spec.output {
                OutputSpec::Memory => {}
                OutputSpec::DfsDir(dir) => {
                    let rows: Vec<Row> = std::mem::take(&mut records)
                        .into_iter()
                        .map(|(k, v)| Ok(keycodec::decode_row(&k)?.concat(&v)))
                        .collect::<Result<_>>()?;
                    let path = format!("{dir}/part-m-{task_idx:05}");
                    // A previous attempt may have died between committing its
                    // file and reporting success; re-attempts supersede it.
                    if self.dfs.exists(&path) {
                        self.dfs.delete(&path)?;
                    }
                    let payload = rowcodec::write_rows(&rows);
                    task_cost.output_bytes += payload.len() as u64;
                    self.dfs.write_file(&path, None, &payload)?;
                    output_file = Some(path);
                }
            }
        } else {
            // Map-side sort (and combine) before the shuffle.
            shuffle::sort_records(&mut records);
            if let Some(comb) = &self.spec.combiner {
                task_cost.combine_input_records += records.len() as u64;
                records = shuffle::combine_sorted(records, &**comb)?;
                task_cost.combine_output_records += records.len() as u64;
            }
        }

        Ok(TaskOutput {
            records,
            cost: task_cost,
            node,
            output_file,
            wall_ns: wall_start.elapsed_ns(),
            wall_phases,
            speculative: false,
        })
    }

    /// Straggler multiplier the fault plan imposes on `node` (1.0 clean).
    fn slow_factor(&self, node: NodeId) -> f64 {
        self.faults
            .map_or(1.0, |f| f.slow_factor(node.0, self.memories.len()))
    }

    /// Simulated duration of a map attempt with `cost` on `node`, including
    /// the plan's slow-node multiplier. This is the clock heartbeats and the
    /// speculative-execution straggler detector run on — never wall time.
    fn sim_duration(&self, cost: &TaskCost, node: NodeId) -> f64 {
        self.params
            .map_task_duration(self.cluster, cost, self.concurrency)
            * self.slow_factor(node)
    }

    /// The fault plan's verdict on attempt `attempt` (0-based) of `task_idx`.
    fn injected_failure(&self, task_idx: usize, attempt: u32) -> Option<ClydeError> {
        let f = self.faults?;
        if f.fails_attempt(task_idx, attempt, self.max_attempts) {
            Some(ClydeError::MapReduce(format!(
                "injected fault: task {task_idx} attempt {attempt} crashed"
            )))
        } else {
            None
        }
    }

    /// Deterministic alternate node for retry `attempt` (1-based retries):
    /// walk the task's preferred hosts (refreshed after re-replication), then
    /// the whole cluster. Dead nodes are excluded outright; blacklisted nodes
    /// and the node that just failed are avoided while an alternative exists.
    /// Errors when no live node remains anywhere.
    fn retry_node(
        &self,
        task_idx: usize,
        failed: NodeId,
        attempt: u32,
        hosts: &[NodeId],
        blacklisted: &[bool],
    ) -> Result<NodeId> {
        let n = self.memories.len();
        let mut candidates: Vec<NodeId> = hosts.iter().copied().filter(|h| h.0 < n).collect();
        for i in 0..n {
            let node = NodeId(i);
            if !candidates.contains(&node) {
                candidates.push(node);
            }
        }
        candidates.retain(|c| self.dfs.is_node_alive(*c));
        if candidates.is_empty() {
            return Err(ClydeError::MapReduce(format!(
                "map task {task_idx}: no live node left to retry on"
            )));
        }
        let healthy: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|c| *c != failed && !blacklisted.get(c.0).copied().unwrap_or(false))
            .collect();
        let pool = if !healthy.is_empty() {
            healthy
        } else {
            let not_failed: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|c| *c != failed)
                .collect();
            if !not_failed.is_empty() {
                not_failed
            } else {
                candidates // single live node: retry in place
            }
        };
        let k = (attempt as usize).saturating_sub(1) % pool.len().max(1);
        pool.get(k)
            .copied()
            .ok_or_else(|| ClydeError::MapReduce("no candidate node for retry".into()))
    }
}

/// The MapReduce engine bound to one simulated cluster.
pub struct Engine {
    dfs: Arc<Dfs>,
    local: Arc<NodeLocalStore>,
    params: CostParams,
    obs: Arc<Obs>,
}

impl Engine {
    pub fn new(dfs: Arc<Dfs>) -> Engine {
        let params = CostParams::paper();
        Engine::with_params(dfs, params)
    }

    pub fn with_params(dfs: Arc<Dfs>, params: CostParams) -> Engine {
        let nodes = dfs.cluster().num_workers();
        Engine {
            dfs,
            local: Arc::new(NodeLocalStore::new(nodes)),
            params,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability hub; every job run afterwards records its
    /// history, spans, and metrics there.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn local_store(&self) -> &Arc<NodeLocalStore> {
        &self.local
    }

    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Run a job with no client-side artifacts.
    pub fn run_job(&self, spec: &JobSpec) -> Result<JobResult> {
        self.run_job_with(spec, ClientArtifacts::default())
    }

    /// Run a job, making `client.cache` available to every task.
    pub fn run_job_with(&self, spec: &JobSpec, client: ClientArtifacts) -> Result<JobResult> {
        self.run_job_inner(spec, client, true).map(|(r, _)| r)
    }

    /// Run a job without recording it into the observability hub. Returns
    /// the result plus the job's scoped DFS I/O delta (when obs is enabled)
    /// so a caller — the job server — can publish a *scheduled* history for
    /// it later, on the shared multi-job timeline, without double-counting.
    pub fn run_job_quiet(&self, spec: &JobSpec) -> Result<(JobResult, Option<IoSnapshot>)> {
        self.run_job_inner(spec, ClientArtifacts::default(), false)
    }

    fn run_job_inner(
        &self,
        spec: &JobSpec,
        client: ClientArtifacts,
        publish: bool,
    ) -> Result<(JobResult, Option<IoSnapshot>)> {
        let io_scope = if self.obs.is_enabled() {
            Some(self.dfs.io_scope())
        } else {
            None
        };
        let cluster = self.dfs.cluster().clone();
        let n = cluster.num_workers();
        let faults = spec.faults.as_deref();
        // Fault injection: rot the planned replicas before anything reads.
        if let Some(f) = faults {
            if f.corrupt_replicas > 0 {
                self.dfs.inject_corruption(f.seed, f.corrupt_replicas);
            }
        }
        let splits = spec.input.splits(&self.dfs, &spec.conf)?;
        // Result-cache probe (ReStore-style reuse): jobs that carry a
        // code-identity token fingerprint their resolved inputs, and a
        // catalog hit replaces the whole execution with a metadata-only
        // read of the persisted output, priced as a DFS scan.
        let fingerprint = if self.dfs.cache_enabled() {
            crate::fingerprint::job_fingerprint(spec, &splits)
        } else {
            None
        };
        if let Some(fp) = fingerprint {
            if let Some(entry) = self.dfs.cache_lookup(fp) {
                return self.serve_from_cache(spec, &entry, &cluster, &io_scope, publish);
            }
        }
        let concurrency = scheduler::concurrency_per_node(&cluster, spec.declared_task_memory);
        let assignment = scheduler::assign_map_tasks(&splits, &cluster);
        let threads = spec.task_threads.unwrap_or(1).max(1);
        let host_threads = spec.host_threads.unwrap_or(threads).max(1);
        let max_attempts = spec.max_task_attempts.max(1);

        let node_states: Vec<Arc<NodeState>> = (0..n).map(|_| Arc::new(NodeState::new())).collect();
        let memories: Vec<Arc<MemoryTracker>> = (0..n)
            .map(|_| Arc::new(MemoryTracker::new(cluster.node.memory_bytes)))
            .collect();
        let ledger = Arc::new(MemoryLedger::new());
        let env = MapTaskEnv {
            spec,
            splits: &splits,
            dfs: &self.dfs,
            local: &self.local,
            cache: &client.cache,
            node_states: &node_states,
            memories: &memories,
            ledger: &ledger,
            concurrency,
            threads,
            host_threads,
            map_only: spec.reducer.is_none(),
            params: &self.params,
            cluster: &cluster,
            faults,
            max_attempts,
        };

        let mut tasks_by_node: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in assignment.iter().enumerate() {
            let bucket = tasks_by_node.get_mut(node.0).ok_or_else(|| {
                ClydeError::MapReduce(format!("task assigned to unknown node {}", node.0))
            })?;
            bucket.push(i);
        }

        // --- Map phase, first wave: one worker thread per node. Failures
        // are collected, not fatal (except OOM). Each worker tracks its own
        // simulated clock (sum of its committed attempts' durations) so a
        // planned datanode death strikes at a deterministic point. ---
        let outputs: Vec<Mutex<Option<TaskOutput>>> =
            splits.iter().map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<(usize, NodeId, ClydeError)>> = Mutex::new(Vec::new());
        let death_times: Vec<Option<f64>> = (0..n)
            .map(|i| faults.and_then(|f| f.death_time(i, n)))
            .collect();

        std::thread::scope(|scope| {
            for (node_idx, task_list) in tasks_by_node.iter().enumerate() {
                if task_list.is_empty() {
                    continue;
                }
                let node = NodeId(node_idx);
                let env = &env;
                let outputs = &outputs;
                let failures = &failures;
                let death = death_times.get(node_idx).copied().flatten();
                scope.spawn(move || {
                    let mut sim_elapsed = 0.0f64;
                    let mut down = false;
                    for &task_idx in task_list {
                        if down {
                            // The tasktracker stopped heartbeating; its
                            // remaining queue fails over to other nodes.
                            failures.lock().push((
                                task_idx,
                                node,
                                ClydeError::MapReduce(format!(
                                    "heartbeat lost: node {} is dead",
                                    node.0
                                )),
                            ));
                            continue;
                        }
                        if let Some(err) = env.injected_failure(task_idx, 0) {
                            failures.lock().push((task_idx, node, err));
                            continue;
                        }
                        match env.exec(task_idx, node) {
                            Ok(out) => {
                                let dur = env.sim_duration(&out.cost, node);
                                if let Some(at) = death {
                                    if sim_elapsed + dur > at {
                                        // Died mid-attempt: the work is lost.
                                        down = true;
                                        failures.lock().push((
                                            task_idx,
                                            node,
                                            ClydeError::MapReduce(format!(
                                                "heartbeat lost: node {} died mid-task",
                                                node.0
                                            )),
                                        ));
                                        continue;
                                    }
                                }
                                sim_elapsed += dur;
                                if let Some(slot) = outputs.get(task_idx) {
                                    *slot.lock() = Some(out);
                                }
                            }
                            Err(e) => failures.lock().push((task_idx, node, e)),
                        }
                    }
                });
            }
        });

        // --- Heartbeat barrier: planned deaths take effect cluster-wide.
        // The namenode re-replicates lost blocks and the scheduler refreshes
        // each pending task's preferred hosts so retries chase the data. ---
        let mut dead_nodes: Vec<NodeId> = Vec::new();
        let mut rereplicated_blocks = 0u64;
        let mut blacklisted = vec![false; n];
        let mut node_failures = vec![0u32; n];
        let mut retry_hosts: Vec<Vec<NodeId>> = splits.iter().map(|s| s.hosts.clone()).collect();
        for (i, death) in death_times.iter().enumerate() {
            if death.is_some() {
                let node = NodeId(i);
                self.dfs.kill_node(node);
                dead_nodes.push(node);
                if let Some(b) = blacklisted.get_mut(i) {
                    *b = true;
                }
            }
        }
        if dead_nodes.len() < n {
            // With every node dead there is nothing to re-replicate onto; let
            // the retry path below report the job-level failure instead.
            if !dead_nodes.is_empty() {
                rereplicated_blocks = self.dfs.rereplicate()? as u64;
                for (s, slot) in splits.iter().zip(retry_hosts.iter_mut()) {
                    if let SplitSpec::FileRange { path, .. } = &s.spec {
                        if let Ok(hosts) = self.dfs.hosts(path) {
                            *slot = hosts;
                        }
                    }
                }
            }
        }

        // --- Retry wave: re-execute failed tasks on alternate nodes,
        // steering around dead and blacklisted ones. ---
        let mut failed_attempts = 0u32;
        let note_failure =
            |node_failures: &mut Vec<u32>, blacklisted: &mut Vec<bool>, node: NodeId| {
                let Some(count) = node_failures.get_mut(node.0) else {
                    return;
                };
                *count += 1;
                if *count >= BLACKLIST_AFTER_FAILURES {
                    if let Some(b) = blacklisted.get_mut(node.0) {
                        *b = true;
                    }
                }
            };
        let mut failures = failures.into_inner();
        failures.sort_by_key(|(idx, _, _)| *idx); // deterministic order
        for (task_idx, first_node, mut last_err) in failures {
            if last_err.is_oom() {
                return Err(last_err);
            }
            failed_attempts += 1;
            note_failure(&mut node_failures, &mut blacklisted, first_node);
            let mut done = false;
            let mut prev_node = first_node;
            let task_hosts = retry_hosts
                .get(task_idx)
                .map(Vec::as_slice)
                .unwrap_or_default();
            for attempt in 1..max_attempts {
                let node =
                    env.retry_node(task_idx, prev_node, attempt, task_hosts, &blacklisted)?;
                if let Some(err) = env.injected_failure(task_idx, attempt) {
                    failed_attempts += 1;
                    note_failure(&mut node_failures, &mut blacklisted, node);
                    last_err = err;
                    prev_node = node;
                    continue;
                }
                match env.exec(task_idx, node) {
                    Ok(out) => {
                        if let Some(slot) = outputs.get(task_idx) {
                            *slot.lock() = Some(out);
                        }
                        done = true;
                        break;
                    }
                    Err(e) if e.is_oom() => return Err(e),
                    Err(e) => {
                        failed_attempts += 1;
                        note_failure(&mut node_failures, &mut blacklisted, node);
                        last_err = e;
                        prev_node = node;
                    }
                }
            }
            if !done {
                return Err(ClydeError::MapReduce(format!(
                    "map task {task_idx} failed after {max_attempts} attempts: {last_err}"
                )));
            }
        }

        // --- Speculative execution: with a fault plan armed, launch one
        // backup attempt per straggler (simulated duration beyond
        // `speculative_slowdown` × median) and commit whichever attempt
        // finishes first on the simulated clock. The output commit is
        // idempotent, so racing two attempts is safe; the loser is recorded
        // as a killed attempt and priced as wasted slot time. ---
        let mut speculative_attempts = 0u32;
        let mut speculative_wins = 0u32;
        let mut killed_attempts: Vec<KilledAttempt> = Vec::new();
        let spec_plan = if splits.len() >= 2 {
            faults.filter(|f| f.speculative_slowdown.is_finite())
        } else {
            None
        };
        if let Some(plan) = spec_plan {
            let slowdown = plan.speculative_slowdown;
            let mut durs: Vec<f64> = Vec::with_capacity(outputs.len());
            for o in &outputs {
                let g = o.lock();
                let out = g.as_ref().ok_or_else(|| {
                    ClydeError::MapReduce("speculation ran before all map outputs committed".into())
                })?;
                durs.push(env.sim_duration(&out.cost, out.node));
            }
            let mut sorted = durs.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
            // The detector fires once the original has run for `threshold`
            // simulated seconds — that is also when the backup launches.
            let threshold = slowdown * median;
            for (idx, &orig_dur) in durs.iter().enumerate() {
                if orig_dur <= threshold + 1e-9 {
                    continue;
                }
                let Some(orig_node) = outputs
                    .get(idx)
                    .and_then(|o| o.lock().as_ref().map(|t| t.node))
                else {
                    continue;
                };
                // Backup runs on the fastest live, non-blacklisted other node.
                let backup = (0..n)
                    .map(NodeId)
                    .filter(|c| {
                        *c != orig_node
                            && blacklisted.get(c.0).is_some_and(|b| !b)
                            && self.dfs.is_node_alive(*c)
                    })
                    .min_by(|a, b| {
                        env.slow_factor(*a)
                            .total_cmp(&env.slow_factor(*b))
                            .then(a.0.cmp(&b.0))
                    });
                let Some(backup) = backup else { continue };
                speculative_attempts += 1;
                match env.exec(idx, backup) {
                    Ok(mut bout) => {
                        let backup_dur = env.sim_duration(&bout.cost, backup);
                        let backup_finish = threshold + backup_dur;
                        let Some(slot_cell) = outputs.get(idx) else {
                            continue;
                        };
                        let mut slot = slot_cell.lock();
                        let Some(orig) = slot.take() else { continue };
                        if backup_finish + 1e-9 < orig_dur {
                            // Backup wins the race; the original is killed
                            // after `backup_finish` seconds of occupancy.
                            speculative_wins += 1;
                            killed_attempts.push(KilledAttempt {
                                task: idx,
                                node: orig.node,
                                busy_s: backup_finish,
                                cost: orig.cost,
                            });
                            bout.speculative = true;
                            *slot = Some(bout);
                        } else {
                            // Original wins; the backup is killed once the
                            // original commits.
                            killed_attempts.push(KilledAttempt {
                                task: idx,
                                node: backup,
                                busy_s: (orig_dur - threshold).max(0.0).min(backup_dur),
                                cost: bout.cost,
                            });
                            *slot = Some(orig);
                        }
                    }
                    Err(e) if e.is_oom() => return Err(e),
                    Err(_) => {
                        // A failed backup never fails the job — the original
                        // output already stands.
                        failed_attempts += 1;
                        note_failure(&mut node_failures, &mut blacklisted, backup);
                    }
                }
            }
        }

        let mut task_outputs: Vec<TaskOutput> = Vec::with_capacity(splits.len());
        for o in outputs {
            task_outputs.push(o.into_inner().ok_or_else(|| {
                ClydeError::MapReduce("map task produced no output record".into())
            })?);
        }

        let map_tasks: Vec<TaskProfile> = task_outputs
            .iter()
            .map(|t| TaskProfile {
                node: t.node,
                cost: t.cost,
                wall_ns: t.wall_ns,
                speculative: t.speculative,
            })
            .collect();
        // Roll runner-attributed wall clock up to the job, in phase order.
        let mut wall_phases: Vec<(Phase, u64)> = Vec::new();
        for phase in Phase::all() {
            let ns: u64 = task_outputs
                .iter()
                .flat_map(|t| &t.wall_phases)
                .filter(|(p, _)| p == phase)
                .map(|(_, ns)| ns)
                .sum();
            if ns > 0 {
                wall_phases.push((*phase, ns));
            }
        }
        let total_map = map_tasks
            .iter()
            .fold(TaskCost::new(), |acc, t| acc.merge(&t.cost));
        let locality = {
            let total = total_map.local_bytes + total_map.remote_bytes;
            if total == 0 {
                1.0
            } else {
                total_map.local_bytes as f64 / total as f64
            }
        };

        let mut rows: Vec<Row> = Vec::new();
        let mut output_files: Vec<String> = Vec::new();
        let mut reduce_tasks: Vec<TaskProfile> = Vec::new();
        let mut shuffle_bytes = 0u64;

        if env.map_only {
            match &spec.output {
                OutputSpec::Memory => {
                    for t in &mut task_outputs {
                        for (k, v) in std::mem::take(&mut t.records) {
                            rows.push(keycodec::decode_row(&k)?.concat(&v));
                        }
                    }
                }
                OutputSpec::DfsDir(_) => {
                    output_files
                        .extend(task_outputs.iter_mut().filter_map(|t| t.output_file.take()));
                }
            }
        } else {
            let Some(reducer) = spec.reducer.as_ref() else {
                return Err(ClydeError::MapReduce(
                    "reduce phase without a reducer".into(),
                ));
            };
            let num_reducers = spec.num_reducers.max(1);
            // Partition every task's sorted output.
            type SortedRun = Vec<(Vec<u8>, Row)>;
            let mut runs: Vec<Vec<SortedRun>> = (0..num_reducers).map(|_| Vec::new()).collect();
            for t in &mut task_outputs {
                let mut per_part: Vec<SortedRun> = (0..num_reducers).map(|_| Vec::new()).collect();
                for (k, v) in std::mem::take(&mut t.records) {
                    let p = shuffle::partition_of(&k, num_reducers);
                    let bucket = per_part.get_mut(p).ok_or_else(|| {
                        ClydeError::MapReduce(format!("partition {p} out of range"))
                    })?;
                    shuffle_bytes += (k.len() + v.heap_size()) as u64;
                    bucket.push((k, v));
                }
                for (p, run) in per_part.into_iter().enumerate() {
                    if run.is_empty() {
                        continue;
                    }
                    if let Some(dest) = runs.get_mut(p) {
                        dest.push(run);
                    }
                }
            }

            // Reducers planned for a node that died mid-job fail over to the
            // next live node (deterministic round-robin walk).
            let reduce_nodes: Vec<NodeId> = scheduler::assign_reduce_tasks(num_reducers, &cluster)
                .into_iter()
                .map(|node| {
                    if self.dfs.is_node_alive(node) {
                        node
                    } else {
                        (1..=n)
                            .map(|d| NodeId((node.0 + d) % n))
                            .find(|c| self.dfs.is_node_alive(*c))
                            .unwrap_or(node)
                    }
                })
                .collect();
            for (r, node) in reduce_nodes.iter().enumerate() {
                let wall_start = WallTimer::start();
                let task_runs = runs.get_mut(r).map(std::mem::take).unwrap_or_default();
                let mut cost = TaskCost::new();
                cost.merge_runs = task_runs.len() as u64;
                let merged = shuffle::merge_sorted_runs(task_runs);
                cost.deser_rows = merged.len() as u64;
                let mut out_rows = Vec::new();
                shuffle::reduce_sorted(&merged, &**reducer, &mut out_rows)?;
                match &spec.output {
                    OutputSpec::Memory => rows.append(&mut out_rows),
                    OutputSpec::DfsDir(dir) => {
                        let path = format!("{dir}/part-r-{r:05}");
                        let payload = rowcodec::write_rows(&out_rows);
                        cost.output_bytes = payload.len() as u64;
                        self.dfs.write_file(&path, None, &payload)?;
                        output_files.push(path);
                    }
                }
                reduce_tasks.push(TaskProfile {
                    node: *node,
                    cost,
                    wall_ns: wall_start.elapsed_ns(),
                    speculative: false,
                });
            }
        }

        let profile = JobProfile {
            name: spec.name.clone(),
            map_tasks,
            reduce_tasks,
            map_concurrency: concurrency,
            shuffle_bytes,
            client_build_rows: client.build_rows,
            client_publish_bytes: client.cache.disseminated_bytes(),
            memory_per_slot: ledger.per_slot(),
            memory_shared: ledger.shared(),
            memory_per_slot_fixed: ledger.per_slot_fixed(),
            memory_shared_fixed: ledger.shared_fixed(),
            failed_attempts,
            split_locality: scheduler::locality_fraction(&splits, &assignment),
            wall_phases,
            speculative_attempts,
            speculative_wins,
            killed_attempts,
            blacklisted_nodes: blacklisted
                .iter()
                .enumerate()
                .filter(|(_, b)| **b)
                .map(|(i, _)| NodeId(i))
                .collect(),
            dead_nodes,
            rereplicated_blocks,
            node_slowdown: match faults {
                Some(f) if !f.slow_nodes.is_empty() => {
                    (0..n).map(|i| f.slow_factor(i, n)).collect()
                }
                _ => Vec::new(),
            },
        };
        let cost = profile.price(&self.params, &cluster)?;
        // Result-cache fill: persist this job's output under its fingerprint
        // so an identical future submission is served without running tasks.
        if let Some(fp) = fingerprint {
            self.cache_fill(spec, fp, &splits, &rows, &output_files)?;
        }
        let io = io_scope.as_ref().map(|s| s.delta());
        if publish && self.obs.is_enabled() {
            let hist = history::job_history(&profile, &cost, &self.params, &cluster);
            publish_history(&self.obs, &profile, hist, io.as_ref(), false);
        }
        Ok((
            JobResult {
                rows,
                output_files,
                profile,
                cost,
                locality,
                served_from_cache: false,
                fingerprint,
            },
            io,
        ))
    }

    /// Materialize a cache hit: read the persisted output back (memory jobs)
    /// or point downstream readers at the cached files (DFS-dir jobs), with
    /// a synthetic zero-task profile priced as a sequential DFS read.
    fn serve_from_cache(
        &self,
        spec: &JobSpec,
        entry: &CacheEntry,
        cluster: &ClusterSpec,
        io_scope: &Option<IoScope<'_>>,
        publish: bool,
    ) -> Result<(JobResult, Option<IoSnapshot>)> {
        let mut rows = Vec::new();
        let mut output_files = Vec::new();
        match &spec.output {
            OutputSpec::Memory => {
                // Each cached file is its own row-binary stream; decode
                // per-file (a concatenation is not a valid single stream).
                for p in &entry.output_paths {
                    let bytes = self.dfs.read_file(p, None)?;
                    rows.extend(rowcodec::read_rows(&bytes)?);
                }
            }
            OutputSpec::DfsDir(_) => {
                // Metadata-only: downstream stages read the cache directory
                // directly; nothing is copied or re-executed.
                output_files = entry.output_paths.clone();
            }
        }
        let profile = JobProfile {
            name: spec.name.clone(),
            map_concurrency: 1,
            split_locality: 1.0,
            ..JobProfile::default()
        };
        let cost = self.params.cached_read_cost(cluster, entry.bytes);
        let io = io_scope.as_ref().map(|s| s.delta());
        if publish && self.obs.is_enabled() {
            let hist = history::job_history(&profile, &cost, &self.params, cluster);
            publish_history(&self.obs, &profile, hist, io.as_ref(), true);
        }
        Ok((
            JobResult {
                rows,
                output_files,
                profile,
                cost,
                locality: 1.0,
                served_from_cache: true,
                fingerprint: Some(entry.fingerprint),
            },
            io,
        ))
    }

    /// Persist a finished job's output into the result cache. The catalog
    /// admits (or refuses) the entry first — evicting LRU entries and
    /// deleting their backing files — and only an admitted entry's bytes are
    /// written under `/cache/{fingerprint}/`.
    fn cache_fill(
        &self,
        spec: &JobSpec,
        fp: u64,
        splits: &[InputSplit],
        rows: &[Row],
        output_files: &[String],
    ) -> Result<()> {
        let dir = format!("/cache/{fp:016x}");
        // Lineage-fingerprinted stages record no input paths: their inputs
        // are per-run tmp files, and coherence rides the fingerprint chain
        // (a base-stage change re-fingerprints every downstream stage).
        let input_paths = if spec.lineage.is_some() {
            Vec::new()
        } else {
            crate::fingerprint::input_paths(splits)
        };
        match &spec.output {
            OutputSpec::Memory => {
                let payload = rowcodec::write_rows(rows);
                let path = format!("{dir}/rows.bin");
                let admitted = self.dfs.cache_insert(CacheEntry {
                    fingerprint: fp,
                    output_paths: vec![path.clone()],
                    bytes: payload.len() as u64,
                    memory_rows: Some(rows.len() as u64),
                    input_paths,
                    last_used: 0,
                    pinned: false,
                })?;
                if admitted {
                    self.dfs.write_file(&path, None, &payload)?;
                }
            }
            OutputSpec::DfsDir(_) => {
                let mut paths = Vec::with_capacity(output_files.len());
                let mut bytes = 0u64;
                for src in output_files {
                    let name = src.rsplit('/').next().unwrap_or(src);
                    paths.push(format!("{dir}/{name}"));
                    bytes += self.dfs.file_len(src)?;
                }
                let admitted = self.dfs.cache_insert(CacheEntry {
                    fingerprint: fp,
                    output_paths: paths.clone(),
                    bytes,
                    memory_rows: None,
                    input_paths,
                    last_used: 0,
                    pinned: false,
                })?;
                if admitted {
                    for (src, dst) in output_files.iter().zip(&paths) {
                        let data = self.dfs.read_file(src, None)?;
                        self.dfs.write_file(dst, None, &data)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Record a finished job into the observability hub: history + spans plus
/// the unified metrics (engine counters, scheduler locality, DFS I/O
/// attributed to this job via the scoped snapshot). Shared between the
/// engine's solo publish path and the job server's scheduled publish path,
/// so a served job emits exactly the metric set a solo run would.
pub(crate) fn publish_history(
    obs: &Obs,
    profile: &JobProfile,
    mut hist: clyde_common::obs::JobHistory,
    io: Option<&IoSnapshot>,
    served_from_cache: bool,
) {
    if !obs.is_enabled() {
        return;
    }
    let m = obs.metrics();
    m.counter_add("mapred.jobs", 1);
    m.counter_add("mapred.map_tasks", profile.map_tasks.len() as u64);
    m.counter_add("mapred.reduce_tasks", profile.reduce_tasks.len() as u64);
    m.counter_add("mapred.failed_attempts", u64::from(profile.failed_attempts));
    m.counter_add("mapred.shuffle.bytes", profile.shuffle_bytes);
    // Recovery counters are emitted only when the corresponding action
    // fired, so clean runs keep their metric set (and traces) unchanged.
    if profile.speculative_attempts > 0 {
        m.counter_add(
            "mapred.speculative_launched",
            u64::from(profile.speculative_attempts),
        );
    }
    if profile.speculative_wins > 0 {
        m.counter_add(
            "mapred.speculative_wins",
            u64::from(profile.speculative_wins),
        );
    }
    if !profile.blacklisted_nodes.is_empty() {
        m.counter_add(
            "mapred.blacklisted_nodes",
            profile.blacklisted_nodes.len() as u64,
        );
    }
    if !profile.dead_nodes.is_empty() {
        m.counter_add(
            "mapred.heartbeat.lost_nodes",
            profile.dead_nodes.len() as u64,
        );
    }
    if profile.rereplicated_blocks > 0 {
        m.counter_add("dfs.rereplicated_blocks", profile.rereplicated_blocks);
    }

    let total_map = profile.total_map_cost();
    let total_reduce = profile.total_reduce_cost();
    m.counter_add("mapred.emit.records", total_map.emit_records);
    m.counter_add("mapred.emit.bytes", total_map.emit_bytes);
    m.counter_add(
        "mapred.combine.input_records",
        total_map.combine_input_records,
    );
    m.counter_add(
        "mapred.combine.output_records",
        total_map.combine_output_records,
    );
    m.counter_add("mapred.shuffle.merged_runs", total_reduce.merge_runs);
    m.counter_add("dfs.scan.local_bytes", total_map.local_bytes);
    m.counter_add("dfs.scan.remote_bytes", total_map.remote_bytes);
    m.counter_add("dfs.zone.checked", total_map.zone_checked);
    m.counter_add("dfs.zone.skipped", total_map.zone_skipped);
    // Like the recovery counters: only emitted when the prefetch layer
    // actually fired, so small-SF metric sets stay unchanged.
    if total_map.prefetch_activations > 0 {
        m.counter_add("probe.prefetch_activations", total_map.prefetch_activations);
    }
    if let Some(delta) = io {
        m.counter_add("dfs.io.local_read_bytes", delta.total_local_read());
        m.counter_add("dfs.io.remote_read_bytes", delta.total_remote_read());
        m.counter_add("dfs.io.written_bytes", delta.total_written());
        if delta.total_corrupt_reads() > 0 {
            m.counter_add("dfs.corrupt_reads_detected", delta.total_corrupt_reads());
        }
        // Mirror the scoped snapshot into the history so query profiles
        // can report per-node I/O next to phase costs.
        hist.io = delta
            .per_node
            .iter()
            .map(|n| clyde_common::obs::IoBytes {
                node: n.node,
                local_read: n.local_read,
                remote_read: n.remote_read,
                written: n.written,
            })
            .collect();
        hist.corrupt_reads = delta.total_corrupt_reads();
    }
    m.gauge_set("scheduler.split_locality", profile.split_locality);
    m.gauge_set("mapred.scan_locality", hist.locality);
    for t in &hist.tasks {
        // Literal names per arm so the metric registry stays greppable
        // (and lintable) as string constants.
        match t.kind {
            TaskKind::Map => m.histogram_record("mapred.map_task_sim_s", t.dur_s),
            TaskKind::Reduce => m.histogram_record("mapred.reduce_task_sim_s", t.dur_s),
        }
        m.histogram_record("mapred.task_wall_ms", t.wall_ns as f64 / 1e6);
    }
    // Like the recovery counters: cache.hits only appears when a job was
    // actually served from the cache, so cache-off runs keep their metric
    // set byte-identical.
    let (span_ts_s, span_dur_s) = (hist.t0_s, hist.total_s());
    let job_ref = obs.record_job(hist);
    if served_from_cache {
        m.counter_add("cache.hits", 1);
        if let Some(j) = job_ref {
            obs.spans().span(
                None,
                SpanKind::Phase,
                "served-from-cache",
                j.pid,
                0,
                (span_ts_s * 1e6) as u64,
                (span_dur_s * 1e6) as u64,
                vec![("job".into(), profile.name.clone())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DatanodeDeath;
    use crate::formats::VecInputFormat;
    use crate::input::{InputFormat, Reader};
    use crate::runner::{FnMapRunner, FnMapper, RowMapRunner};
    use crate::shuffle::FnReducer;
    use crate::JobConf;
    use clyde_common::row;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Wraps an input format, failing `open` for split 0 on its first
    /// `failures` calls — a crash-on-read fault injection.
    struct FlakyInputFormat {
        inner: VecInputFormat,
        failures: AtomicU32,
    }

    impl InputFormat for FlakyInputFormat {
        fn splits(&self, dfs: &Dfs, conf: &JobConf) -> Result<Vec<InputSplit>> {
            self.inner.splits(dfs, conf)
        }

        fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
            if split.index == 0
                && self
                    .failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        if v > 0 {
                            Some(v - 1)
                        } else {
                            None
                        }
                    })
                    .is_ok()
            {
                return Err(ClydeError::MapReduce("injected split-0 failure".into()));
            }
            self.inner.open(split, part, io)
        }
    }

    fn sum_job(input: Arc<dyn InputFormat>) -> JobSpec {
        let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&row![0i64], v.clone());
            Ok(())
        }));
        let mut spec = JobSpec::new("sum", input, Arc::new(mapper));
        spec.reducer = Some(Arc::new(FnReducer(
            |_k: &Row, values: &[Row], out: &mut Vec<Row>| {
                let s: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
                out.push(row![s]);
                Ok(())
            },
        )));
        spec.num_reducers = 1;
        spec
    }

    fn rows() -> Vec<Row> {
        (1..=10i64).map(|i| row![i]).collect()
    }

    #[test]
    fn transient_task_failure_is_retried_on_another_node() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 3),
            failures: AtomicU32::new(1),
        };
        let spec = sum_job(Arc::new(flaky));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
        assert_eq!(result.profile.failed_attempts, 1);
    }

    #[test]
    fn repeated_transient_failures_exhaust_then_succeed_within_budget() {
        let dfs = Dfs::for_tests(4);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 2),
            failures: AtomicU32::new(3), // attempts 1..3 fail, 4th succeeds
        };
        let spec = sum_job(Arc::new(flaky)); // max_task_attempts = 4
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
        assert_eq!(result.profile.failed_attempts, 3);
    }

    #[test]
    fn permanent_failure_fails_the_job_after_the_attempt_budget() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let flaky = FlakyInputFormat {
            inner: VecInputFormat::new(rows(), 2),
            failures: AtomicU32::new(u32::MAX), // never recovers
        };
        let spec = sum_job(Arc::new(flaky));
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.to_string().contains("4 attempts"), "{err}");
    }

    #[test]
    fn oom_is_not_retried() {
        let dfs = Dfs::for_tests(2); // 4 GB nodes
        let engine = Engine::new(Arc::clone(&dfs));
        let attempts = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&attempts);
        let runner = FnMapRunner(move |ctx: &MapTaskContext<'_>| {
            a2.fetch_add(1, Ordering::SeqCst);
            ctx.charge_memory_shared(1 << 40)?; // 1 TB
            Ok(())
        });
        let spec = JobSpec::new(
            "oom",
            Arc::new(VecInputFormat::new(rows(), 1)),
            Arc::new(runner),
        );
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.is_oom());
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "OOM must not retry");
    }

    #[test]
    fn node_death_mid_job_is_survived_by_retries() {
        // Data with replication 2 on 3 nodes; kill one node's replicas
        // before running: tasks preferring that node fail their reads and
        // retry elsewhere against surviving replicas.
        let dfs = Dfs::for_tests(3);
        let payload = rowcodec::write_rows(&rows());
        dfs.write_file("/in/part-00000", None, &payload).unwrap();
        let victim = dfs.hosts("/in/part-00000").unwrap()[0];

        struct DfsRowsFormat;
        impl InputFormat for DfsRowsFormat {
            fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                crate::formats::RowBinInputFormat::new("/in").splits(dfs, &JobConf::new())
            }
            fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                crate::formats::RowBinInputFormat::new("/in").open(split, part, io)
            }
        }

        let engine = Engine::new(Arc::clone(&dfs));
        dfs.kill_node(victim);
        let spec = sum_job(Arc::new(DfsRowsFormat));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
    }

    // --- Result-cache tests: fingerprint hits must serve byte-identical
    // output without running any tasks, and coherence must survive input
    // roll-in/roll-out. ---

    #[test]
    fn cache_hit_serves_identical_rows_without_tasks() {
        let dfs = Dfs::for_tests(3);
        dfs.cache_configure(1 << 20);
        let engine = Engine::new(Arc::clone(&dfs));
        let mut spec = sum_job(Arc::new(VecInputFormat::new(rows(), 3)));
        spec.code_token = "test:sum:v1".into();

        let cold = engine.run_job(&spec).unwrap();
        assert!(!cold.served_from_cache);
        assert_eq!(dfs.cache_stats().inserts, 1);

        let warm = engine.run_job(&spec).unwrap();
        assert!(warm.served_from_cache);
        assert_eq!(warm.rows, cold.rows);
        assert!(warm.profile.map_tasks.is_empty());
        assert!(warm.profile.reduce_tasks.is_empty());
        assert!(warm.cost.total_s() < cold.cost.total_s());
        let stats = dfs.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn empty_code_token_bypasses_the_cache() {
        let dfs = Dfs::for_tests(3);
        dfs.cache_configure(1 << 20);
        let engine = Engine::new(Arc::clone(&dfs));
        let spec = sum_job(Arc::new(VecInputFormat::new(rows(), 3)));
        engine.run_job(&spec).unwrap();
        let warm = engine.run_job(&spec).unwrap();
        assert!(!warm.served_from_cache);
        let stats = dfs.cache_stats();
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0, "untokened jobs never probe the cache");
    }

    #[test]
    fn cache_disabled_never_serves() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let mut spec = sum_job(Arc::new(VecInputFormat::new(rows(), 3)));
        spec.code_token = "test:sum:v1".into();
        engine.run_job(&spec).unwrap();
        let warm = engine.run_job(&spec).unwrap();
        assert!(!warm.served_from_cache);
        assert_eq!(dfs.cache_stats().inserts, 0);
    }

    #[test]
    fn input_rollover_invalidates_cached_result() {
        // The stale-cache hazard: delete + recreate the same input path with
        // different content (same row count, so lengths can even match) and
        // the cached result must NOT be served.
        let dfs = Dfs::for_tests(3);
        dfs.cache_configure(1 << 20);
        let engine = Engine::new(Arc::clone(&dfs));
        dfs.write_file("/in/part-00000", None, &rowcodec::write_rows(&rows()))
            .unwrap();

        struct DirRows;
        impl InputFormat for DirRows {
            fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                crate::formats::RowBinInputFormat::new("/in").splits(dfs, &JobConf::new())
            }
            fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                crate::formats::RowBinInputFormat::new("/in").open(split, part, io)
            }
        }

        let mut spec = sum_job(Arc::new(DirRows));
        spec.code_token = "test:dirsum:v1".into();
        assert_eq!(engine.run_job(&spec).unwrap().rows, vec![row![55i64]]);
        assert!(engine.run_job(&spec).unwrap().served_from_cache);

        // Roll the input over: same path, different rows.
        dfs.delete("/in/part-00000").unwrap();
        let swapped: Vec<Row> = (1..=10i64).map(|i| row![i * 2]).collect();
        dfs.write_file("/in/part-00000", None, &rowcodec::write_rows(&swapped))
            .unwrap();
        let after = engine.run_job(&spec).unwrap();
        assert!(!after.served_from_cache, "rolled-over input must miss");
        assert_eq!(after.rows, vec![row![110i64]]);
        assert!(dfs.cache_stats().invalidations >= 1);
    }

    #[test]
    fn dfsdir_hit_redirects_output_files_to_cache_paths() {
        let dfs = Dfs::for_tests(3);
        dfs.cache_configure(1 << 20);
        let engine = Engine::new(Arc::clone(&dfs));
        let mut spec = sum_job(Arc::new(VecInputFormat::new(rows(), 2)));
        spec.code_token = "test:dirout:v1".into();
        spec.output = OutputSpec::DfsDir("/out/run-1".into());

        let cold = engine.run_job(&spec).unwrap();
        spec.output = OutputSpec::DfsDir("/out/run-2".into());
        let warm = engine.run_job(&spec).unwrap();
        assert!(warm.served_from_cache);
        assert_eq!(warm.output_files.len(), cold.output_files.len());
        for (c, w) in cold.output_files.iter().zip(&warm.output_files) {
            assert!(w.starts_with("/cache/"), "{w} should be a cache path");
            assert_eq!(
                dfs.read_file(w, None).unwrap(),
                dfs.read_file(c, None).unwrap(),
                "cached bytes must equal recomputed bytes"
            );
        }
    }

    #[test]
    fn eviction_under_pressure_re_misses_and_recomputes() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let mut a = sum_job(Arc::new(VecInputFormat::new(rows(), 2)));
        a.code_token = "test:evict:a".into();
        let mut b = sum_job(Arc::new(VecInputFormat::new(wide_rows(), 2)));
        b.code_token = "test:evict:b".into();

        // Capacity fits either entry alone but never both: measure the two
        // payload sizes first, then rebuild with the tight budget.
        dfs.cache_configure(1 << 20);
        let ra = engine.run_job(&a).unwrap();
        let rb = engine.run_job(&b).unwrap();
        let bytes_a = rowcodec::write_rows(&ra.rows).len() as u64;
        let bytes_b = rowcodec::write_rows(&rb.rows).len() as u64;
        let dfs2 = Dfs::for_tests(3);
        dfs2.cache_configure(bytes_a.max(bytes_b));
        let engine2 = Engine::new(Arc::clone(&dfs2));

        let first_a = engine2.run_job(&a).unwrap();
        engine2.run_job(&b).unwrap(); // same size; evicts a
        assert_eq!(dfs2.cache_stats().evictions, 1);
        let again_a = engine2.run_job(&a).unwrap();
        assert!(!again_a.served_from_cache, "evicted entry must re-miss");
        assert_eq!(again_a.rows, first_a.rows);
        // After recompute it is cached again and serves.
        assert!(engine2.run_job(&a).unwrap().served_from_cache);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// Coherence under *random* interleavings of replays and
        /// fact-partition roll-in/roll-out: no schedule of deletes and
        /// re-creates may ever serve a stale cached result. A replayed sum
        /// over the fact directory must always reflect exactly the
        /// partitions live at that moment (the deterministic rollover test
        /// above pins the single-swap case; this one walks the schedule
        /// space).
        #[test]
        fn random_rollover_interleavings_never_serve_stale(
            ops in proptest::collection::vec(proptest::prelude::any::<bool>(), 1..24)
        ) {
            struct FactsRows;
            impl InputFormat for FactsRows {
                fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                    crate::formats::RowBinInputFormat::new("/facts").splits(dfs, &JobConf::new())
                }
                fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                    crate::formats::RowBinInputFormat::new("/facts").open(split, part, io)
                }
            }

            let dfs = Dfs::for_tests(3);
            dfs.cache_configure(1 << 20);
            let engine = Engine::new(Arc::clone(&dfs));
            // Partition 0 is the stable fact history (sums to 55);
            // partition 1 rolls in and out with fresh content each cycle.
            dfs.write_file("/facts/part-00000", None, &rowcodec::write_rows(&rows()))
                .unwrap();
            let mut spec = sum_job(Arc::new(FactsRows));
            spec.code_token = "test:factsum:v1".into();

            let mut p1_version = 0i64;
            let mut p1_live = false;
            for replay in ops {
                if replay {
                    let expected = 55 + if p1_live { 100 * p1_version } else { 0 };
                    let r = engine.run_job(&spec).unwrap();
                    proptest::prop_assert_eq!(&r.rows, &vec![row![expected]]);
                } else if p1_live {
                    dfs.delete("/facts/part-00001").unwrap();
                    p1_live = false;
                } else {
                    p1_version += 1;
                    dfs.write_file(
                        "/facts/part-00001",
                        None,
                        &rowcodec::write_rows(&[row![100 * p1_version]]),
                    )
                    .unwrap();
                    p1_live = true;
                }
            }
        }
    }

    // --- Seeded fault-plan tests: every injected fault must be recovered
    // transparently (same rows as a clean run) with the recovery visible in
    // the job profile. ---

    fn wide_rows() -> Vec<Row> {
        (1..=12i64).map(|i| row![i]).collect()
    }

    fn wide_sum(faults: Option<FaultPlan>) -> JobSpec {
        let mut spec = sum_job(Arc::new(VecInputFormat::new(wide_rows(), 3)));
        spec.faults = faults.map(Arc::new);
        spec
    }

    #[test]
    fn injected_task_failures_are_recovered_transparently() {
        let clean = Engine::new(Dfs::for_tests(3))
            .run_job(&wide_sum(None))
            .unwrap();
        let mut plan = FaultPlan::new(7);
        plan.task_fail_rate = 1.0; // every task crashes at least once
        let faulty = Engine::new(Dfs::for_tests(3))
            .run_job(&wide_sum(Some(plan)))
            .unwrap();
        assert_eq!(faulty.rows, clean.rows);
        assert_eq!(faulty.rows, vec![row![78i64]]);
        assert!(faulty.profile.failed_attempts >= 3, "one crash per task");
    }

    #[test]
    fn slow_node_triggers_a_winning_backup_attempt() {
        let clean = Engine::new(Dfs::for_tests(3))
            .run_job(&wide_sum(None))
            .unwrap();
        let plan = FaultPlan::named("slow-node", 46).unwrap();
        let faulty = Engine::new(Dfs::for_tests(3))
            .run_job(&wide_sum(Some(plan)))
            .unwrap();
        assert_eq!(faulty.rows, clean.rows);
        assert!(faulty.profile.speculative_attempts >= 1);
        assert!(faulty.profile.speculative_wins >= 1);
        assert!(
            !faulty.profile.killed_attempts.is_empty(),
            "the straggler's original attempt is killed when the backup wins"
        );
        // Wasted backup work is priced: the faulty run costs more map time.
        assert!(faulty.cost.map_s > clean.cost.map_s);
    }

    #[test]
    fn datanode_death_mid_job_triggers_rereplication_and_blacklisting() {
        let payload = rowcodec::write_rows(&rows());

        struct DfsRowsFormat;
        impl InputFormat for DfsRowsFormat {
            fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                crate::formats::RowBinInputFormat::new("/in").splits(dfs, &JobConf::new())
            }
            fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                crate::formats::RowBinInputFormat::new("/in").open(split, part, io)
            }
        }

        let dfs = Dfs::for_tests(3);
        dfs.write_file("/in/part-00000", None, &payload).unwrap();
        let victim = dfs.hosts("/in/part-00000").unwrap()[0];
        let mut plan = FaultPlan::new(11);
        plan.datanode_deaths = vec![DatanodeDeath {
            node: victim.0,
            at_sim_s: 0.0,
        }];
        let mut spec = sum_job(Arc::new(DfsRowsFormat));
        spec.faults = Some(Arc::new(plan));
        let engine = Engine::new(Arc::clone(&dfs));
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.rows, vec![row![55i64]]);
        assert_eq!(result.profile.dead_nodes, vec![victim]);
        assert!(result.profile.blacklisted_nodes.contains(&victim));
        assert!(
            result.profile.rereplicated_blocks >= 1,
            "the victim's replicas must be re-created on survivors"
        );
        assert!(!dfs.is_node_alive(victim));
    }

    #[test]
    fn corruption_is_recovered_via_replica_fallback() {
        struct DfsRowsFormat;
        impl InputFormat for DfsRowsFormat {
            fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
                crate::formats::RowBinInputFormat::new("/in").splits(dfs, &JobConf::new())
            }
            fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
                crate::formats::RowBinInputFormat::new("/in").open(split, part, io)
            }
        }

        let run = |faults: Option<FaultPlan>| {
            let dfs = Dfs::for_tests(3);
            dfs.write_file("/in/part-00000", None, &rowcodec::write_rows(&rows()))
                .unwrap();
            let mut spec = sum_job(Arc::new(DfsRowsFormat));
            spec.faults = faults.map(Arc::new);
            Engine::new(dfs).run_job(&spec).unwrap()
        };
        let clean = run(None);
        let faulty = run(FaultPlan::named("corruption", 46));
        assert_eq!(faulty.rows, clean.rows);
        assert_eq!(faulty.rows, vec![row![55i64]]);
    }

    #[test]
    fn losing_every_node_fails_cleanly() {
        let mut plan = FaultPlan::new(3);
        plan.datanode_deaths = (0..3)
            .map(|node| DatanodeDeath {
                node,
                at_sim_s: 0.0,
            })
            .collect();
        let err = Engine::new(Dfs::for_tests(3))
            .run_job(&wide_sum(Some(plan)))
            .unwrap_err();
        assert!(
            err.to_string().contains("no live node left to retry on"),
            "{err}"
        );
    }

    #[test]
    fn fault_recovery_is_deterministic_for_a_fixed_seed() {
        let run = || {
            Engine::new(Dfs::for_tests(3))
                .run_job(&wide_sum(FaultPlan::named("combined", 46)))
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.profile.failed_attempts, b.profile.failed_attempts);
        assert_eq!(
            a.profile.speculative_attempts,
            b.profile.speculative_attempts
        );
        assert_eq!(a.profile.speculative_wins, b.profile.speculative_wins);
        assert_eq!(a.profile.killed_attempts, b.profile.killed_attempts);
        assert_eq!(a.profile.dead_nodes, b.profile.dead_nodes);
        assert_eq!(a.profile.blacklisted_nodes, b.profile.blacklisted_nodes);
        assert_eq!(a.cost.map_s.to_bits(), b.cost.map_s.to_bits());
    }
}
