//! D008 fixture: a wall-derived value flowing into a sim-time sink.
//! This file is NOT compiled; `clyde-lint --self-test` must flag it.

struct Metrics;
impl Metrics {
    fn add(&self, _name: &str, _v: f64) {}
}

/// Tainted flow: timer → elapsed → metric series CI byte-compares.
fn publish(m: &Metrics) {
    let timer = WallTimer::start();
    let spent_s = timer.elapsed_s();
    m.histogram_record("mapred.merge_phase_s", spent_s);
}

/// The sanctioned channel: a `*wall*`-named series, which shadow_check's
/// `filter_wall` drops before byte-comparing — must NOT be flagged.
fn sanctioned(m: &Metrics, timer: &WallTimer) {
    m.histogram_record("mapred.task_wall_ms", timer.elapsed_s() * 1e3);
}

/// Sim-time values are untainted — must NOT be flagged.
fn sim_time(m: &Metrics, sim_s: f64) {
    m.histogram_record("mapred.task_sim_s", sim_s);
}
