//! The probe phase: fact rows against the dimension hash tables.
//!
//! Two implementations of the same logic:
//!
//! * [`probe_block`] — B-CIF block iteration (Section 5.3): tight loops over
//!   typed column slices, no per-row materialization;
//! * [`probe_row`] — row-at-a-time, used when the block-iteration feature is
//!   ablated.
//!
//! Both use **early-out** (Section 4.2): the first failed dimension probe
//! abandons the row, so highly selective dimensions placed early make later
//! probes rare. Aggregation happens *inside the task* into a group hash map
//! (the combiner pattern of Figure 4), so a map task emits one record per
//! group, not per fact row.

use crate::hashtable::DimTables;
use clyde_common::{ClydeError, FxHashMap, Result, Row, RowBlock, Schema};
use clyde_ssb::queries::{Aggregate, CompiledFactPred, StarQuery};

/// Index-resolved probe plan against a scan schema (the projected fact
/// columns actually read).
#[derive(Debug, Clone)]
pub struct ProbePlan {
    pub fact_preds: Vec<CompiledFactPred>,
    /// Scan-schema column index of each join's foreign key.
    pub fks: Vec<usize>,
    /// Scan-schema indices of the measure columns (`None` for count(*)).
    pub agg_a: Option<usize>,
    pub agg_b: Option<usize>,
    pub aggregate: Aggregate,
    /// For each group-by column: (join index, aux index within that join).
    pub group_src: Vec<(usize, usize)>,
}

impl ProbePlan {
    /// Compile a star query against the schema of the scanned columns.
    pub fn compile(query: &StarQuery, scan_schema: &Schema) -> Result<ProbePlan> {
        let fact_preds = query
            .fact_preds
            .iter()
            .map(|p| p.compile(scan_schema))
            .collect::<Result<_>>()?;
        let fks = query
            .joins
            .iter()
            .map(|j| scan_schema.index_of(&j.fk))
            .collect::<Result<_>>()?;
        let agg_cols = query.aggregate.columns();
        let agg_a = agg_cols
            .first()
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let agg_b = agg_cols
            .get(1)
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let group_src = query
            .group_by
            .iter()
            .map(|g| query.group_col_source(g))
            .collect::<Result<_>>()?;
        Ok(ProbePlan {
            fact_preds,
            fks,
            agg_a,
            agg_b,
            aggregate: query.aggregate.clone(),
            group_src,
        })
    }
}

/// Counters produced by the probe phase, feeding the cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Rows iterated.
    pub rows: u64,
    /// Individual hash-table probe operations performed (early-out makes
    /// this less than rows × joins).
    pub probes: u64,
    /// Rows surviving all predicates and probes.
    pub survivors: u64,
}

impl ProbeStats {
    pub fn add(&mut self, other: &ProbeStats) {
        self.rows += other.rows;
        self.probes += other.probes;
        self.survivors += other.survivors;
    }
}

const MAX_JOINS: usize = 8;

/// Probe one column block, accumulating partial sums per group into `acc`.
pub fn probe_block(
    block: &RowBlock,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    if plan.fks.len() > MAX_JOINS {
        return Err(ClydeError::Plan("too many dimension joins".into()));
    }
    // Typed views of the needed columns. Fact predicates, FKs and measures
    // are all i32 in SSB; non-i32 scan columns are never touched here.
    let i32_slices: Vec<Option<&[i32]>> = block
        .columns()
        .iter()
        .map(|c| match c {
            clyde_common::ColumnData::I32(v) => Some(v.as_slice()),
            _ => None,
        })
        .collect();
    let slice = |idx: usize| -> Result<&[i32]> {
        i32_slices[idx].ok_or_else(|| {
            ClydeError::Plan(format!("scan column {idx} is not i32 but the probe needs it"))
        })
    };
    let fk_slices: Vec<&[i32]> = plan
        .fks
        .iter()
        .map(|&i| slice(i))
        .collect::<Result<_>>()?;
    let pred_slices: Vec<&[i32]> = plan
        .fact_preds
        .iter()
        .map(|p| slice(p.col()))
        .collect::<Result<_>>()?;
    let agg_a = plan.agg_a.map(slice).transpose()?;
    let agg_b = plan.agg_b.map(slice).transpose()?;

    let n = block.len();
    stats.rows += n as u64;
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    'rows: for i in 0..n {
        for (p, s) in plan.fact_preds.iter().zip(&pred_slices) {
            let ok = match *p {
                CompiledFactPred::Between { lo, hi, .. } => {
                    let v = s[i];
                    v >= lo && v <= hi
                }
                CompiledFactPred::Lt { value, .. } => s[i] < value,
            };
            if !ok {
                continue 'rows;
            }
        }
        for (j, fk_col) in fk_slices.iter().enumerate() {
            stats.probes += 1;
            match tables.tables[j].get(i64::from(fk_col[i])) {
                Some(aux) => matched[j] = Some(aux),
                None => continue 'rows, // early-out
            }
        }
        stats.survivors += 1;
        let key: Row = plan
            .group_src
            .iter()
            .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
            .collect();
        let measure = plan.aggregate.eval_i64(agg_a, agg_b, i);
        let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
        *slot = plan.aggregate.fold(*slot, measure);
    }
    Ok(())
}

/// Row-at-a-time probe (block iteration ablated): same semantics as
/// [`probe_block`] over a materialized row of the scan schema.
pub fn probe_row(
    row: &Row,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    stats.rows += 1;
    let geti = |idx: usize| -> Result<i64> {
        row.at(idx)
            .as_i64()
            .ok_or_else(|| ClydeError::Plan(format!("scan column {idx} is not an integer")))
    };
    for p in &plan.fact_preds {
        let ok = match *p {
            CompiledFactPred::Between { col, lo, hi } => {
                let v = geti(col)?;
                v >= i64::from(lo) && v <= i64::from(hi)
            }
            CompiledFactPred::Lt { col, value } => geti(col)? < i64::from(value),
        };
        if !ok {
            return Ok(());
        }
    }
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    for (j, &fk_idx) in plan.fks.iter().enumerate() {
        stats.probes += 1;
        match tables.tables[j].get(geti(fk_idx)?) {
            Some(aux) => matched[j] = Some(aux),
            None => return Ok(()),
        }
    }
    stats.survivors += 1;
    let key: Row = plan
        .group_src
        .iter()
        .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
        .collect();
    let measure = match (&plan.aggregate, plan.agg_a, plan.agg_b) {
        (Aggregate::SumColumn(_), Some(a), _)
        | (Aggregate::MinColumn(_), Some(a), _)
        | (Aggregate::MaxColumn(_), Some(a), _) => geti(a)?,
        (Aggregate::SumProduct(_, _), Some(a), Some(b)) => geti(a)? * geti(b)?,
        (Aggregate::SumDiff(_, _), Some(a), Some(b)) => geti(a)? - geti(b)?,
        (Aggregate::CountStar, _, _) => 1,
        _ => return Err(ClydeError::Plan("aggregate missing measure column".into())),
    };
    let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
    *slot = plan.aggregate.fold(*slot, measure);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::RowBlockBuilder;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::query_by_id;
    use clyde_ssb::schema;

    /// Shared fixture: SF 0.005 data, Q2.1 plan+tables.
    fn fixture() -> (
        clyde_ssb::SsbData,
        StarQuery,
        Schema,
        Vec<usize>,
        ProbePlan,
        DimTables,
    ) {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let scan_cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&scan_cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        (data, q, scan_schema, scan_cols, plan, tables)
    }

    fn block_of(data: &clyde_ssb::SsbData, scan_schema: &Schema, cols: &[usize]) -> RowBlock {
        let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
        let mut b = RowBlockBuilder::new(&dtypes);
        for lo in &data.lineorder {
            b.push_row(&lo.project(cols)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn block_probe_matches_reference() {
        let (data, q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();

        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(rows, expect);
        assert_eq!(stats.rows, data.lineorder.len() as u64);
        assert!(stats.survivors > 0);
    }

    #[test]
    fn row_probe_matches_block_probe() {
        let (data, _q, _scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &_scan_schema, &cols);
        let mut acc_block = FxHashMap::default();
        let mut st1 = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc_block, &mut st1).unwrap();

        let mut acc_row = FxHashMap::default();
        let mut st2 = ProbeStats::default();
        for lo in &data.lineorder {
            probe_row(&lo.project(&cols), &plan, &tables, &mut acc_row, &mut st2).unwrap();
        }
        assert_eq!(acc_block, acc_row);
        assert_eq!(st1, st2, "both paths must count identically");
    }

    #[test]
    fn early_out_reduces_probe_count() {
        // Build a variant of Q2.1 that probes the selective part join first
        // (Clydesdale is free to choose probe order; this tests early-out).
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        q.joins.rotate_left(1); // part, supplier, date
        assert_eq!(q.joins[0].dimension, "part");
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        // Part's category filter (≈ 1/25) gates the remaining probes, so
        // total probes stay far below rows × 3 joins.
        assert!(
            stats.probes < stats.rows * 2,
            "early-out broken: {} probes for {} rows",
            stats.probes,
            stats.rows
        );
        // But at least one probe per row happened.
        assert!(stats.probes >= stats.rows);
        // Early-out never changes results: reordered joins give the same
        // answer as the reference.
        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &query_by_id("Q2.1").unwrap()).unwrap();
        // Group-by order differs only if aux sources moved; Q2.1 groups by
        // (d_year, p_brand1) regardless of join order.
        assert_eq!(rows, expect);
    }

    #[test]
    fn fact_predicates_gate_probing() {
        // Q1.1 has fact predicates; rows failing them must not probe at all.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q1.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        assert!(stats.probes < stats.rows / 2, "predicates must gate probes");
        // Single group (no group-by).
        assert_eq!(acc.len(), 1);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(acc.values().next().copied().unwrap(), expect[0].at(0).as_i64().unwrap());
    }

    #[test]
    fn compile_rejects_missing_columns() {
        let q = query_by_id("Q2.1").unwrap();
        let tiny = Schema::new(vec![clyde_common::Field::i32("lo_partkey")]);
        assert!(ProbePlan::compile(&q, &tiny).is_err());
    }
}
