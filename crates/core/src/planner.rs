//! Compiles a [`StarQuery`] into one MapReduce job (paper Figure 4's
//! `main()`): CIF input with the projected column list, the multi-threaded
//! map runner, memory-marked tasks for one-task-per-node scheduling, and a
//! sum reducer for the group-by.

use crate::config::Features;
use crate::mtrunner::MtMapRunner;
use clyde_columnar::{CifInputFormat, MultiSplit, ScanMode, ZonePred};
use clyde_common::{ClydeError, Result, Row, Schema};
use clyde_dfs::ClusterSpec;
use clyde_mapred::shuffle::FnReducer;
use clyde_mapred::{JobSpec, OutputSpec};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::{DimPred, FactPred, StarQuery};
use clyde_ssb::schema;
use std::sync::Arc;

/// Rows per scanned block — and therefore per *morsel*, the unit of work
/// the multi-threaded runner's threads steal from each other. Small enough
/// that a morsel's columns sit in L2 while it is probed, big enough to
/// amortize per-block dispatch. Benchmarks (`bench_probe`) use the same
/// granularity so measured kernels match production blocks.
pub const ROWS_PER_BLOCK: usize = 4096;

/// The scan schema for a query under the given features: the projected
/// fact columns when columnar scanning is on, all 17 columns otherwise.
pub fn scan_schema(query: &StarQuery, features: &Features) -> Result<(Vec<String>, Schema)> {
    let fact = schema::lineorder_schema();
    let names: Vec<String> = if features.columnar {
        query.fact_columns()
    } else {
        fact.fields().iter().map(|f| f.name.clone()).collect()
    };
    let idx: Vec<usize> = names
        .iter()
        .map(|n| fact.index_of(n))
        .collect::<Result<_>>()?;
    Ok((names.clone(), fact.project(&idx)))
}

/// Conjunctive range predicates the scan can prune row groups with: the
/// query's own fact-column predicates, plus a `lo_orderdate` range derived
/// from the date dimension's filter. Datekeys are `yyyymmdd` integers, so
/// year / yearmonth filters translate to contiguous key ranges — and the
/// loader's date clustering makes those ranges line up with row groups.
/// Pruning with these is purely an optimization; results never change.
pub fn zone_preds(query: &StarQuery) -> Vec<ZonePred> {
    let mut out = Vec::new();
    for p in &query.fact_preds {
        match p {
            FactPred::I32Between { column, lo, hi } => {
                out.push(ZonePred::new(column.clone(), *lo, *hi));
            }
            FactPred::I32Lt { column, value } => {
                out.push(ZonePred::new(
                    column.clone(),
                    i32::MIN,
                    value.saturating_sub(1),
                ));
            }
        }
    }
    for j in &query.joins {
        if j.dimension == schema::DATE && j.pk == "d_datekey" {
            if let Some((lo, hi)) = date_pred_range(&j.predicate) {
                out.push(ZonePred::new(j.fk.clone(), lo, hi));
            }
        }
    }
    out
}

/// Translate a date-dimension predicate into an inclusive `d_datekey`
/// range, when one exists. Conservative: `None` when the predicate doesn't
/// constrain the key to a contiguous range we can prove.
fn date_pred_range(p: &DimPred) -> Option<(i32, i32)> {
    let year_span = |lo: i32, hi: i32| (lo * 10_000 + 101, hi * 10_000 + 1231);
    match p {
        DimPred::I32Eq { column, value } if column == "d_year" => Some(year_span(*value, *value)),
        DimPred::I32Eq { column, value } if column == "d_yearmonthnum" => {
            // yyyymm -> [yyyymm01, yyyymm31].
            Some((value * 100 + 1, value * 100 + 31))
        }
        DimPred::I32Between { column, lo, hi } if column == "d_year" => Some(year_span(*lo, *hi)),
        DimPred::I32In { column, values } if column == "d_year" && !values.is_empty() => {
            Some(year_span(
                *values.iter().min().expect("non-empty"),
                *values.iter().max().expect("non-empty"),
            ))
        }
        DimPred::StrEq { column, value } if column == "d_yearmonth" => {
            // "Dec1997": three-letter month abbreviation + year.
            let (mon, year) = value.split_at(3.min(value.len()));
            let m = schema::MONTHS.iter().position(|&(_, abbr)| abbr == mon)? as i32 + 1;
            let y: i32 = year.parse().ok()?;
            Some((y * 10_000 + m * 100 + 1, y * 10_000 + m * 100 + 31))
        }
        DimPred::And(ps) => {
            // Intersect whichever conjuncts translate.
            let mut acc: Option<(i32, i32)> = None;
            for p in ps {
                if let Some((lo, hi)) = date_pred_range(p) {
                    acc = Some(match acc {
                        Some((a, b)) => (a.max(lo), b.min(hi)),
                        None => (lo, hi),
                    });
                }
            }
            acc
        }
        _ => None,
    }
}

/// Build the MapReduce job for `query`.
pub fn plan_query(
    query: &StarQuery,
    layout: &SsbLayout,
    features: Features,
    cluster: &ClusterSpec,
) -> Result<JobSpec> {
    query.validate()?;
    let (scan_cols, scan) = scan_schema(query, &features)?;

    let mode = if features.block_iteration {
        ScanMode::Blocks {
            rows_per_block: ROWS_PER_BLOCK,
        }
    } else {
        ScanMode::Rows
    };
    // One multi-split per node (Section 5.1) with multithreading; otherwise
    // plain per-group splits that fill every slot with independent
    // single-threaded tasks (the ablation configuration).
    let multi = if features.multithreading {
        MultiSplit::OnePerNode
    } else {
        MultiSplit::Single
    };
    let mut input = CifInputFormat::new(layout.fact_cif())
        .with_columns(scan_cols)
        .with_mode(mode)
        .with_multi(multi);
    if features.zone_skipping {
        input = input.with_zone_preds(zone_preds(query));
    }

    let runner = MtMapRunner {
        query: Arc::new(query.clone()),
        scan_schema: scan,
        layout: layout.clone(),
        features,
    };

    let mut spec = JobSpec::new(
        format!("clydesdale-{}", query.id),
        Arc::new(input),
        Arc::new(runner),
    );
    // Fold the per-task partial aggregates with the query's operation.
    let agg = query.aggregate.clone();
    spec.reducer = Some(Arc::new(FnReducer(
        move |key: &Row, values: &[Row], out: &mut Vec<Row>| {
            let mut acc = agg.identity();
            for v in values {
                let partial = v
                    .at(0)
                    .as_i64()
                    .ok_or_else(|| ClydeError::MapReduce("non-integer partial aggregate".into()))?;
                acc = agg.fold(acc, partial);
            }
            out.push(key.concat(&clyde_common::row![acc]));
            Ok(())
        },
    )));
    spec.num_reducers = cluster.total_reduce_slots().max(1) as usize;
    spec.output = OutputSpec::Memory;
    spec.reuse_jvm = features.jvm_reuse;
    // Result-cache identity: the conf is empty for Clydesdale plans, so the
    // token must carry everything that shapes the output — the query and
    // the feature flags (which also shape the split list via zone pruning).
    spec.code_token = format!("clyde:{}:{}:v1", query.id, features.token_bits());
    if features.multithreading {
        // Mark the task as consuming the whole node's memory so the capacity
        // scheduler admits exactly one per node (Section 5.2), and let it
        // use every map slot's worth of threads.
        spec.declared_task_memory = cluster.node.memory_bytes;
        spec.task_threads = Some(cluster.map_slots);
    } else {
        spec.declared_task_memory = 0;
        spec.task_threads = Some(1);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::query_by_id;

    #[test]
    fn scan_schema_projects_or_not() {
        let q = query_by_id("Q2.1").unwrap();
        let (cols, s) = scan_schema(&q, &Features::default()).unwrap();
        assert_eq!(cols.len(), 4);
        assert_eq!(s.len(), 4);
        let (cols_all, s_all) = scan_schema(&q, &Features::without_columnar()).unwrap();
        assert_eq!(cols_all.len(), 17);
        assert_eq!(s_all.len(), 17);
        // The probe plan must still resolve in the full schema.
        crate::probe::ProbePlan::compile(&q, &s_all).unwrap();
        crate::probe::ProbePlan::compile(&q, &s).unwrap();
    }

    #[test]
    fn plan_marks_memory_for_one_task_per_node() {
        let cluster = ClusterSpec::cluster_a();
        let q = query_by_id("Q3.1").unwrap();
        let spec = plan_query(&q, &SsbLayout::default(), Features::default(), &cluster).unwrap();
        assert_eq!(spec.declared_task_memory, cluster.node.memory_bytes);
        assert_eq!(spec.task_threads, Some(6));
        assert!(spec.reuse_jvm);
        assert_eq!(spec.num_reducers, 8);
        assert!(spec.reducer.is_some());
    }

    #[test]
    fn zone_preds_cover_fact_and_date_predicates() {
        // Q1.1: d_year = 1993, discount in [1,3], quantity < 25.
        let q = query_by_id("Q1.1").unwrap();
        let zp = zone_preds(&q);
        assert!(zp.contains(&ZonePred::new("lo_discount", 1, 3)));
        assert!(zp.contains(&ZonePred::new("lo_quantity", i32::MIN, 24)));
        assert!(zp.contains(&ZonePred::new("lo_orderdate", 19930101, 19931231)));

        // Q1.2 filters on d_yearmonthnum = 199401.
        let q12 = query_by_id("Q1.2").unwrap();
        assert!(zone_preds(&q12).contains(&ZonePred::new("lo_orderdate", 19940101, 19940131)));

        // Q3.4 filters on d_yearmonth = "Dec1997".
        let q34 = query_by_id("Q3.4").unwrap();
        assert!(zone_preds(&q34).contains(&ZonePred::new("lo_orderdate", 19971201, 19971231)));

        // Q4.2 restricts d_year to {1997, 1998}.
        let q42 = query_by_id("Q4.2").unwrap();
        assert!(zone_preds(&q42).contains(&ZonePred::new("lo_orderdate", 19970101, 19981231)));

        // Q2.1's date join is unfiltered: no fact preds, no date range.
        let q21 = query_by_id("Q2.1").unwrap();
        assert!(zone_preds(&q21).is_empty());
    }

    #[test]
    fn ablated_plan_uses_slots() {
        let cluster = ClusterSpec::cluster_a();
        let q = query_by_id("Q3.1").unwrap();
        let spec = plan_query(
            &q,
            &SsbLayout::default(),
            Features::without_multithreading(),
            &cluster,
        )
        .unwrap();
        assert_eq!(spec.declared_task_memory, 0);
        assert_eq!(spec.task_threads, Some(1));
        assert!(!spec.reuse_jvm);
    }
}
