//! Block identifiers and metadata.

use crate::topology::NodeId;
use std::hash::Hasher;

/// Content checksum for a block payload, computed with the same FxHash the
/// rest of the stack uses — cheap enough to verify on every replica read,
/// which is how the datanode detects injected (or real) bit rot.
pub fn block_checksum(data: &[u8]) -> u64 {
    let mut h = clyde_common::hash::FxHasher::default();
    h.write(data);
    h.finish()
}

/// Globally unique block identifier, allocated by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Namenode-side metadata for one block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub id: BlockId,
    /// Actual payload length (the final block of a file is usually short).
    pub len: u64,
    /// Datanodes currently holding a replica, in placement order.
    pub replicas: Vec<NodeId>,
    /// Checksum of the payload at write time ([`block_checksum`]); replica
    /// reads are verified against it before being served.
    pub checksum: u64,
}

impl BlockMeta {
    /// Whether `node` holds a replica of this block.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let m = BlockMeta {
            id: BlockId(1),
            len: 10,
            replicas: vec![NodeId(0), NodeId(2)],
            checksum: 0,
        };
        assert!(m.is_local_to(NodeId(0)));
        assert!(m.is_local_to(NodeId(2)));
        assert!(!m.is_local_to(NodeId(1)));
    }
}
