//! `clyde-lint` CLI.
//!
//! ```text
//! clyde-lint [--root <dir>]   # scan the workspace; exit 1 on violations
//! clyde-lint --self-test      # each fixture must trigger exactly its rule
//! ```

use clyde_lint::{scan_source, scan_workspace, Rule};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut self_test = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!(
                    "clyde-lint: determinism & concurrency invariants (D001-D005)\n\
                     usage: clyde-lint [--root <dir>] [--self-test]"
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    if self_test {
        return run_self_test(&root);
    }

    match scan_workspace(&root) {
        Err(e) => {
            eprintln!("clyde-lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
        Ok(violations) if violations.is_empty() => {
            println!("clyde-lint: OK — no determinism/concurrency violations");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("clyde-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: clyde-lint [--root <dir>] [--self-test]");
    ExitCode::from(2)
}

/// Every fixture under `crates/lint/fixtures/` must trigger exactly the rule
/// it is named for; `clean.rs` must trigger nothing. This is the lint
/// linting itself: if a rule regresses into silence, CI fails here.
fn run_self_test(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/lint/fixtures");
    let cases: [(&str, Option<Rule>); 7] = [
        ("d001_unordered.rs", Some(Rule::Unordered)),
        ("d002_wallclock.rs", Some(Rule::WallClock)),
        ("d003_entropy.rs", Some(Rule::Entropy)),
        ("d004_concurrency.rs", Some(Rule::Concurrency)),
        ("d005_metricname.rs", Some(Rule::MetricName)),
        ("d005_scheduler_registry.rs", Some(Rule::MetricName)),
        ("clean.rs", None),
    ];
    let mut failed = false;
    for (name, expect) in cases {
        let path = fixtures.join(name);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("self-test FAIL: cannot read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        // Fixtures are scanned under a neutral path so no allowlist applies.
        let violations = scan_source(Path::new("crates/fixture/src/lib.rs"), &src);
        match expect {
            None => {
                if violations.is_empty() {
                    println!("self-test OK: {name} is clean");
                } else {
                    eprintln!("self-test FAIL: {name} should be clean, got:");
                    for v in &violations {
                        eprintln!("  {v}");
                    }
                    failed = true;
                }
            }
            Some(rule) => {
                let hit = violations.iter().any(|v| v.rule == rule);
                let stray: Vec<_> = violations.iter().filter(|v| v.rule != rule).collect();
                if hit && stray.is_empty() {
                    println!(
                        "self-test OK: {name} triggers {} ({} site(s))",
                        rule.code(),
                        violations.len()
                    );
                } else {
                    failed = true;
                    if !hit {
                        eprintln!("self-test FAIL: {name} did not trigger {}", rule.code());
                    }
                    for v in stray {
                        eprintln!("self-test FAIL: {name} stray violation: {v}");
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("clyde-lint: self-test OK");
        ExitCode::SUCCESS
    }
}
