//! Column encodings: plain, dictionary, and run-length.
//!
//! Each encoded column is a self-describing chunk:
//!
//! ```text
//! [dtype tag: u8][encoding tag: u8][row count: varint]
//! [zone tag: u8][min: varint i64][max: varint i64]   -- zone tag 1 only
//! [payload ...]
//! [checksum: u64 LE over everything before it]
//! ```
//!
//! The binary encoding is what shrinks the paper's 600 GB text fact table to
//! ~334 GB in Multi-CIF format (Section 6.2); the checksum stands in for
//! HDFS's block checksums.
//!
//! The **zone segment** right after the row count is a per-chunk min/max
//! zone map, written for non-empty `i32` columns (zone tag 1) and absent
//! for every other column (zone tag 0). It lives in the first few bytes of
//! the chunk so a scan can [`peek_zone_map`] with a tiny header read —
//! at most [`ZONE_HEADER_MAX`] bytes — and skip the whole chunk when its
//! value range cannot satisfy a predicate, without fetching or decoding the
//! payload. The peek does *not* verify the checksum (it never sees the full
//! chunk); corruption is still caught whenever a chunk is actually decoded.

use clyde_common::hash::FxHasher;
use clyde_common::{varint, ClydeError, ColumnData, DatumType, FxHashMap, Result};
use std::hash::Hasher;
use std::sync::Arc;

/// Available encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Fixed-width little-endian values; strings as varint-length + bytes.
    Plain,
    /// Distinct values in a dictionary, data as varint codes. Best for the
    /// low-cardinality strings of SSB dimensions (regions, nations, brands).
    Dict,
    /// (varint run length, value) pairs. Best for near-constant columns.
    Rle,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Dict => 1,
            Encoding::Rle => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Encoding> {
        match t {
            0 => Some(Encoding::Plain),
            1 => Some(Encoding::Dict),
            2 => Some(Encoding::Rle),
            _ => None,
        }
    }
}

/// Pick a reasonable encoding for a column by sampling its content: strings
/// with few distinct values dictionary-encode; heavily repeated values
/// run-length-encode; everything else stays plain.
pub fn choose_encoding(col: &ColumnData) -> Encoding {
    let n = col.len();
    if n < 16 {
        return Encoding::Plain;
    }
    match col {
        ColumnData::Str(v) => {
            let mut distinct: FxHashMap<&str, ()> = FxHashMap::default();
            for s in v.iter().take(1024) {
                distinct.insert(s.as_ref(), ());
            }
            if distinct.len() * 2 < v.len().min(1024) {
                Encoding::Dict
            } else {
                Encoding::Plain
            }
        }
        ColumnData::I32(v) => {
            let runs = count_runs(v.iter().take(1024));
            if runs * 4 < v.len().min(1024) {
                Encoding::Rle
            } else {
                Encoding::Plain
            }
        }
        ColumnData::I64(v) => {
            let runs = count_runs(v.iter().take(1024));
            if runs * 4 < v.len().min(1024) {
                Encoding::Rle
            } else {
                Encoding::Plain
            }
        }
        ColumnData::F64(_) => Encoding::Plain,
    }
}

fn count_runs<T: PartialEq>(mut iter: impl Iterator<Item = T>) -> usize {
    let mut runs = 0;
    let mut prev: Option<T> = None;
    for v in iter.by_ref() {
        if prev.as_ref() != Some(&v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

fn checksum(data: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(data);
    h.finish()
}

/// Upper bound on the chunk prefix that contains the zone segment:
/// dtype (1) + encoding (1) + row-count varint (≤10) + zone tag (1) +
/// two varint-encoded i64 bounds (≤10 each).
pub const ZONE_HEADER_MAX: usize = 33;

const ZONE_NONE: u8 = 0;
const ZONE_I32_MINMAX: u8 = 1;

fn write_zone_segment(out: &mut Vec<u8>, col: &ColumnData) {
    match col {
        ColumnData::I32(v) if !v.is_empty() => {
            let (mut lo, mut hi) = (v[0], v[0]);
            for &x in &v[1..] {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            out.push(ZONE_I32_MINMAX);
            varint::write_i64(out, i64::from(lo));
            varint::write_i64(out, i64::from(hi));
        }
        _ => out.push(ZONE_NONE),
    }
}

fn read_zone_segment(body: &[u8], pos: &mut usize) -> Result<Option<(i32, i32)>> {
    let tag = *body
        .get(*pos)
        .ok_or_else(|| ClydeError::Format("truncated zone segment".into()))?;
    *pos += 1;
    match tag {
        ZONE_NONE => Ok(None),
        ZONE_I32_MINMAX => {
            let lo = varint::read_i64(body, pos)?;
            let hi = varint::read_i64(body, pos)?;
            let lo = i32::try_from(lo)
                .map_err(|_| ClydeError::Format("zone min out of i32 range".into()))?;
            let hi = i32::try_from(hi)
                .map_err(|_| ClydeError::Format("zone max out of i32 range".into()))?;
            Ok(Some((lo, hi)))
        }
        t => Err(ClydeError::Format(format!("bad zone tag {t}"))),
    }
}

/// Parse the zone map out of a chunk's header prefix (the first
/// [`ZONE_HEADER_MAX`] bytes are always enough; passing the whole chunk
/// also works). Returns `None` for columns without a zone map. The
/// checksum is *not* verified — callers use this to decide whether to
/// fetch the chunk at all.
pub fn peek_zone_map(prefix: &[u8]) -> Result<Option<(i32, i32)>> {
    if prefix.len() < 3 {
        return Err(ClydeError::Format("column chunk prefix too short".into()));
    }
    DatumType::from_tag(prefix[0])
        .ok_or_else(|| ClydeError::Format(format!("bad dtype tag {}", prefix[0])))?;
    Encoding::from_tag(prefix[1])
        .ok_or_else(|| ClydeError::Format(format!("bad encoding tag {}", prefix[1])))?;
    let mut pos = 2usize;
    varint::read_u64(prefix, &mut pos)?;
    read_zone_segment(prefix, &mut pos)
}

/// Encode a column with the given encoding.
pub fn encode_column(col: &ColumnData, encoding: Encoding) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(col.len() * 4 + 16);
    out.push(col.dtype().tag());
    out.push(encoding.tag());
    varint::write_u64(&mut out, col.len() as u64);
    write_zone_segment(&mut out, col);
    match (encoding, col) {
        (Encoding::Plain, ColumnData::I32(v)) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        (Encoding::Plain, ColumnData::I64(v)) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        (Encoding::Plain, ColumnData::F64(v)) => {
            for x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        (Encoding::Plain, ColumnData::Str(v)) => {
            for s in v {
                varint::write_u64(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
        (Encoding::Dict, ColumnData::Str(v)) => {
            let mut dict: Vec<&str> = Vec::new();
            let mut codes: FxHashMap<&str, u64> = FxHashMap::default();
            let mut encoded = Vec::with_capacity(v.len());
            for s in v {
                let code = *codes.entry(s.as_ref()).or_insert_with(|| {
                    dict.push(s.as_ref());
                    (dict.len() - 1) as u64
                });
                encoded.push(code);
            }
            varint::write_u64(&mut out, dict.len() as u64);
            for entry in dict {
                varint::write_u64(&mut out, entry.len() as u64);
                out.extend_from_slice(entry.as_bytes());
            }
            for code in encoded {
                varint::write_u64(&mut out, code);
            }
        }
        (Encoding::Rle, ColumnData::I32(v)) => {
            rle_encode(&mut out, v.iter().map(|&x| i64::from(x)))
        }
        (Encoding::Rle, ColumnData::I64(v)) => rle_encode(&mut out, v.iter().copied()),
        (enc, col) => {
            return Err(ClydeError::Format(format!(
                "encoding {enc:?} does not support {} columns",
                col.dtype()
            )))
        }
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(out)
}

fn rle_encode(out: &mut Vec<u8>, iter: impl Iterator<Item = i64>) {
    let mut run: Option<(i64, u64)> = None;
    for v in iter {
        run = Some(match run {
            Some((prev, count)) if prev == v => (prev, count + 1),
            Some((prev, count)) => {
                varint::write_u64(out, count);
                varint::write_i64(out, prev);
                let _ = prev;
                let _ = count;
                (v, 1)
            }
            None => (v, 1),
        });
    }
    if let Some((prev, count)) = run {
        varint::write_u64(out, count);
        varint::write_i64(out, prev);
    }
}

/// Decode a column chunk, verifying the checksum.
pub fn decode_column(data: &[u8]) -> Result<ColumnData> {
    if data.len() < 10 {
        return Err(ClydeError::Format("column chunk too short".into()));
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let expected = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if checksum(body) != expected {
        return Err(ClydeError::Format("column checksum mismatch".into()));
    }
    let dtype = DatumType::from_tag(body[0])
        .ok_or_else(|| ClydeError::Format(format!("bad dtype tag {}", body[0])))?;
    let encoding = Encoding::from_tag(body[1])
        .ok_or_else(|| ClydeError::Format(format!("bad encoding tag {}", body[1])))?;
    let mut pos = 2usize;
    let n = varint::read_u64(body, &mut pos)? as usize;
    read_zone_segment(body, &mut pos)?;
    match (encoding, dtype) {
        (Encoding::Plain, DatumType::I32) => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(i32::from_le_bytes(take::<4>(body, &mut pos)?));
            }
            Ok(ColumnData::I32(v))
        }
        (Encoding::Plain, DatumType::I64) => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(i64::from_le_bytes(take::<8>(body, &mut pos)?));
            }
            Ok(ColumnData::I64(v))
        }
        (Encoding::Plain, DatumType::F64) => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(u64::from_le_bytes(take::<8>(
                    body, &mut pos,
                )?)));
            }
            Ok(ColumnData::F64(v))
        }
        (Encoding::Plain, DatumType::Str) => {
            let mut v: Vec<Arc<str>> = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(read_str(body, &mut pos)?);
            }
            Ok(ColumnData::Str(v))
        }
        (Encoding::Dict, DatumType::Str) => {
            let dict_len = varint::read_u64(body, &mut pos)? as usize;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(read_str(body, &mut pos)?);
            }
            let mut v: Vec<Arc<str>> = Vec::with_capacity(n);
            for _ in 0..n {
                let code = varint::read_u64(body, &mut pos)? as usize;
                let s = dict
                    .get(code)
                    .ok_or_else(|| ClydeError::Format(format!("dict code {code} out of range")))?;
                v.push(Arc::clone(s));
            }
            Ok(ColumnData::Str(v))
        }
        (Encoding::Rle, DatumType::I32) => {
            let mut v = Vec::with_capacity(n);
            rle_decode(body, &mut pos, n, |x| {
                v.push(
                    i32::try_from(x)
                        .map_err(|_| ClydeError::Format("RLE value out of i32 range".into()))?,
                );
                Ok(())
            })?;
            Ok(ColumnData::I32(v))
        }
        (Encoding::Rle, DatumType::I64) => {
            let mut v = Vec::with_capacity(n);
            rle_decode(body, &mut pos, n, |x| {
                v.push(x);
                Ok(())
            })?;
            Ok(ColumnData::I64(v))
        }
        (enc, dt) => Err(ClydeError::Format(format!(
            "invalid encoding/type combination {enc:?}/{dt}"
        ))),
    }
}

fn rle_decode(
    body: &[u8],
    pos: &mut usize,
    n: usize,
    mut push: impl FnMut(i64) -> Result<()>,
) -> Result<()> {
    let mut produced = 0usize;
    while produced < n {
        let count = varint::read_u64(body, pos)? as usize;
        let value = varint::read_i64(body, pos)?;
        if produced + count > n {
            return Err(ClydeError::Format("RLE run overflows row count".into()));
        }
        for _ in 0..count {
            push(value)?;
        }
        produced += count;
    }
    Ok(())
}

fn take<const N: usize>(body: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let end = *pos + N;
    let slice = body
        .get(*pos..end)
        .ok_or_else(|| ClydeError::Format("truncated column payload".into()))?;
    *pos = end;
    Ok(slice.try_into().expect("length checked"))
}

fn read_str(body: &[u8], pos: &mut usize) -> Result<Arc<str>> {
    let len = varint::read_u64(body, pos)? as usize;
    let end = *pos + len;
    let bytes = body
        .get(*pos..end)
        .ok_or_else(|| ClydeError::Format("truncated string".into()))?;
    *pos = end;
    std::str::from_utf8(bytes)
        .map(Arc::from)
        .map_err(|_| ClydeError::Format("invalid utf-8 in column".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn strs(v: &[&str]) -> ColumnData {
        ColumnData::Str(v.iter().map(|s| Arc::from(*s)).collect())
    }

    #[test]
    fn plain_roundtrips_all_types() {
        for col in [
            ColumnData::I32(vec![1, -2, i32::MAX]),
            ColumnData::I64(vec![0, i64::MIN, 42]),
            ColumnData::F64(vec![1.5, f64::NAN, -0.0]),
            strs(&["ASIA", "", "MFGR#12"]),
        ] {
            let enc = encode_column(&col, Encoding::Plain).unwrap();
            let dec = decode_column(&enc).unwrap();
            // NaN-safe comparison via debug formatting.
            assert_eq!(format!("{dec:?}"), format!("{col:?}"));
        }
    }

    #[test]
    fn dict_roundtrips_and_compresses() {
        let col = strs(&["ASIA"; 1000]);
        let plain = encode_column(&col, Encoding::Plain).unwrap();
        let dict = encode_column(&col, Encoding::Dict).unwrap();
        assert_eq!(decode_column(&dict).unwrap(), col);
        assert!(dict.len() < plain.len() / 2);
    }

    #[test]
    fn rle_roundtrips_and_compresses() {
        let col = ColumnData::I32(vec![7; 5000]);
        let plain = encode_column(&col, Encoding::Plain).unwrap();
        let rle = encode_column(&col, Encoding::Rle).unwrap();
        assert_eq!(decode_column(&rle).unwrap(), col);
        assert!(rle.len() < plain.len() / 100);
    }

    #[test]
    fn empty_columns_roundtrip() {
        for col in [
            ColumnData::I32(vec![]),
            ColumnData::Str(vec![]),
            ColumnData::I64(vec![]),
        ] {
            let bytes = encode_column(&col, Encoding::Plain).unwrap();
            assert_eq!(decode_column(&bytes).unwrap(), col);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let col = ColumnData::I64(vec![1, 2, 3]);
        let mut enc = encode_column(&col, Encoding::Plain).unwrap();
        enc[5] ^= 0xFF;
        assert!(decode_column(&enc).is_err());
        // Truncation too.
        let enc2 = encode_column(&col, Encoding::Plain).unwrap();
        assert!(decode_column(&enc2[..enc2.len() - 1]).is_err());
        assert!(decode_column(&[]).is_err());
    }

    #[test]
    fn invalid_combinations_rejected() {
        let f = ColumnData::F64(vec![1.0]);
        assert!(encode_column(&f, Encoding::Dict).is_err());
        assert!(encode_column(&f, Encoding::Rle).is_err());
        let s = strs(&["x"]);
        assert!(encode_column(&s, Encoding::Rle).is_err());
    }

    #[test]
    fn heuristic_choices() {
        assert_eq!(choose_encoding(&strs(&["ASIA"; 100])), Encoding::Dict);
        let unique: Vec<String> = (0..100).map(|i| format!("name{i}")).collect();
        let unique_col = ColumnData::Str(unique.iter().map(|s| Arc::from(s.as_str())).collect());
        assert_eq!(choose_encoding(&unique_col), Encoding::Plain);
        assert_eq!(
            choose_encoding(&ColumnData::I32(vec![3; 100])),
            Encoding::Rle
        );
        assert_eq!(
            choose_encoding(&ColumnData::I32((0..100).collect())),
            Encoding::Plain
        );
        assert_eq!(choose_encoding(&ColumnData::I32(vec![1])), Encoding::Plain);
    }

    #[test]
    fn zone_map_written_for_i32() {
        let col = ColumnData::I32(vec![19930101, 19981230, 19920401]);
        for enc in [Encoding::Plain, Encoding::Rle] {
            let bytes = encode_column(&col, enc).unwrap();
            assert_eq!(peek_zone_map(&bytes).unwrap(), Some((19920401, 19981230)));
            // The bounded prefix is enough — no payload needed.
            let cut = bytes.len().min(ZONE_HEADER_MAX);
            assert_eq!(
                peek_zone_map(&bytes[..cut]).unwrap(),
                Some((19920401, 19981230))
            );
            assert_eq!(decode_column(&bytes).unwrap(), col);
        }
    }

    #[test]
    fn zone_map_absent_for_other_types() {
        for col in [
            ColumnData::I64(vec![1, 2]),
            ColumnData::F64(vec![1.5]),
            strs(&["ASIA"]),
            ColumnData::I32(vec![]), // empty i32: nothing to bound
        ] {
            let bytes = encode_column(&col, Encoding::Plain).unwrap();
            assert_eq!(peek_zone_map(&bytes).unwrap(), None);
        }
    }

    #[test]
    fn zone_map_extremes_roundtrip() {
        let col = ColumnData::I32(vec![i32::MIN, 0, i32::MAX]);
        let bytes = encode_column(&col, Encoding::Plain).unwrap();
        assert_eq!(peek_zone_map(&bytes).unwrap(), Some((i32::MIN, i32::MAX)));
        assert_eq!(decode_column(&bytes).unwrap(), col);
    }

    #[test]
    fn peek_rejects_garbage() {
        assert!(peek_zone_map(&[]).is_err());
        assert!(peek_zone_map(&[0xEE, 0, 0, 0]).is_err()); // bad dtype
        let col = ColumnData::I32(vec![5; 10]);
        let bytes = encode_column(&col, Encoding::Plain).unwrap();
        assert!(peek_zone_map(&bytes[..3]).is_err()); // zone segment cut off
    }

    proptest! {
        #[test]
        fn zone_map_bounds_are_tight(v in proptest::collection::vec(any::<i32>(), 1..200)) {
            let col = ColumnData::I32(v.clone());
            let enc = encode_column(&col, Encoding::Plain).unwrap();
            let (lo, hi) = peek_zone_map(&enc).unwrap().unwrap();
            prop_assert_eq!(lo, *v.iter().min().unwrap());
            prop_assert_eq!(hi, *v.iter().max().unwrap());
        }

        #[test]
        fn plain_i64_roundtrip(v in proptest::collection::vec(any::<i64>(), 0..200)) {
            let col = ColumnData::I64(v);
            let enc = encode_column(&col, Encoding::Plain).unwrap();
            prop_assert_eq!(decode_column(&enc).unwrap(), col);
        }

        #[test]
        fn rle_i64_roundtrip(v in proptest::collection::vec(-3i64..3, 0..300)) {
            let col = ColumnData::I64(v);
            let enc = encode_column(&col, Encoding::Rle).unwrap();
            prop_assert_eq!(decode_column(&enc).unwrap(), col);
        }

        #[test]
        fn dict_roundtrip(v in proptest::collection::vec("[a-c]{0,3}", 0..200)) {
            let col = ColumnData::Str(v.iter().map(|s| Arc::from(s.as_str())).collect());
            let enc = encode_column(&col, Encoding::Dict).unwrap();
            prop_assert_eq!(decode_column(&enc).unwrap(), col);
        }
    }
}
