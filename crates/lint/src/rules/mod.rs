//! Rule passes. Each pass consumes the shared [`FileCtx`] — the lexed,
//! masked, and parsed view of one file — and appends [`Violation`]s.
//!
//! * [`textual`] — D001–D005, the line/token rules from the original
//!   scanner, re-hosted on the lexer's masked rendering (identical
//!   semantics, one lexer instead of two masking passes).
//! * [`d006`]–[`d008`] — structural per-file rules over the simplified AST.
//! * [`d009`] — the crate-level lock-graph rule (runs per crate group in a
//!   workspace scan; single-file in [`crate::scan_source`]).

use crate::parse::FileAst;
use crate::Violation;
use std::path::Path;

pub mod d006;
pub mod d007;
pub mod d008;
pub mod d009;
pub mod textual;

/// Everything a per-file rule pass may look at.
pub(crate) struct FileCtx<'a> {
    /// Workspace-relative path (drives scoping/allowlists and reporting).
    pub file: &'a Path,
    /// Raw source (D005 reads metric-name literals from it).
    pub raw: &'a str,
    /// Masked lines: comments and string/char literals blanked.
    pub masked: &'a [String],
    pub ast: &'a FileAst,
}

/// Run every per-file pass (D001–D008). D009 is crate-scoped and runs
/// separately via [`d009::scan_crate`].
pub(crate) fn run_file(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    textual::d001_scan(ctx, violations);
    textual::d002_scan(ctx, violations);
    textual::d003_scan(ctx, violations);
    textual::d004_scan(ctx, violations);
    textual::d005_scan(ctx, violations);
    d006::scan(ctx, violations);
    d007::scan(ctx, violations);
    d008::scan(ctx, violations);
}
