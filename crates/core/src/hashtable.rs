//! Dimension hash tables (paper Section 4.2).
//!
//! One table per dimension join: key = dimension primary key, value = the
//! auxiliary columns the query references. The dimension predicate is
//! evaluated during the build, so non-qualifying rows never enter the table
//! and the probe's miss *is* the filter. Once built, the tables are
//! read-only and are shared by every thread and every subsequent task on
//! the node without synchronization — exactly the property the paper
//! exploits (Section 5.1).

use clyde_common::{ClydeError, FxHashMap, Result, Row};
use clyde_ssb::queries::DimJoin;
use clyde_ssb::schema;

/// A read-only hash table over one (filtered) dimension.
#[derive(Debug)]
pub struct DimHashTable {
    map: FxHashMap<i64, Row>,
    /// Rows scanned while building (qualifying or not) — the build cost.
    pub rows_scanned: u64,
    /// Approximate heap footprint, for the node memory model.
    pub mem_bytes: u64,
}

impl DimHashTable {
    /// Build from dimension rows per the join description. `buildHashTables`
    /// in the paper's Figure 4 pseudocode.
    pub fn build(join: &DimJoin, rows: &[Row]) -> Result<DimHashTable> {
        let dim_schema = schema::schema_of(&join.dimension)
            .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", join.dimension)))?;
        let pred = join.predicate.compile(&dim_schema)?;
        let pk_idx = dim_schema.index_of(&join.pk)?;
        let aux_idx: Vec<usize> = join
            .aux
            .iter()
            .map(|a| dim_schema.index_of(a))
            .collect::<Result<_>>()?;

        let mut map: FxHashMap<i64, Row> = FxHashMap::default();
        let mut mem = 0u64;
        for r in rows {
            if !pred.eval(r) {
                continue;
            }
            let pk = r.at(pk_idx).as_i64().ok_or_else(|| {
                ClydeError::Plan(format!("{}.{} is not an integer key", join.dimension, join.pk))
            })?;
            let aux: Row = aux_idx.iter().map(|&i| r.at(i).clone()).collect();
            mem += 8 + aux.heap_size() as u64 + 16; // key + value + bucket overhead
            if map.insert(pk, aux).is_some() {
                return Err(ClydeError::Plan(format!(
                    "duplicate primary key {pk} in dimension {}",
                    join.dimension
                )));
            }
        }
        Ok(DimHashTable {
            map,
            rows_scanned: rows.len() as u64,
            mem_bytes: mem,
        })
    }

    /// Probe by foreign key; `None` both for filtered-out and absent keys.
    #[inline]
    pub fn get(&self, fk: i64) -> Option<&Row> {
        self.map.get(&fk)
    }

    /// Qualifying entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The set of hash tables for one query, built once per node and shared.
#[derive(Debug)]
pub struct DimTables {
    pub tables: Vec<DimHashTable>,
    /// Total rows scanned across all builds.
    pub build_rows: u64,
    /// Total memory charged for the shared copy.
    pub mem_bytes: u64,
}

impl DimTables {
    /// Build all tables for `joins`, fetching dimension rows through
    /// `fetch` (node-local cache, the DFS, or in-memory test data).
    pub fn build_all(
        joins: &[DimJoin],
        mut fetch: impl FnMut(&str) -> Result<Vec<Row>>,
    ) -> Result<DimTables> {
        let mut tables = Vec::with_capacity(joins.len());
        let mut build_rows = 0;
        let mut mem_bytes = 0;
        // Single-threaded, one table at a time — the paper notes the build
        // phase parallelism is limited to the number of dimensions and
        // keeps it simple (Section 4.2).
        for join in joins {
            let rows = fetch(&join.dimension)?;
            let t = DimHashTable::build(join, &rows)?;
            build_rows += t.rows_scanned;
            mem_bytes += t.mem_bytes;
            tables.push(t);
        }
        Ok(DimTables {
            tables,
            build_rows,
            mem_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::{query_by_id, DimPred};

    fn date_join_year(year: i32) -> DimJoin {
        DimJoin {
            dimension: schema::DATE.into(),
            pk: "d_datekey".into(),
            fk: "lo_orderdate".into(),
            predicate: DimPred::I32Eq {
                column: "d_year".into(),
                value: year,
            },
            aux: vec!["d_year".into()],
        }
    }

    #[test]
    fn build_filters_and_keeps_aux() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let t = DimHashTable::build(&date_join_year(1993), &dates).unwrap();
        assert_eq!(t.len(), 365);
        assert_eq!(t.rows_scanned, 2557);
        assert!(t.mem_bytes > 0);
        // A qualifying key probes to its aux row.
        let aux = t.get(19930704).unwrap();
        assert_eq!(aux.at(0).as_i64(), Some(1993));
        // Non-qualifying (1994) and absent keys miss.
        assert!(t.get(19940704).is_none());
        assert!(t.get(12345678).is_none());
    }

    #[test]
    fn empty_aux_tables_work() {
        // Flight 1 joins carry no auxiliary columns — the probe is a filter.
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut join = date_join_year(1993);
        join.aux.clear();
        let t = DimHashTable::build(&join, &dates).unwrap();
        assert_eq!(t.get(19930101).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_pk_is_rejected() {
        let dates = SsbGen::new(0.001, 1).gen_date();
        let mut doubled = dates.clone();
        // Duplicate a row that qualifies under the build predicate (1993);
        // non-qualifying duplicates are filtered before key insertion.
        let qualifying = dates
            .iter()
            .find(|r| r.at(4).as_i64() == Some(1993))
            .unwrap()
            .clone();
        doubled.push(qualifying);
        assert!(DimHashTable::build(&date_join_year(1993), &doubled).is_err());
    }

    #[test]
    fn build_all_for_q21() {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let tables = DimTables::build_all(&q.joins, |dim| {
            Ok(data.dimension(dim).unwrap().to_vec())
        })
        .unwrap();
        assert_eq!(tables.tables.len(), 3);
        // Join order is date, part, supplier. Date is unfiltered.
        assert_eq!(tables.tables[0].len(), 2557);
        // Part filtered to category MFGR#12 (~1/25 of parts).
        let parts = data.part.len();
        let kept = tables.tables[1].len();
        assert!(kept > 0 && kept < parts / 10, "kept {kept} of {parts}");
        assert_eq!(
            tables.build_rows,
            (data.part.len() + data.supplier.len() + 2557) as u64
        );
        assert!(tables.mem_bytes > 0);
    }

    #[test]
    fn build_all_propagates_fetch_errors() {
        let q = query_by_id("Q2.1").unwrap();
        let r = DimTables::build_all(&q.joins, |_| {
            Err(ClydeError::Dfs("cache miss".into()))
        });
        assert!(r.is_err());
    }
}
