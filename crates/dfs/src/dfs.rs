//! The distributed-filesystem facade.

use crate::block::{block_checksum, BlockId, BlockMeta};
use crate::cache::{CacheCatalog, CacheEntry, CacheStats};
use crate::datanode::Datanode;
use crate::metrics::{IoMetrics, IoSnapshot, ScanStats};
use crate::namenode::{FileEntry, Namenode};
use crate::placement::{BlockPlacementPolicy, DefaultPlacement};
use crate::topology::{ClusterSpec, NodeId};
use bytes::Bytes;
use clyde_common::lockorder::RwLock;
use clyde_common::{ClydeError, FxHashMap, Result};
use std::sync::Arc;

/// Configuration for a [`Dfs`] instance.
pub struct DfsOptions {
    /// Block size in bytes. HDFS defaults to 64 MB; tests use small blocks
    /// to exercise multi-block files cheaply.
    pub block_size: u64,
    /// Target replication factor (clamped to the number of workers).
    pub replication: u32,
    /// Placement policy for new blocks.
    pub policy: Box<dyn BlockPlacementPolicy>,
}

impl Default for DfsOptions {
    fn default() -> DfsOptions {
        DfsOptions {
            block_size: 64 << 20,
            replication: 3,
            policy: Box::new(DefaultPlacement),
        }
    }
}

/// Status summary returned by [`Dfs::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub num_blocks: usize,
    pub group: Option<String>,
}

struct State {
    namenode: Namenode,
    datanodes: Vec<Datanode>,
}

/// A simulated HDFS instance over the workers of a [`ClusterSpec`].
///
/// All methods take `&self`; the structure is internally synchronized so map
/// tasks running on different worker threads can read concurrently.
pub struct Dfs {
    cluster: ClusterSpec,
    block_size: u64,
    replication: u32,
    policy: Box<dyn BlockPlacementPolicy>,
    state: RwLock<State>,
    metrics: IoMetrics,
    /// The result-cache catalog (ReStore-style job-output reuse). The
    /// catalog itself is plain data in [`crate::cache`]; this is the one
    /// lock guarding it, never held across a namespace operation.
    cache: RwLock<CacheCatalog>,
}

impl Dfs {
    pub fn new(cluster: ClusterSpec, opts: DfsOptions) -> Arc<Dfs> {
        let replication = cluster.clamp_replication(opts.replication);
        let datanodes = (0..cluster.num_workers())
            .map(|_| Datanode::new())
            .collect();
        Arc::new(Dfs {
            metrics: IoMetrics::new(cluster.num_workers()),
            cluster,
            block_size: opts.block_size,
            replication,
            policy: opts.policy,
            state: RwLock::new(State {
                namenode: Namenode::new(),
                datanodes,
            }),
            cache: RwLock::new(CacheCatalog::new()),
        })
    }

    /// Convenience constructor used by most tests: `n`-node tiny cluster,
    /// small blocks, replication 2, co-locating placement.
    pub fn for_tests(n: usize) -> Arc<Dfs> {
        Dfs::new(
            ClusterSpec::tiny(n),
            DfsOptions {
                block_size: 1024,
                replication: 2,
                policy: Box::new(crate::placement::ColocatingPlacement),
            },
        )
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    pub fn replication(&self) -> u32 {
        self.replication
    }

    pub fn metrics(&self) -> IoSnapshot {
        self.metrics.snapshot()
    }

    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// Open a scoped I/O window: its `delta()` covers only reads/writes
    /// performed after this call (see [`IoMetrics::scope`]).
    pub fn io_scope(&self) -> crate::metrics::IoScope<'_> {
        self.metrics.scope()
    }

    /// Open a new file for writing. `group` is the placement group handed to
    /// the placement policy (CIF passes the row-group directory so column
    /// files co-locate). `writer_node` attributes the write I/O; pass `None`
    /// for client-side loads.
    pub fn create(
        self: &Arc<Self>,
        path: impl Into<String>,
        group: Option<String>,
        writer_node: Option<NodeId>,
    ) -> Result<DfsWriter> {
        let path = path.into();
        {
            let state = self.state.read();
            if state.namenode.exists(&path) {
                return Err(ClydeError::Dfs(format!("file already exists: {path}")));
            }
        }
        Ok(DfsWriter {
            dfs: Arc::clone(self),
            path,
            group,
            writer_node,
            buf: Vec::new(),
            blocks: Vec::new(),
            total_len: 0,
            closed: false,
        })
    }

    /// Write an entire file in one call.
    pub fn write_file(
        self: &Arc<Self>,
        path: impl Into<String>,
        group: Option<String>,
        data: &[u8],
    ) -> Result<()> {
        let mut w = self.create(path, group, None)?;
        w.write_all(data);
        w.close()
    }

    fn alive_nodes(state: &State) -> Vec<NodeId> {
        state
            .datanodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_alive())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Place and store one block; returns its id.
    fn store_block(
        &self,
        path: &str,
        group: Option<&str>,
        block_index: usize,
        data: Bytes,
        writer_node: Option<NodeId>,
    ) -> Result<BlockId> {
        let mut state = self.state.write();
        let n = state.datanodes.len();
        let mut targets = self
            .policy
            .choose_targets(path, group, block_index, self.replication, n);
        // Skip dead nodes, substituting the next alive node (deterministic).
        let alive = Self::alive_nodes(&state);
        if alive.is_empty() {
            return Err(ClydeError::Dfs("no alive datanodes".into()));
        }
        let mut fixed: Vec<NodeId> = Vec::with_capacity(targets.len());
        for t in targets.drain(..) {
            let mut candidate = t;
            for step in 0..n {
                candidate = NodeId((t.0 + step) % n);
                if state.datanodes[candidate.0].is_alive() && !fixed.contains(&candidate) {
                    break;
                }
            }
            if state.datanodes[candidate.0].is_alive() && !fixed.contains(&candidate) {
                fixed.push(candidate);
            }
        }
        if fixed.is_empty() {
            fixed.push(alive[0]);
        }
        let id =
            state
                .namenode
                .allocate_block(data.len() as u64, fixed.clone(), block_checksum(&data));
        for node in &fixed {
            state.datanodes[node.0].store(id, data.clone());
            self.metrics.record_write(*node, data.len() as u64);
        }
        // Attribute pipeline traffic to the writer if it is a cluster node
        // and not among the replicas (client writes are not attributed).
        let _ = writer_node;
        Ok(id)
    }

    /// Read an entire file. `reader` selects the node doing the read for
    /// locality accounting; `None` means an external client (counted remote).
    pub fn read_file(&self, path: &str, reader: Option<NodeId>) -> Result<Bytes> {
        self.read_file_tracked(path, reader, None)
    }

    /// Like [`Dfs::read_file`], additionally crediting the bytes to a task's
    /// [`ScanStats`].
    pub fn read_file_tracked(
        &self,
        path: &str,
        reader: Option<NodeId>,
        stats: Option<&ScanStats>,
    ) -> Result<Bytes> {
        let state = self.state.read();
        let entry = state.namenode.file(path)?;
        if entry.blocks.len() == 1 {
            // Fast path: single-block files return the stored Bytes directly.
            let (data, local) = self.fetch_block(&state, entry.blocks[0], reader)?;
            self.account_read(reader, stats, local, data.len() as u64);
            return Ok(data);
        }
        let mut out = Vec::with_capacity(entry.len as usize);
        for &b in &entry.blocks {
            let (data, local) = self.fetch_block(&state, b, reader)?;
            self.account_read(reader, stats, local, data.len() as u64);
            out.extend_from_slice(&data);
        }
        Ok(Bytes::from(out))
    }

    /// Fetch one replica of `meta` from `node` and verify it against the
    /// namenode checksum. A failed verification is recorded as a corrupt
    /// read and the replica is treated as unavailable, so the caller falls
    /// through to the next one — the HDFS client's checksum-and-retry path.
    fn verified(&self, state: &State, meta: &BlockMeta, node: NodeId) -> Option<Bytes> {
        let data = state.datanodes[node.0].get(meta.id)?;
        if block_checksum(&data) == meta.checksum {
            Some(data)
        } else {
            self.metrics.record_corrupt_read(node);
            None
        }
    }

    /// Locate and return a block's payload, preferring a replica on the
    /// reading node (HDFS short-circuit read). Returns whether the read was
    /// local. Does **not** account the bytes — callers do, so range reads
    /// can credit only the bytes they actually return.
    fn fetch_block(
        &self,
        state: &State,
        block: BlockId,
        reader: Option<NodeId>,
    ) -> Result<(Bytes, bool)> {
        let meta = state.namenode.block(block)?;
        if let Some(r) = reader {
            if meta.is_local_to(r) {
                if let Some(data) = self.verified(state, meta, r) {
                    return Ok((data, true));
                }
            }
        }
        // Otherwise the first alive, checksum-clean replica serves it over
        // the network (skipping the reader, which was already tried above).
        for &rep in &meta.replicas {
            if Some(rep) == reader {
                continue;
            }
            if let Some(data) = self.verified(state, meta, rep) {
                return Ok((data, false));
            }
        }
        Err(ClydeError::Dfs(format!(
            "all replicas of block {block:?} are unavailable or corrupt"
        )))
    }

    fn account_read(
        &self,
        reader: Option<NodeId>,
        stats: Option<&ScanStats>,
        local: bool,
        bytes: u64,
    ) {
        match (local, reader) {
            (true, Some(r)) => self.metrics.record_local_read(r, bytes),
            (false, Some(r)) => self.metrics.record_remote_read(r, bytes),
            // Client reads are attributed to node 0's remote counter so the
            // totals still add up; locality is meaningless for clients.
            (_, None) => self.metrics.record_remote_read(NodeId(0), bytes),
        }
        if let Some(s) = stats {
            if local {
                s.add_local(bytes);
            } else {
                s.add_remote(bytes);
            }
        }
    }

    /// Read a byte range of a file.
    pub fn read_range(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader: Option<NodeId>,
    ) -> Result<Bytes> {
        self.read_range_tracked(path, offset, len, reader, None)
    }

    /// Like [`Dfs::read_range`], additionally crediting the bytes to a task's
    /// [`ScanStats`]. Only the bytes actually returned are credited, even
    /// when the range spans block boundaries.
    pub fn read_range_tracked(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        reader: Option<NodeId>,
        stats: Option<&ScanStats>,
    ) -> Result<Bytes> {
        let state = self.state.read();
        let entry = state.namenode.file(path)?;
        if offset + len > entry.len {
            return Err(ClydeError::Dfs(format!(
                "range {offset}+{len} beyond end of {path} (len {})",
                entry.len
            )));
        }
        let mut out = Vec::with_capacity(len as usize);
        let mut block_start = 0u64;
        for &b in &entry.blocks {
            let meta_len = state.namenode.block(b)?.len;
            let block_end = block_start + meta_len;
            if block_end > offset && block_start < offset + len {
                let (data, local) = self.fetch_block(&state, b, reader)?;
                let from = offset.saturating_sub(block_start) as usize;
                let to = ((offset + len).min(block_end) - block_start) as usize;
                self.account_read(reader, stats, local, (to - from) as u64);
                out.extend_from_slice(&data[from..to]);
            }
            block_start = block_end;
            if block_start >= offset + len {
                break;
            }
        }
        Ok(Bytes::from(out))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.state.read().namenode.exists(path)
    }

    pub fn file_len(&self, path: &str) -> Result<u64> {
        Ok(self.state.read().namenode.file(path)?.len)
    }

    pub fn status(&self, path: &str) -> Result<FileStatus> {
        let state = self.state.read();
        let e = state.namenode.file(path)?;
        Ok(FileStatus {
            path: e.path.clone(),
            len: e.len,
            num_blocks: e.blocks.len(),
            group: e.group.clone(),
        })
    }

    pub fn delete(&self, path: &str) -> Result<()> {
        self.delete_raw(path)?;
        // Result-cache coherence hook: dropping a file invalidates every
        // cached entry that fingerprinted it as an input (fact-partition
        // roll-out) or persisted it as an output. Those entries' remaining
        // output files become garbage; deleting them cascades through the
        // same hook via a worklist (never recursion, never nested locks).
        let mut worklist = self.cache.write().invalidate_path(path);
        while let Some(p) = worklist.pop() {
            if self.exists(&p) {
                self.delete_raw(&p)?;
            }
            let more = self.cache.write().invalidate_path(&p);
            worklist.extend(more);
        }
        Ok(())
    }

    /// Remove a file from the namespace and free its blocks, without
    /// touching the result cache.
    fn delete_raw(&self, path: &str) -> Result<()> {
        let mut state = self.state.write();
        let blocks = state.namenode.delete(path)?;
        for b in blocks {
            for dn in state.datanodes.iter_mut() {
                dn.free(b);
            }
        }
        Ok(())
    }

    // ---- Result cache (ReStore-style job-output reuse) ----

    /// Set the result-cache capacity budget in bytes; 0 (the default)
    /// disables the cache entirely.
    pub fn cache_configure(&self, capacity_bytes: u64) {
        self.cache.write().set_capacity(capacity_bytes);
    }

    pub fn cache_enabled(&self) -> bool {
        self.cache.read().enabled()
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.read().stats()
    }

    /// Look up a fingerprint in the catalog, bumping its LRU recency.
    pub fn cache_lookup(&self, fingerprint: u64) -> Option<CacheEntry> {
        self.cache.write().lookup(fingerprint)
    }

    /// Admit a cached entry, evicting least-recently-used unpinned entries
    /// under the capacity budget and deleting their backing files. Returns
    /// whether the entry was admitted — callers persist the output bytes
    /// only on `true`.
    pub fn cache_insert(&self, entry: CacheEntry) -> Result<bool> {
        let fp = entry.fingerprint;
        let freed = self.cache.write().insert(entry);
        for p in freed {
            if self.exists(&p) {
                self.delete(&p)?;
            }
        }
        Ok(self.cache.read().contains(fp))
    }

    /// Pin or unpin a cached entry; pinned entries are never evicted.
    /// Returns whether the entry exists.
    pub fn cache_pin(&self, fingerprint: u64, pinned: bool) -> bool {
        self.cache.write().set_pinned(fingerprint, pinned)
    }

    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.state.read().namenode.list_prefix(prefix)
    }

    /// Nodes holding replicas of the file's blocks, ordered by how many of
    /// the file's bytes each holds (descending). The MapReduce scheduler uses
    /// this to place tasks near their data.
    pub fn hosts(&self, path: &str) -> Result<Vec<NodeId>> {
        let state = self.state.read();
        let entry = state.namenode.file(path)?;
        let mut counts: FxHashMap<NodeId, u64> = FxHashMap::default();
        for &b in &entry.blocks {
            let meta = state.namenode.block(b)?;
            for &r in &meta.replicas {
                *counts.entry(r).or_insert(0) += meta.len;
            }
        }
        let mut hosts: Vec<(NodeId, u64)> = counts.into_iter().collect();
        hosts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(hosts.into_iter().map(|(n, _)| n).collect())
    }

    /// Nodes holding replicas of **every** block of **every** listed file —
    /// the set of nodes that can scan all the files fully locally. This is
    /// what CIF's co-locating placement guarantees is non-empty for the
    /// column files of a row group.
    pub fn common_hosts(&self, paths: &[String]) -> Result<Vec<NodeId>> {
        let state = self.state.read();
        let mut common: Option<Vec<NodeId>> = None;
        for path in paths {
            let entry = state.namenode.file(path)?;
            for &b in &entry.blocks {
                let meta = state.namenode.block(b)?;
                common = Some(match common {
                    None => meta.replicas.clone(),
                    Some(prev) => prev
                        .into_iter()
                        .filter(|n| meta.replicas.contains(n))
                        .collect(),
                });
            }
        }
        Ok(common.unwrap_or_default())
    }

    /// Simulate the failure of a node: its replicas are lost.
    pub fn kill_node(&self, node: NodeId) {
        self.state.write().datanodes[node.0].kill();
    }

    /// Restart a failed node (it comes back empty).
    pub fn restart_node(&self, node: NodeId) {
        self.state.write().datanodes[node.0].restart();
    }

    /// Whether `node` is currently serving (heartbeating, in Hadoop terms).
    pub fn is_node_alive(&self, node: NodeId) -> bool {
        let state = self.state.read();
        node.0 < state.datanodes.len() && state.datanodes[node.0].is_alive()
    }

    /// Deterministically corrupt up to `count` block replicas (fault
    /// injection). Only blocks with at least two live replicas are eligible,
    /// so a corrupted replica always has a clean sibling and checksum
    /// verification plus replica fallback can mask it. The victim is always
    /// the block's *first* live replica — the placement-preferred copy a
    /// locality-scheduled reader fetches — so the corruption is guaranteed to
    /// sit on a read path rather than rotting unread. Victim blocks are
    /// chosen by hashing `seed`, so the same seed always rots the same bytes.
    /// Returns how many replicas were actually corrupted.
    pub fn inject_corruption(&self, seed: u64, count: u32) -> usize {
        fn mix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        if count == 0 {
            return 0;
        }
        let mut state = self.state.write();
        let State {
            namenode,
            datanodes,
        } = &mut *state;
        let mut candidates: Vec<(u64, BlockId, usize)> = Vec::new();
        for meta in namenode.all_blocks_mut() {
            if meta.len == 0 {
                continue;
            }
            let live: Vec<NodeId> = meta
                .replicas
                .iter()
                .copied()
                .filter(|r| datanodes[r.0].has(meta.id))
                .collect();
            if live.len() < 2 {
                continue;
            }
            let h = mix64(seed ^ mix64(meta.id.0));
            candidates.push((h, meta.id, live[0].0));
        }
        candidates.sort_by_key(|&(h, id, _)| (h, id));
        let mut corrupted = 0usize;
        for (_, id, victim) in candidates.into_iter().take(count as usize) {
            if datanodes[victim].corrupt(id) {
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Restore full replication after failures by copying blocks from
    /// surviving replicas onto alive nodes, preferring the policy's original
    /// choice. Returns the number of new replicas created.
    pub fn rereplicate(&self) -> Result<usize> {
        let mut state = self.state.write();
        let n = state.datanodes.len();
        let alive: Vec<NodeId> = Self::alive_nodes(&state);
        if alive.is_empty() {
            return Err(ClydeError::Dfs("no alive datanodes".into()));
        }
        let mut created = 0usize;
        // Collect the work under the namenode first to satisfy borrowck.
        let mut work: Vec<(BlockId, Vec<NodeId>, u64)> = Vec::new();
        for meta in state.namenode.all_blocks_mut() {
            work.push((meta.id, meta.replicas.clone(), meta.checksum));
        }
        for (id, replicas, checksum) in work {
            // Only checksum-clean survivors may act as sources — copying an
            // unverified replica would propagate corruption cluster-wide.
            let live_replicas: Vec<NodeId> = replicas
                .iter()
                .copied()
                .filter(|r| {
                    state
                        .datanodes
                        .get(r.0)
                        .and_then(|dn| dn.get(id))
                        .is_some_and(|d| block_checksum(&d) == checksum)
                })
                .collect();
            let Some(&source) = live_replicas.first() else {
                continue; // data lost; read_file will surface the error
            };
            // Scrub: drop replicas that exist but fail verification.
            for &r in &replicas {
                if live_replicas.contains(&r) {
                    continue;
                }
                if let Some(dn) = state.datanodes.get_mut(r.0) {
                    if dn.has(id) {
                        dn.free(id);
                    }
                }
            }
            let want = (self.replication as usize).min(alive.len());
            let mut new_replicas = live_replicas.clone();
            let mut cursor = 0usize;
            while new_replicas.len() < want && cursor < n {
                let cand = NodeId((source.0 + cursor) % n);
                cursor += 1;
                let cand_alive = state.datanodes.get(cand.0).is_some_and(Datanode::is_alive);
                if !cand_alive || new_replicas.contains(&cand) {
                    continue;
                }
                let data = state
                    .datanodes
                    .get(source.0)
                    .and_then(|dn| dn.get(id))
                    .ok_or_else(|| ClydeError::Dfs("replica vanished".into()))?;
                self.metrics.record_write(cand, data.len() as u64);
                let Some(dest) = state.datanodes.get_mut(cand.0) else {
                    continue; // cand is in-range by construction; stay total
                };
                dest.store(id, data);
                new_replicas.push(cand);
                created += 1;
            }
            state.namenode.block_mut(id)?.replicas = new_replicas;
        }
        Ok(created)
    }

    /// Per-node used bytes (capacity accounting / test assertions).
    pub fn used_bytes_per_node(&self) -> Vec<u64> {
        self.state
            .read()
            .datanodes
            .iter()
            .map(Datanode::used_bytes)
            .collect()
    }
}

/// Streaming writer returned by [`Dfs::create`]. Buffers to the block size,
/// placing and replicating each block as it fills.
pub struct DfsWriter {
    dfs: Arc<Dfs>,
    path: String,
    group: Option<String>,
    writer_node: Option<NodeId>,
    buf: Vec<u8>,
    blocks: Vec<BlockId>,
    total_len: u64,
    closed: bool,
}

impl DfsWriter {
    pub fn write_all(&mut self, data: &[u8]) {
        debug_assert!(!self.closed, "write after close");
        self.buf.extend_from_slice(data);
        self.total_len += data.len() as u64;
        while self.buf.len() as u64 >= self.dfs.block_size {
            let rest = self.buf.split_off(self.dfs.block_size as usize);
            let full = std::mem::replace(&mut self.buf, rest);
            self.flush_block(full);
        }
    }

    fn flush_block(&mut self, data: Vec<u8>) {
        let idx = self.blocks.len();
        let id = self
            .dfs
            .store_block(
                &self.path,
                self.group.as_deref(),
                idx,
                Bytes::from(data),
                self.writer_node,
            )
            .expect("block placement cannot fail while nodes are alive");
        self.blocks.push(id);
    }

    /// Finalize the file in the namespace.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        if !self.buf.is_empty() || self.blocks.is_empty() {
            let data = std::mem::take(&mut self.buf);
            self.flush_block(data);
        }
        let entry = FileEntry {
            path: self.path.clone(),
            len: self.total_len,
            blocks: std::mem::take(&mut self.blocks),
            group: self.group.clone(),
        };
        self.dfs.state.write().namenode.commit_file(entry)
    }

    pub fn bytes_written(&self) -> u64 {
        self.total_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ColocatingPlacement;

    fn small_dfs(nodes: usize, replication: u32, block_size: u64) -> Arc<Dfs> {
        Dfs::new(
            ClusterSpec::tiny(nodes),
            DfsOptions {
                block_size,
                replication,
                policy: Box::new(DefaultPlacement),
            },
        )
    }

    #[test]
    fn write_read_roundtrip_single_block() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.write_file("/a", None, b"hello world").unwrap();
        assert_eq!(&dfs.read_file("/a", None).unwrap()[..], b"hello world");
        assert_eq!(dfs.file_len("/a").unwrap(), 11);
        let st = dfs.status("/a").unwrap();
        assert_eq!(st.num_blocks, 1);
    }

    #[test]
    fn write_read_roundtrip_multi_block() {
        let dfs = small_dfs(3, 2, 16);
        let data: Vec<u8> = (0..100u8).collect();
        dfs.write_file("/big", None, &data).unwrap();
        assert_eq!(&dfs.read_file("/big", None).unwrap()[..], &data[..]);
        let st = dfs.status("/big").unwrap();
        assert_eq!(st.num_blocks, 7); // ceil(100/16)
    }

    #[test]
    fn empty_file_roundtrip() {
        let dfs = small_dfs(2, 1, 16);
        dfs.write_file("/empty", None, b"").unwrap();
        assert_eq!(dfs.read_file("/empty", None).unwrap().len(), 0);
        assert_eq!(dfs.status("/empty").unwrap().num_blocks, 1);
    }

    fn cache_entry(fp: u64, out: &str, bytes: u64, inputs: &[&str]) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            output_paths: vec![out.to_string()],
            bytes,
            memory_rows: None,
            input_paths: inputs.iter().map(|s| s.to_string()).collect(),
            last_used: 0,
            pinned: false,
        }
    }

    #[test]
    fn delete_hook_invalidates_and_cascades() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.cache_configure(1 << 20);
        dfs.write_file("/fact/p0", None, &[1u8; 64]).unwrap();
        dfs.write_file("/cache/a/rows.bin", None, &[2u8; 32])
            .unwrap();
        dfs.write_file("/cache/b/rows.bin", None, &[3u8; 32])
            .unwrap();
        dfs.cache_insert(cache_entry(0xa, "/cache/a/rows.bin", 32, &["/fact/p0"]))
            .unwrap();
        // Entry b consumed a's cached output (a chained stage).
        dfs.cache_insert(cache_entry(
            0xb,
            "/cache/b/rows.bin",
            32,
            &["/cache/a/rows.bin"],
        ))
        .unwrap();
        assert!(dfs.cache_lookup(0xa).is_some());
        // Rolling out the fact partition invalidates a, deletes its cached
        // file, and cascades to b which consumed it.
        dfs.delete("/fact/p0").unwrap();
        assert!(dfs.cache_lookup(0xa).is_none());
        assert!(dfs.cache_lookup(0xb).is_none());
        assert!(!dfs.exists("/cache/a/rows.bin"));
        assert!(!dfs.exists("/cache/b/rows.bin"));
        let s = dfs.cache_stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.bytes_stored, 0);
    }

    #[test]
    fn cache_eviction_deletes_backing_files() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.cache_configure(64);
        dfs.write_file("/cache/a/rows.bin", None, &[1u8; 40])
            .unwrap();
        dfs.cache_insert(cache_entry(0xa, "/cache/a/rows.bin", 40, &[]))
            .unwrap();
        dfs.write_file("/cache/b/rows.bin", None, &[2u8; 40])
            .unwrap();
        dfs.cache_insert(cache_entry(0xb, "/cache/b/rows.bin", 40, &[]))
            .unwrap();
        assert!(!dfs.exists("/cache/a/rows.bin"));
        assert!(dfs.exists("/cache/b/rows.bin"));
        assert_eq!(dfs.cache_stats().evictions, 1);
        assert_eq!(dfs.cache_stats().entries, 1);
    }

    #[test]
    fn range_reads() {
        let dfs = small_dfs(3, 1, 8);
        let data: Vec<u8> = (0..64u8).collect();
        dfs.write_file("/r", None, &data).unwrap();
        assert_eq!(&dfs.read_range("/r", 0, 8, None).unwrap()[..], &data[0..8]);
        assert_eq!(
            &dfs.read_range("/r", 5, 20, None).unwrap()[..],
            &data[5..25]
        );
        assert_eq!(
            &dfs.read_range("/r", 60, 4, None).unwrap()[..],
            &data[60..64]
        );
        assert!(dfs.read_range("/r", 60, 5, None).is_err());
    }

    #[test]
    fn replication_places_distinct_nodes() {
        let dfs = small_dfs(4, 3, 1024);
        dfs.write_file("/f", None, &[7u8; 100]).unwrap();
        let used = dfs.used_bytes_per_node();
        let holders = used.iter().filter(|&&b| b > 0).count();
        assert_eq!(holders, 3);
        assert_eq!(used.iter().sum::<u64>(), 300);
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let dfs = small_dfs(2, 3, 1024);
        assert_eq!(dfs.replication(), 2);
        dfs.write_file("/f", None, &[1u8; 10]).unwrap();
        assert_eq!(dfs.used_bytes_per_node().iter().sum::<u64>(), 20);
    }

    #[test]
    fn local_reads_are_counted_local() {
        let dfs = small_dfs(3, 3, 1024); // replication 3 = everywhere
        dfs.write_file("/f", None, &[1u8; 50]).unwrap();
        dfs.reset_metrics();
        dfs.read_file("/f", Some(NodeId(1))).unwrap();
        let m = dfs.metrics();
        assert_eq!(m.total_local_read(), 50);
        assert_eq!(m.total_remote_read(), 0);
        assert_eq!(m.locality_ratio(), 1.0);
    }

    #[test]
    fn remote_reads_are_counted_remote() {
        let dfs = small_dfs(4, 1, 1024);
        dfs.write_file("/f", None, &[1u8; 50]).unwrap();
        let holder = dfs.hosts("/f").unwrap()[0];
        let other = NodeId((holder.0 + 1) % 4);
        dfs.reset_metrics();
        dfs.read_file("/f", Some(other)).unwrap();
        let m = dfs.metrics();
        assert_eq!(m.total_remote_read(), 50);
        assert_eq!(m.total_local_read(), 0);
    }

    #[test]
    fn files_are_write_once_and_deletable() {
        let dfs = small_dfs(2, 1, 1024);
        dfs.write_file("/f", None, b"x").unwrap();
        assert!(dfs.write_file("/f", None, b"y").is_err());
        dfs.delete("/f").unwrap();
        assert!(!dfs.exists("/f"));
        assert_eq!(dfs.used_bytes_per_node().iter().sum::<u64>(), 0);
        dfs.write_file("/f", None, b"y").unwrap(); // path reusable after delete
    }

    #[test]
    fn colocating_policy_yields_common_hosts() {
        let dfs = Dfs::new(
            ClusterSpec::tiny(6),
            DfsOptions {
                block_size: 8,
                replication: 3,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let files: Vec<String> = (0..4).map(|i| format!("/fact/rg3/col{i}.col")).collect();
        for f in &files {
            dfs.write_file(f, Some("/fact/rg3".into()), &[0u8; 100])
                .unwrap();
        }
        let common = dfs.common_hosts(&files).unwrap();
        assert_eq!(common.len(), 3, "all column files share all 3 replicas");
    }

    #[test]
    fn default_policy_rarely_colocates_multiblock_column_files() {
        let dfs = Dfs::new(
            ClusterSpec::tiny(8),
            DfsOptions {
                block_size: 8,
                replication: 2,
                policy: Box::new(DefaultPlacement),
            },
        );
        let files: Vec<String> = (0..6).map(|i| format!("/fact/rg0/col{i}.col")).collect();
        for f in &files {
            dfs.write_file(f, Some("/fact/rg0".into()), &[0u8; 64])
                .unwrap();
        }
        let common = dfs.common_hosts(&files).unwrap();
        // 6 files × 8 blocks placed independently on 8 nodes: the chance of a
        // common host is negligible. (Deterministic: this asserts the actual
        // hash outcome, which is stable.)
        assert!(common.is_empty());
    }

    #[test]
    fn node_failure_falls_back_to_surviving_replica() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.write_file("/f", None, &[9u8; 30]).unwrap();
        let hosts = dfs.hosts("/f").unwrap();
        dfs.kill_node(hosts[0]);
        assert_eq!(&dfs.read_file("/f", None).unwrap()[..], &[9u8; 30]);
    }

    #[test]
    fn losing_all_replicas_is_an_error_until_rereplicated() {
        let dfs = small_dfs(4, 2, 1024);
        dfs.write_file("/f", None, &[9u8; 30]).unwrap();
        let hosts = dfs.hosts("/f").unwrap();
        assert_eq!(hosts.len(), 2);
        dfs.kill_node(hosts[0]);
        // Re-replicate from the survivor, then kill the survivor: the data
        // must still be readable from the new replica.
        let created = dfs.rereplicate().unwrap();
        assert!(created >= 1);
        dfs.kill_node(hosts[1]);
        assert_eq!(&dfs.read_file("/f", None).unwrap()[..], &[9u8; 30]);
    }

    #[test]
    fn data_is_lost_when_every_replica_dies() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.write_file("/f", None, &[9u8; 30]).unwrap();
        for h in dfs.hosts("/f").unwrap() {
            dfs.kill_node(h);
        }
        assert!(dfs.read_file("/f", None).is_err());
    }

    #[test]
    fn writes_after_failure_avoid_dead_nodes() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.kill_node(NodeId(0));
        dfs.write_file("/f", None, &[1u8; 10]).unwrap();
        let hosts = dfs.hosts("/f").unwrap();
        assert!(!hosts.contains(&NodeId(0)));
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn list_and_hosts() {
        let dfs = small_dfs(3, 2, 1024);
        dfs.write_file("/d/a", None, b"1").unwrap();
        dfs.write_file("/d/b", None, b"2").unwrap();
        dfs.write_file("/e/c", None, b"3").unwrap();
        assert_eq!(dfs.list("/d/"), vec!["/d/a", "/d/b"]);
        assert_eq!(dfs.hosts("/d/a").unwrap().len(), 2);
        assert!(dfs.hosts("/nope").is_err());
    }

    #[test]
    fn corruption_is_masked_by_checksum_fallback() {
        let dfs = small_dfs(3, 2, 1024);
        let data = vec![42u8; 100];
        dfs.write_file("/f", None, &data).unwrap();
        assert_eq!(dfs.inject_corruption(46, 1), 1);
        // Every node — including the one holding the rotten replica — still
        // reads the original bytes, because the checksum rejects the bad
        // copy and the read falls through to a clean sibling.
        dfs.reset_metrics();
        for n in 0..3 {
            assert_eq!(
                &dfs.read_file("/f", Some(NodeId(n))).unwrap()[..],
                &data[..]
            );
        }
        assert!(
            dfs.metrics().total_corrupt_reads() >= 1,
            "the victim's local read must have tripped verification"
        );
    }

    #[test]
    fn corruption_with_no_clean_sibling_is_unreadable() {
        let dfs = small_dfs(3, 2, 1024);
        let data = vec![7u8; 64];
        dfs.write_file("/f", None, &data).unwrap();
        assert_eq!(dfs.inject_corruption(46, 1), 1);
        // Identify the victim: its local read bumps the corrupt counter.
        let victim = (0..3)
            .find(|&n| {
                let before = dfs.metrics().total_corrupt_reads();
                let _ = dfs.read_file("/f", Some(NodeId(n)));
                dfs.metrics().total_corrupt_reads() > before
            })
            .expect("one node holds the corrupted replica");
        // Kill every clean holder; only the corrupt copy remains.
        for h in dfs.hosts("/f").unwrap() {
            if h.0 != victim {
                dfs.kill_node(h);
            }
        }
        let err = dfs.read_file("/f", Some(NodeId(victim))).unwrap_err();
        assert!(err.to_string().contains("unavailable or corrupt"), "{err}");
    }

    #[test]
    fn rereplicate_heals_corruption_without_propagating_it() {
        let dfs = small_dfs(4, 2, 1024);
        let data = vec![13u8; 200];
        dfs.write_file("/f", None, &data).unwrap();
        assert_eq!(dfs.inject_corruption(46, 1), 1);
        // The scrub drops the rotten replica and restores replication from a
        // verified source.
        assert!(dfs.rereplicate().unwrap() >= 1);
        dfs.reset_metrics();
        for n in 0..4 {
            assert_eq!(
                &dfs.read_file("/f", Some(NodeId(n))).unwrap()[..],
                &data[..]
            );
        }
        assert_eq!(
            dfs.metrics().total_corrupt_reads(),
            0,
            "no corrupt replica may survive a rereplication pass"
        );
    }

    #[test]
    fn node_liveness_is_observable() {
        let dfs = small_dfs(2, 1, 1024);
        assert!(dfs.is_node_alive(NodeId(0)));
        dfs.kill_node(NodeId(0));
        assert!(!dfs.is_node_alive(NodeId(0)));
        assert!(dfs.is_node_alive(NodeId(1)));
        assert!(!dfs.is_node_alive(NodeId(7)));
        dfs.restart_node(NodeId(0));
        assert!(dfs.is_node_alive(NodeId(0)));
    }

    #[test]
    fn streaming_writer_matches_one_shot() {
        let dfs = small_dfs(3, 1, 10);
        let mut w = dfs.create("/s", None, None).unwrap();
        for chunk in (0..50u8).collect::<Vec<_>>().chunks(7) {
            w.write_all(chunk);
        }
        assert_eq!(w.bytes_written(), 50);
        w.close().unwrap();
        let expect: Vec<u8> = (0..50u8).collect();
        assert_eq!(&dfs.read_file("/s", None).unwrap()[..], &expect[..]);
        assert_eq!(dfs.status("/s").unwrap().num_blocks, 5);
    }
}
