//! Measurement and extrapolation machinery shared by the figure binaries.

use clyde_common::obs::{profiles_json, QueryProfile};
use clyde_common::{Obs, Result};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions, IoSnapshot};
use clyde_hive::{Hive, JoinStrategy};
use clyde_mapred::{CostParams, Extrapolation, FaultPlan, JobProfile, MapTaskScaling};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::queries::StarQuery;
use clyde_ssb::{all_queries, reference_answer};
use clydesdale::{Clydesdale, Features};
use std::sync::Arc;

/// HDFS block size used for Hive-style split counting (the paper's era used
/// 128 MB blocks; stage 1 of Q2.1 ran 4,887 maps over ~558 GB ≈ 117 MB per
/// split).
pub const HIVE_SPLIT_BYTES: u64 = 128 << 20;

/// Split size the multithreading-off ablation packs multi-splits to; chosen
/// (calibrated) so flight-level rebuild counts land near the paper's
/// Figure 9 slowdowns.
pub const MT_OFF_SPLIT_BYTES: u64 = 384 << 20;

/// Hive-era intermediate files (SequenceFiles of Writable/Text rows) are
/// several times larger per row than this reproduction's compact row-binary
/// encoding; the paper's Q2.1 intermediates were ~200 GB for ~6 B rows.
/// Applied when extrapolating the bytes Hive stages write to and re-read
/// from the DFS between stages.
pub const HIVE_INTERMEDIATE_BLOAT: f64 = 6.0;

/// How the measurement run is configured.
#[derive(Debug, Clone)]
pub struct MeasurementConfig {
    /// Scale factor really executed (the extrapolation source).
    pub sf: f64,
    pub seed: u64,
    /// Worker count of the measurement cluster (node *shape* matches
    /// cluster A: 8 cores, 6 map slots, so thread counts measure correctly).
    pub workers: usize,
    /// CIF/RCFile rows per row group at measurement scale.
    pub rows_per_group: u64,
    /// Validate every engine answer against the reference executor.
    pub validate: bool,
}

impl Default for MeasurementConfig {
    fn default() -> MeasurementConfig {
        MeasurementConfig {
            sf: 0.02,
            seed: 46,
            workers: 4,
            rows_per_group: 8_000,
            validate: true,
        }
    }
}

/// The measurement cluster: cluster A's node shape, fewer workers.
pub fn measurement_cluster(workers: usize) -> ClusterSpec {
    let mut c = ClusterSpec::cluster_a();
    c.workers = workers;
    c.name = format!("measurement-{workers}");
    c
}

/// Ablation profiles for one query (Figure 9).
#[derive(Debug)]
pub struct AblationProfiles {
    pub no_columnar: JobProfile,
    pub no_block_iteration: JobProfile,
    pub no_multithreading: JobProfile,
    pub no_vectorized: JobProfile,
    pub no_zone_skipping: JobProfile,
}

/// Everything measured for one query.
#[derive(Debug)]
pub struct QueryMeasurement {
    pub query: StarQuery,
    pub clyde: JobProfile,
    /// Result row count (final-sort sizing).
    pub result_rows: usize,
    pub ablations: Option<AblationProfiles>,
    /// Per-stage profiles, present when Hive was measured.
    pub hive_mapjoin: Vec<JobProfile>,
    pub hive_repartition: Vec<JobProfile>,
    /// DFS traffic of the Clydesdale run alone, taken through a scoped
    /// snapshot so consecutive queries (and the Hive runs in between) don't
    /// bleed into each other's counters.
    pub io: IoSnapshot,
}

/// A full measurement pass.
#[derive(Debug)]
pub struct Measurements {
    pub config: MeasurementConfig,
    pub queries: Vec<QueryMeasurement>,
    /// Total RCFile bytes of the fact table at measurement scale (drives
    /// Hive stage-1 split counts, which Hadoop derives from *file* size,
    /// not from the bytes a projection reads).
    pub rc_fact_bytes: u64,
}

/// What to measure.
#[derive(Debug, Clone, Copy)]
pub struct MeasureWhat {
    pub hive: bool,
    pub ablations: bool,
}

/// Run the measurement pass: load SSB once, execute the requested systems
/// over all 13 queries, validating answers.
pub fn measure(config: &MeasurementConfig, what: MeasureWhat) -> Result<Measurements> {
    measure_with_obs(config, what, Obs::disabled())
}

/// [`measure`] with an observability hub attached: every Clydesdale and Hive
/// job records its history, spans, and counters there.
pub fn measure_with_obs(
    config: &MeasurementConfig,
    what: MeasureWhat,
    obs: Arc<Obs>,
) -> Result<Measurements> {
    let cluster = measurement_cluster(config.workers);
    let dfs = Dfs::new(
        cluster,
        DfsOptions {
            block_size: 8 << 20,
            replication: 3,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(config.sf, config.seed);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: config.rows_per_group,
            cif: true,
            rcfile: what.hive,
            text: false,
            cluster_by_date: true,
        },
    )?;
    let reference_data = if config.validate {
        Some(gen.gen_all())
    } else {
        None
    };

    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone()).with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache()?;
    let ablated: Vec<(Features, Clydesdale)> = if what.ablations {
        [
            Features::without_columnar(),
            Features::without_block_iteration(),
            Features::without_multithreading(),
            Features::without_vectorized(),
            Features::without_zone_skipping(),
        ]
        .into_iter()
        .map(|f| {
            let engine = Clydesdale::with_features(Arc::clone(&dfs), layout.clone(), f);
            (f, engine)
        })
        .collect()
    } else {
        Vec::new()
    };
    let hive_mj = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin)
        .with_obs(Arc::clone(&obs));
    let hive_rp = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::Repartition)
        .with_obs(Arc::clone(&obs));

    let mut queries = Vec::with_capacity(13);
    for query in all_queries() {
        let scope = dfs.io_scope();
        let result = clyde.query(&query)?;
        let io = scope.delta();
        if let Some(data) = &reference_data {
            let expect = reference_answer(data, &query)?;
            assert_eq!(result.rows, expect, "{}: clydesdale mismatch", query.id);
        }

        let ablations = if what.ablations {
            let mut profs = Vec::with_capacity(5);
            for (f, engine) in &ablated {
                let r = engine.query(&query)?;
                if let Some(data) = &reference_data {
                    let expect = reference_answer(data, &query)?;
                    assert_eq!(r.rows, expect, "{}: {} mismatch", query.id, f.label());
                }
                profs.push(r.profile);
            }
            let mut it = profs.into_iter();
            Some(AblationProfiles {
                no_columnar: it.next().expect("five ablations"),
                no_block_iteration: it.next().expect("five ablations"),
                no_multithreading: it.next().expect("five ablations"),
                no_vectorized: it.next().expect("five ablations"),
                no_zone_skipping: it.next().expect("five ablations"),
            })
        } else {
            None
        };

        let (hive_mapjoin, hive_repartition) = if what.hive {
            let mj = hive_mj.query(&query)?;
            let rp = hive_rp.query(&query)?;
            if let Some(data) = &reference_data {
                let expect = reference_answer(data, &query)?;
                assert_eq!(mj.rows, expect, "{}: mapjoin mismatch", query.id);
                assert_eq!(rp.rows, expect, "{}: repartition mismatch", query.id);
            }
            (
                mj.stages.into_iter().map(|s| s.profile).collect(),
                rp.stages.into_iter().map(|s| s.profile).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };

        queries.push(QueryMeasurement {
            result_rows: result.rows.len(),
            query,
            clyde: result.profile,
            ablations,
            hive_mapjoin,
            hive_repartition,
            io,
        });
    }

    let rc_fact_bytes = if what.hive {
        dfs.file_len(&format!(
            "{}.rc",
            layout.table_rc(clyde_ssb::schema::LINEORDER)
        ))?
    } else {
        0
    };

    Ok(Measurements {
        config: config.clone(),
        queries,
        rc_fact_bytes,
    })
}

/// Everything the `profile` binary (and CI) derives from one instrumented
/// 13-query pass: per-query explain-analyze profiles, the collapsed-stack
/// flamegraph, a calibration report, and the deterministic profile artifact
/// consumed by `clyde-profdiff`.
#[derive(Debug)]
pub struct ProfileSuite {
    pub profiles: Vec<QueryProfile>,
    /// Collapsed stacks (`frame;frame value` lines) over simulated time.
    pub flamegraph: String,
    /// Per-query model-vs-measured drift table (wall-bearing, human-facing).
    pub calibration: String,
    /// The `clyde-profiles` JSON bundle (simulated counters only —
    /// byte-identical across runs and host thread counts).
    pub json: String,
}

/// Run the 13-query suite with observability on and assemble the profile
/// artifacts.
pub fn profile_suite(config: &MeasurementConfig) -> Result<ProfileSuite> {
    let obs = Obs::enabled();
    measure_with_obs(
        config,
        MeasureWhat {
            hive: false,
            ablations: false,
        },
        Arc::clone(&obs),
    )?;
    let profiles = obs.with_query_profiles(|ps| ps.to_vec());
    Ok(ProfileSuite {
        flamegraph: obs.flamegraph(),
        calibration: crate::report::render_calibration(&profiles),
        json: profiles_json(&profiles),
        profiles,
    })
}

/// One cell of the CI fault matrix: a query executed under a named seeded
/// fault plan on a freshly loaded cluster, compared byte-for-byte against an
/// identically loaded fault-free run.
#[derive(Debug)]
pub struct FaultCell {
    pub plan: String,
    /// Result bytes are identical to the fault-free run's.
    pub identical: bool,
    pub rows: usize,
    /// Profile of the faulted run (recovery actions live here).
    pub profile: JobProfile,
    /// Simulated seconds of the faulted run, minus the fault-free run's —
    /// the cost-model price of recovery (slow nodes + wasted backups).
    pub overhead_s: f64,
    /// Checksum mismatches detected (and masked) during the faulted run.
    pub corrupt_reads: u64,
    /// Simulated seconds burnt by killed speculative-loser attempts.
    pub wasted_s: f64,
}

impl FaultCell {
    /// True when at least one recovery mechanism demonstrably fired.
    pub fn recovered_something(&self) -> bool {
        self.profile.failed_attempts > 0
            || self.profile.speculative_attempts > 0
            || !self.profile.dead_nodes.is_empty()
            || self.profile.rereplicated_blocks > 0
            || self.corrupt_reads > 0
    }
}

/// Run one query twice — fault-free and under the named plan — on two
/// identically loaded fresh clusters (fault plans mutate DFS state, so the
/// baseline must not share a cluster with the faulted run), and compare the
/// serialized results byte for byte.
pub fn run_fault_cell(
    config: &MeasurementConfig,
    query: &StarQuery,
    plan: &str,
    seed: u64,
) -> Result<FaultCell> {
    let faults = FaultPlan::named(plan, seed).unwrap_or_else(|| {
        panic!(
            "unknown fault plan `{plan}` (expected one of {:?})",
            clyde_mapred::fault::NAMES
        )
    });
    let run = |faults: Option<FaultPlan>| -> Result<(Vec<u8>, JobProfile, usize, f64, u64)> {
        let cluster = measurement_cluster(config.workers);
        let dfs = Dfs::new(
            cluster,
            DfsOptions {
                block_size: 8 << 20,
                replication: 3,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let layout = SsbLayout::default();
        loader::load(
            &dfs,
            SsbGen::new(config.sf, config.seed),
            &layout,
            &loader::LoadOpts {
                rows_per_group: config.rows_per_group,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )?;
        let mut clyde = Clydesdale::new(Arc::clone(&dfs), layout);
        if let Some(f) = faults {
            clyde = clyde.with_faults(Arc::new(f));
        }
        clyde.warm_dimension_cache()?;
        let scope = dfs.io_scope();
        let r = clyde.query(query)?;
        let corrupt = scope.delta().total_corrupt_reads();
        let total_s = r.total_s();
        Ok((
            clyde_common::rowcodec::write_rows(&r.rows),
            r.profile,
            r.rows.len(),
            total_s,
            corrupt,
        ))
    };
    let (clean_bytes, _, _, clean_s, _) = run(None)?;
    let (fault_bytes, profile, rows, fault_s, corrupt_reads) = run(Some(faults))?;
    let wasted_s = profile.killed_attempts.iter().map(|k| k.busy_s).sum();
    Ok(FaultCell {
        plan: plan.to_string(),
        identical: clean_bytes == fault_bytes,
        rows,
        profile,
        overhead_s: fault_s - clean_s,
        corrupt_reads,
        wasted_s,
    })
}

/// Per-query outcome of a figure binary's `--faults <seed>` pass.
#[derive(Debug)]
pub struct FaultImpact {
    pub query_id: String,
    /// Simulated seconds of the fault-free run at measurement scale.
    pub clean_s: f64,
    /// Simulated seconds under the `combined` fault plan.
    pub faulted_s: f64,
    pub failed_attempts: u32,
    pub speculative_attempts: u32,
    pub speculative_wins: u32,
    pub dead_nodes: usize,
    pub rereplicated_blocks: u64,
    /// Simulated seconds burnt by killed speculative-loser attempts.
    pub wasted_s: f64,
}

/// Run every SSB query fault-free and under the `combined` plan (two
/// identically loaded clusters), asserting the answers stay identical, and
/// report the per-query degradation the cost model attributes to recovery.
/// The faulted cluster degrades cumulatively — a node killed by one query's
/// plan stays dead for the next — which is exactly how a real cluster looks
/// to a sequence of jobs.
pub fn fault_impact(config: &MeasurementConfig, seed: u64) -> Result<Vec<FaultImpact>> {
    let build = || -> Result<(Arc<Dfs>, SsbLayout)> {
        let dfs = Dfs::new(
            measurement_cluster(config.workers),
            DfsOptions {
                block_size: 8 << 20,
                replication: 3,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let layout = SsbLayout::default();
        loader::load(
            &dfs,
            SsbGen::new(config.sf, config.seed),
            &layout,
            &loader::LoadOpts {
                rows_per_group: config.rows_per_group,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )?;
        Ok((dfs, layout))
    };
    let (clean_dfs, clean_layout) = build()?;
    let clean = Clydesdale::new(clean_dfs, clean_layout);
    clean.warm_dimension_cache()?;
    let (fault_dfs, fault_layout) = build()?;
    let plan = FaultPlan::named("combined", seed).expect("combined is a known plan");
    let faulted = Clydesdale::new(fault_dfs, fault_layout).with_faults(Arc::new(plan));
    faulted.warm_dimension_cache()?;

    let mut out = Vec::with_capacity(13);
    for query in all_queries() {
        let c = clean.query(&query)?;
        let f = faulted.query(&query)?;
        assert_eq!(
            c.rows, f.rows,
            "{}: recovery must be transparent under faults",
            query.id
        );
        let p = &f.profile;
        out.push(FaultImpact {
            query_id: query.id.clone(),
            clean_s: c.total_s(),
            faulted_s: f.total_s(),
            failed_attempts: p.failed_attempts,
            speculative_attempts: p.speculative_attempts,
            speculative_wins: p.speculative_wins,
            dead_nodes: p.dead_nodes.len(),
            rereplicated_blocks: p.rereplicated_blocks,
            wasted_s: p
                .killed_attempts
                .iter()
                .map(|k| k.busy_s)
                .sum::<f64>()
                .max(0.0),
        });
    }
    Ok(out)
}

/// Scales measured profiles to a target (cluster, SF) and prices them.
pub struct Extrapolator {
    pub target_cluster: ClusterSpec,
    pub target_sf: f64,
    pub measured_sf: f64,
    pub seed: u64,
    pub params: CostParams,
}

impl Extrapolator {
    pub fn new(target_cluster: ClusterSpec, target_sf: f64, m: &Measurements) -> Extrapolator {
        Extrapolator {
            target_cluster,
            target_sf,
            measured_sf: m.config.sf,
            seed: m.config.seed,
            params: CostParams::paper(),
        }
    }

    fn fact_factor(&self) -> f64 {
        let a = SsbGen::new(self.measured_sf, self.seed).num_lineorders() as f64;
        let b = SsbGen::new(self.target_sf, self.seed).num_lineorders() as f64;
        b / a
    }

    fn dim_cardinality(&self, sf: f64, table: &str) -> f64 {
        SsbGen::new(sf, self.seed).cardinality(table) as f64
    }

    /// Cardinality growth of the dimensions a query joins.
    fn dims_factor(&self, query: &StarQuery) -> f64 {
        let small: f64 = query
            .joins
            .iter()
            .map(|j| self.dim_cardinality(self.measured_sf, &j.dimension))
            .sum();
        let big: f64 = query
            .joins
            .iter()
            .map(|j| self.dim_cardinality(self.target_sf, &j.dimension))
            .sum();
        big / small.max(1.0)
    }

    fn dim_factor_for(&self, dimension: &str) -> f64 {
        self.dim_cardinality(self.target_sf, dimension)
            / self.dim_cardinality(self.measured_sf, dimension).max(1.0)
    }

    /// Dimension factor for a one-build-per-node profile: hash tables are
    /// built once per participating node, so total build work at the target
    /// is `target_nodes × target_dim_rows`, NOT a per-row scaling of the
    /// measured total (which came from a different node count).
    fn per_node_build_factor(&self, query: &StarQuery, profile: &JobProfile) -> f64 {
        let measured_build = profile.total_map_cost().build_rows.max(1) as f64;
        let target_dim_rows: f64 = query
            .joins
            .iter()
            .map(|j| self.dim_cardinality(self.target_sf, &j.dimension))
            .sum();
        self.target_cluster.num_workers() as f64 * target_dim_rows / measured_build
    }

    /// Simulated Clydesdale time for a query (Err = out of memory).
    pub fn clyde_time(&self, qm: &QueryMeasurement) -> Result<f64> {
        let e = self.extrapolate_one_per_node(&qm.query, &qm.clyde);
        let cost = e.price(&self.params, &self.target_cluster)?;
        let sort = qm.result_rows as f64 / self.params.sort_records_per_s + 0.5;
        Ok(cost.total_s() + sort)
    }

    /// Extrapolate a one-task-per-node profile (Clydesdale's job shape),
    /// with builds scaled per node.
    pub fn extrapolate_one_per_node(&self, query: &StarQuery, profile: &JobProfile) -> JobProfile {
        let mut e = profile.extrapolate(&Extrapolation {
            fact_factor: self.fact_factor(),
            dim_factor: self.per_node_build_factor(query, profile),
            cluster: self.target_cluster.clone(),
            map_tasks: MapTaskScaling::OnePerNode,
            map_concurrency: 1,
        });
        // Shared memory is one copy per node; it grows with dimension
        // cardinality only, not with node count.
        e.memory_shared = (profile.memory_shared as f64 * self.dims_factor(query)).round() as u64;
        e
    }

    /// Simulated time of one ablated Clydesdale variant.
    pub fn ablation_time(&self, qm: &QueryMeasurement, which: Ablation) -> Result<f64> {
        let ab = qm
            .ablations
            .as_ref()
            .expect("measurement did not include ablations");
        let e = match which {
            // These keep the one-task-per-node shape (per-node builds).
            Ablation::NoColumnar => self.extrapolate_one_per_node(&qm.query, &ab.no_columnar),
            Ablation::NoBlockIteration => {
                self.extrapolate_one_per_node(&qm.query, &ab.no_block_iteration)
            }
            Ablation::NoVectorized => self.extrapolate_one_per_node(&qm.query, &ab.no_vectorized),
            Ablation::NoZoneSkipping => {
                self.extrapolate_one_per_node(&qm.query, &ab.no_zone_skipping)
            }
            // MT off: normal split-granularity single-threaded tasks, every
            // task rebuilding its own tables, so total build work = (target
            // task count) × (target dimension rows).
            Ablation::NoMultithreading => {
                let profile = &ab.no_multithreading;
                let total = profile.total_map_cost();
                let measured_build = total.build_rows.max(1) as f64;
                let target_bytes =
                    (total.local_bytes + total.remote_bytes) as f64 * self.fact_factor();
                let target_tasks = (target_bytes / MT_OFF_SPLIT_BYTES as f64).max(1.0).ceil();
                let target_dim_rows: f64 = qm
                    .query
                    .joins
                    .iter()
                    .map(|j| self.dim_cardinality(self.target_sf, &j.dimension))
                    .sum();
                let mut e = profile.extrapolate(&Extrapolation {
                    fact_factor: self.fact_factor(),
                    dim_factor: target_tasks * target_dim_rows / measured_build,
                    cluster: self.target_cluster.clone(),
                    map_tasks: MapTaskScaling::BySplitBytes {
                        split_bytes: MT_OFF_SPLIT_BYTES,
                    },
                    map_concurrency: self.target_cluster.map_slots,
                });
                // Memory per slot is one table copy per *concurrent* task;
                // it grows with dimension cardinality, not with total task
                // count (the build dim-factor above intentionally includes
                // the task count, so memory must be reset here).
                e.memory_per_slot =
                    (profile.memory_per_slot as f64 * self.dims_factor(&qm.query)).round() as u64;
                e
            }
        };
        let cost = e.price(&self.params, &self.target_cluster)?;
        let sort = qm.result_rows as f64 / self.params.sort_records_per_s + 0.5;
        Ok(cost.total_s() + sort)
    }

    /// Simulated time of one Hive stage (join `i`, group-by, or order-by).
    /// `Err(OOM)` means that stage's hash table cannot fit (mapjoin).
    pub fn hive_stage_time(
        &self,
        m: &Measurements,
        qm: &QueryMeasurement,
        strategy: JoinStrategy,
        i: usize,
    ) -> Result<f64> {
        let stages = match strategy {
            JoinStrategy::MapJoin => &qm.hive_mapjoin,
            JoinStrategy::Repartition => &qm.hive_repartition,
        };
        assert!(!stages.is_empty(), "measurement did not include hive");
        let stage = &stages[i];
        let fact_f = self.fact_factor();
        let n_joins = qm.query.joins.len();
        // Apply the SequenceFile bloat to intermediate I/O: stages after the
        // first read a previous stage's output, and join + group-by stages
        // write one.
        let reads_intermediate = i >= 1;
        let writes_intermediate = i < n_joins + 1;
        let stage = bloat_stage_bytes(
            stage,
            if reads_intermediate {
                HIVE_INTERMEDIATE_BLOAT
            } else {
                1.0
            },
            if writes_intermediate {
                HIVE_INTERMEDIATE_BLOAT
            } else {
                1.0
            },
        );
        let (dim_factor, scaling) = if i < n_joins {
            let dim = &qm.query.joins[i].dimension;
            let scaling = if i == 0 {
                // Stage 1 splits derive from the fact table's *file* size:
                // column pruning does not reduce Hadoop's split count (the
                // paper could not decrease it either).
                let target_rc = m.rc_fact_bytes as f64 * fact_f;
                MapTaskScaling::Fixed((target_rc / HIVE_SPLIT_BYTES as f64).ceil() as u64)
            } else {
                MapTaskScaling::BySplitBytes {
                    split_bytes: HIVE_SPLIT_BYTES,
                }
            };
            (self.dim_factor_for(dim), scaling)
        } else {
            (
                1.0,
                MapTaskScaling::BySplitBytes {
                    split_bytes: HIVE_SPLIT_BYTES,
                },
            )
        };
        let e = stage.extrapolate(&Extrapolation {
            fact_factor: fact_f,
            dim_factor,
            cluster: self.target_cluster.clone(),
            map_tasks: scaling,
            map_concurrency: self.target_cluster.map_slots,
        });
        Ok(e.price(&self.params, &self.target_cluster)?.total_s())
    }

    /// Simulated Hive time for a query under one strategy. `Err(OOM)` means
    /// the plan cannot run on the target cluster (the paper's cluster-A
    /// mapjoin failures).
    pub fn hive_time(
        &self,
        m: &Measurements,
        qm: &QueryMeasurement,
        strategy: JoinStrategy,
    ) -> Result<f64> {
        let n_stages = match strategy {
            JoinStrategy::MapJoin => qm.hive_mapjoin.len(),
            JoinStrategy::Repartition => qm.hive_repartition.len(),
        };
        let mut total = 0.0;
        for i in 0..n_stages {
            total += self.hive_stage_time(m, qm, strategy, i)?;
        }
        Ok(total)
    }
}

/// Multiply a stage profile's scan-input bytes by `in_f` and its DFS-output
/// bytes by `out_f` (see [`HIVE_INTERMEDIATE_BLOAT`]).
fn bloat_stage_bytes(p: &JobProfile, in_f: f64, out_f: f64) -> JobProfile {
    let mut out = p.clone();
    let s = |v: u64, f: f64| ((v as f64) * f).round() as u64;
    for t in &mut out.map_tasks {
        t.cost.local_bytes = s(t.cost.local_bytes, in_f);
        t.cost.remote_bytes = s(t.cost.remote_bytes, in_f);
        t.cost.output_bytes = s(t.cost.output_bytes, out_f);
    }
    for t in &mut out.reduce_tasks {
        t.cost.output_bytes = s(t.cost.output_bytes, out_f);
    }
    out
}

/// Which feature is disabled (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    NoColumnar,
    NoBlockIteration,
    NoMultithreading,
    NoVectorized,
    NoZoneSkipping,
}

impl Ablation {
    pub fn label(&self) -> &'static str {
        match self {
            Ablation::NoColumnar => "columnar off",
            Ablation::NoBlockIteration => "block iteration off",
            Ablation::NoMultithreading => "multithreading off",
            Ablation::NoVectorized => "vectorized probe off",
            Ablation::NoZoneSkipping => "zone skipping off",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MeasurementConfig {
        MeasurementConfig {
            sf: 0.004,
            seed: 46,
            workers: 2,
            rows_per_group: 2_000,
            validate: true,
        }
    }

    #[test]
    fn measurement_and_extrapolation_reproduce_the_headline() {
        let m = measure(
            &tiny_config(),
            MeasureWhat {
                hive: true,
                ablations: false,
            },
        )
        .unwrap();
        assert_eq!(m.queries.len(), 13);
        let ex = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, &m);
        // The headline: Clydesdale beats both Hive plans on every query.
        for qm in &m.queries {
            let clyde = ex.clyde_time(qm).unwrap();
            assert!(clyde > 0.0);
            let rp = ex.hive_time(&m, qm, JoinStrategy::Repartition).unwrap();
            assert!(
                rp / clyde > 5.0,
                "{}: repartition speedup only {:.1}",
                qm.query.id,
                rp / clyde
            );
            match ex.hive_time(&m, qm, JoinStrategy::MapJoin) {
                Ok(mj) => assert!(
                    mj / clyde > 3.0,
                    "{}: mapjoin speedup only {:.1}",
                    qm.query.id,
                    mj / clyde
                ),
                Err(e) => assert!(e.is_oom()),
            }
        }
    }

    #[test]
    fn mapjoin_oom_set_matches_paper_on_cluster_a_only() {
        let m = measure(
            &tiny_config(),
            MeasureWhat {
                hive: true,
                ablations: false,
            },
        )
        .unwrap();
        let on_a = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, &m);
        let on_b = Extrapolator::new(ClusterSpec::cluster_b(), 1000.0, &m);
        let mut failed_a = Vec::new();
        for qm in &m.queries {
            if on_a.hive_time(&m, qm, JoinStrategy::MapJoin).is_err() {
                failed_a.push(qm.query.id.clone());
            }
            assert!(
                on_b.hive_time(&m, qm, JoinStrategy::MapJoin).is_ok(),
                "{} must complete on cluster B",
                qm.query.id
            );
        }
        assert_eq!(
            failed_a,
            crate::paper::cluster_a::MAPJOIN_OOM.to_vec(),
            "cluster-A OOM set must match the paper"
        );
    }
}
