//! Capacity planning with the cost model: how does one query's runtime
//! change as the cluster grows?
//!
//! Measures Q3.1 once at laptop scale, then extrapolates to SF1000 on
//! clusters of 4–64 nodes (cluster-A node shape). Reproduces the paper's
//! Section 6.4 observation in miniature: fixed per-node costs (hash-table
//! builds, scheduling overheads) stop scans from scaling linearly, which is
//! why cluster B's speedups over Hive are smaller than cluster A's.
//!
//! ```text
//! cargo run --example cluster_sizing --release
//! ```

use clyde_bench::harness::{
    measure, measurement_cluster, Extrapolator, MeasureWhat, MeasurementConfig,
};
use clyde_bench::report::{render_table, secs};

fn main() {
    let config = MeasurementConfig {
        sf: 0.01,
        ..MeasurementConfig::default()
    };
    eprintln!("measuring the 13 SSB queries at SF {} once...", config.sf);
    let m = measure(
        &config,
        MeasureWhat {
            hive: false,
            ablations: false,
        },
    )
    .expect("measurement failed");
    let q31 = m
        .queries
        .iter()
        .find(|q| q.query.id == "Q3.1")
        .expect("Q3.1 measured");

    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for workers in [4usize, 8, 16, 32, 64] {
        let ex = Extrapolator::new(measurement_cluster(workers), 1000.0, &m);
        let t = ex.clyde_time(q31).expect("Q3.1 fits in memory");
        let scaling = prev.map_or("-".to_string(), |p| format!("{:.2}x", p / t));
        prev = Some(t);
        rows.push(vec![
            workers.to_string(),
            secs(t),
            scaling,
            format!("{:.0}%", ideal_fraction(workers, t) * 100.0),
        ]);
    }

    println!("\nQ3.1 at SF1000 vs cluster size (cluster-A node shape):\n");
    println!(
        "{}",
        render_table(
            &[
                "workers",
                "simulated time",
                "vs previous",
                "parallel efficiency"
            ],
            &rows,
        )
    );
    println!("doubling the cluster stops halving the runtime once the per-node");
    println!("hash-table build (30M customer rows ≈ 200s single-threaded) dominates —");
    println!("the effect behind the paper's smaller speedups on cluster B.");
}

/// Efficiency vs perfect scaling from the 4-node baseline.
fn ideal_fraction(workers: usize, t: f64) -> f64 {
    // Filled in on the second call; the first row is 100% by definition.
    static BASE: std::sync::OnceLock<(usize, f64)> = std::sync::OnceLock::new();
    let (w0, t0) = *BASE.get_or_init(|| (workers, t));
    (t0 * w0 as f64) / (t * workers as f64)
}
