//! The extended aggregate surface (COUNT/MIN/MAX beyond the paper's SUMs):
//! all three engines and a hand-rolled sequential computation must agree.

use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_hive::{Hive, JoinStrategy};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::queries::{Aggregate, DimJoin, DimPred, OrderTerm, StarQuery};
use clyde_ssb::reference_answer;
use clydesdale::Clydesdale;
use std::collections::BTreeMap;
use std::sync::Arc;

fn date_join(aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: "date".into(),
        pk: "d_datekey".into(),
        fk: "lo_orderdate".into(),
        predicate: DimPred::True,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn yearly(id: &str, aggregate: Aggregate) -> StarQuery {
    StarQuery {
        id: id.into(),
        joins: vec![date_join(&["d_year"])],
        fact_preds: vec![],
        group_by: vec!["d_year".into()],
        aggregate,
        order_by: vec![(OrderTerm::Column("d_year".into()), false)],
        limit: None,
    }
}

#[test]
fn count_min_max_agree_across_all_engines() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.004, 46);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: true,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let data = gen.gen_all();

    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    clyde.warm_dimension_cache().unwrap();
    let mapjoin = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin);
    let repart = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::Repartition);

    // Hand-rolled per-year statistics over the raw generated rows.
    let years: BTreeMap<i64, i64> = data
        .date
        .iter()
        .map(|d| (d.at(0).as_i64().unwrap(), d.at(4).as_i64().unwrap()))
        .collect();
    let mut by_year: BTreeMap<i64, (i64, i64, i64)> = BTreeMap::new(); // (count, min, max)
    for lo in &data.lineorder {
        let year = years[&lo.at(5).as_i64().unwrap()];
        let rev = lo.at(12).as_i64().unwrap();
        let e = by_year.entry(year).or_insert((0, i64::MAX, i64::MIN));
        e.0 += 1;
        e.1 = e.1.min(rev);
        e.2 = e.2.max(rev);
    }

    let cases = [
        (yearly("count-orders", Aggregate::CountStar), 0usize),
        (
            yearly("min-revenue", Aggregate::MinColumn("lo_revenue".into())),
            1,
        ),
        (
            yearly("max-revenue", Aggregate::MaxColumn("lo_revenue".into())),
            2,
        ),
    ];
    for (q, which) in cases {
        let expect_ref = reference_answer(&data, &q).unwrap();
        // Manual expectation from the raw data.
        for r in &expect_ref {
            let year = r.at(0).as_i64().unwrap();
            let value = r.at(1).as_i64().unwrap();
            let (count, min, max) = by_year[&year];
            let manual = [count, min, max][which];
            assert_eq!(value, manual, "{}: year {year}", q.id);
        }
        // All engines agree with the reference.
        assert_eq!(clyde.query(&q).unwrap().rows, expect_ref, "{}", q.id);
        assert_eq!(mapjoin.query(&q).unwrap().rows, expect_ref, "{}", q.id);
        assert_eq!(repart.query(&q).unwrap().rows, expect_ref, "{}", q.id);
    }
}

#[test]
fn count_star_reads_no_measure_columns() {
    // count(*) needs only the join keys; the scan should not touch any
    // measure column.
    let q = yearly("count-io", Aggregate::CountStar);
    let cols = q.fact_columns();
    assert_eq!(cols, vec!["lo_orderdate"]);
    q.validate().unwrap();
}

#[test]
fn min_max_over_filtered_dimension() {
    // min/max compose with dimension predicates and fact predicates.
    let dfs = Dfs::new(
        ClusterSpec::tiny(2),
        DfsOptions {
            block_size: 1 << 20,
            replication: 1,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.003, 46);
    loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 1_500,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let q = StarQuery {
        id: "max-1994".into(),
        joins: vec![DimJoin {
            dimension: "date".into(),
            pk: "d_datekey".into(),
            fk: "lo_orderdate".into(),
            predicate: DimPred::I32Eq {
                column: "d_year".into(),
                value: 1994,
            },
            aux: vec![],
        }],
        fact_preds: vec![clyde_ssb::queries::FactPred::I32Lt {
            column: "lo_quantity".into(),
            value: 10,
        }],
        group_by: vec![],
        aggregate: Aggregate::MaxColumn("lo_extendedprice".into()),
        order_by: vec![],
        limit: None,
    };
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    let got = clyde.query(&q).unwrap().rows;
    let expect = reference_answer(&gen.gen_all(), &q).unwrap();
    assert_eq!(got, expect);
    assert_eq!(got.len(), 1);
    assert!(got[0].at(0).as_i64().unwrap() > 0);
}
