//! Aggregated profile views: collapsed-stack flamegraphs, per-node slot
//! utilization timelines, and shuffle volume matrices.
//!
//! Everything here is computed over *simulated* time, so each view is a pure
//! function of the recorded spans / job history and renders byte-identically
//! across runs and host thread counts. The collapsed-stack output is the
//! standard `frame;frame;frame value` format consumed by flamegraph.pl,
//! inferno, and speedscope; values are self-time microseconds.

use super::history::{JobHistory, TaskKind};
use super::span::{Span, SpanRecorder};
use std::collections::BTreeMap;

fn frame(name: &str) -> String {
    // ';' separates frames in the collapsed format — keep names unambiguous.
    name.replace(';', ":")
}

/// Export every recorded span as collapsed stacks with self-time values
/// (microseconds of simulated time). Lines are sorted and duplicate stacks
/// merged, so equal span sets always serialize identically.
pub fn collapsed(rec: &SpanRecorder) -> String {
    let spans = rec.spans();
    let procs: BTreeMap<u32, String> = rec.processes().into_iter().collect();
    // Span ids index the recorder's list, but be defensive and key by id.
    let by_id: BTreeMap<u32, &Span> = spans.iter().map(|s| (s.id.0, s)).collect();
    let mut child_us: BTreeMap<u32, u64> = BTreeMap::new();
    for s in &spans {
        if let Some(parent) = s.parent {
            *child_us.entry(parent.0).or_insert(0) += s.dur_us;
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for s in &spans {
        let self_us = s
            .dur_us
            .saturating_sub(*child_us.get(&s.id.0).unwrap_or(&0));
        if self_us == 0 {
            continue;
        }
        let mut frames = vec![frame(&s.name)];
        let mut cur = s.parent;
        while let Some(pid) = cur {
            match by_id.get(&pid.0) {
                Some(p) => {
                    frames.push(frame(&p.name));
                    cur = p.parent;
                }
                None => break,
            }
        }
        if let Some(pname) = procs.get(&s.pid) {
            frames.push(frame(pname));
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (stack, value) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

const SHADES: &[u8] = b" .:-=+*#%@";

fn shade(fraction: f64) -> char {
    let idx = (fraction.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx] as char
}

/// Per-node slot-occupancy timeline over the job's simulated makespan,
/// rendered as one density row per node (`' '` idle … `'@'` all slots busy),
/// followed by each node's busy-seconds and lane count.
pub fn utilization(h: &JobHistory, buckets: usize) -> String {
    use std::fmt::Write as _;
    let total = h.total_s();
    if total <= 0.0 || h.tasks.is_empty() || buckets == 0 {
        return String::from("(no tasks)\n");
    }
    // node -> (slots seen, lanes)
    let mut nodes: BTreeMap<usize, Vec<&super::history::TaskLane>> = BTreeMap::new();
    for t in &h.tasks {
        nodes.entry(t.node).or_default().push(t);
    }
    let bucket_s = total / buckets as f64;
    let mut out = String::new();
    writeln!(
        out,
        "slot occupancy over {total:.1}s simulated ({buckets} buckets of {bucket_s:.2}s)"
    )
    .expect("string write");
    for (node, lanes) in &nodes {
        let mut slots: Vec<(TaskKind, u32)> = lanes.iter().map(|t| (t.kind, t.slot)).collect();
        slots.sort();
        slots.dedup();
        let slot_count = slots.len().max(1);
        let mut row = String::with_capacity(buckets);
        let mut busy_s = 0.0;
        for t in lanes.iter() {
            busy_s += t.dur_s;
        }
        for b in 0..buckets {
            let t0 = b as f64 * bucket_s;
            let t1 = t0 + bucket_s;
            let mut overlap = 0.0;
            for t in lanes.iter() {
                overlap += (t.finish_s().min(t1) - t.start_s.max(t0)).max(0.0);
            }
            row.push(shade(overlap / (bucket_s * slot_count as f64)));
        }
        writeln!(
            out,
            "node {node:>3} |{row}| {busy_s:>8.1}s busy / {slot_count} slot(s), {} lane(s)",
            lanes.len()
        )
        .expect("string write");
    }
    out
}

/// Shuffle volume matrix: bytes flowing from each map node to each reduce
/// node. The engine's shuffle is all-to-all with uniform partitioning, so a
/// map lane's emitted bytes are spread evenly over the reduce lanes; the
/// matrix shows where the bytes come to rest per node pair.
pub fn shuffle_matrix(h: &JobHistory) -> String {
    use std::fmt::Write as _;
    let maps = h.lanes(TaskKind::Map);
    let reduces = h.lanes(TaskKind::Reduce);
    if maps.is_empty() || reduces.is_empty() || h.shuffle_bytes == 0 {
        return String::from("(no shuffle)\n");
    }
    let mut map_nodes: Vec<usize> = maps.iter().map(|t| t.node).collect();
    map_nodes.sort_unstable();
    map_nodes.dedup();
    let mut reduce_nodes: Vec<usize> = reduces.iter().map(|t| t.node).collect();
    reduce_nodes.sort_unstable();
    reduce_nodes.dedup();
    // cells[map_node_idx][reduce_node_idx] = bytes
    let mut cells = vec![vec![0u64; reduce_nodes.len()]; map_nodes.len()];
    let n_red = reduces.len() as u64;
    for m in &maps {
        let mi = map_nodes.binary_search(&m.node).expect("map node indexed");
        let share = m.emit_bytes / n_red;
        let mut rem = m.emit_bytes % n_red;
        for r in &reduces {
            let ri = reduce_nodes
                .binary_search(&r.node)
                .expect("reduce node indexed");
            let extra = if rem > 0 {
                rem -= 1;
                1
            } else {
                0
            };
            cells[mi][ri] += share + extra;
        }
    }
    let mut out = String::from("shuffle volume (bytes), map node -> reduce node\n");
    write!(out, "{:>10}", "").expect("string write");
    for rn in &reduce_nodes {
        write!(out, " {:>12}", format!("r{rn}")).expect("string write");
    }
    out.push('\n');
    for (mi, mn) in map_nodes.iter().enumerate() {
        write!(out, "{:>10}", format!("m{mn}")).expect("string write");
        for cell in &cells[mi] {
            write!(out, " {cell:>12}").expect("string write");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::history::TaskLane;
    use crate::obs::span::SpanKind;

    #[test]
    fn collapsed_attributes_self_time_and_sorts() {
        let r = SpanRecorder::enabled();
        let pid = r.new_process("job q2.1 #0");
        let root = r
            .span(None, SpanKind::Job, "job q2.1", pid, 0, 0, 100, Vec::new())
            .unwrap();
        let stage = r
            .span(
                Some(root),
                SpanKind::Stage,
                "map",
                pid,
                0,
                0,
                80,
                Vec::new(),
            )
            .unwrap();
        r.span(
            Some(stage),
            SpanKind::Phase,
            "probe",
            pid,
            1,
            0,
            50,
            Vec::new(),
        );
        let text = collapsed(&r);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "job q2.1 #0;job q2.1 20",
                "job q2.1 #0;job q2.1;map 30",
                "job q2.1 #0;job q2.1;map;probe 50",
            ]
        );
        // Same spans -> identical bytes.
        assert_eq!(text, collapsed(&r));
    }

    #[test]
    fn collapsed_handles_disabled_recorder() {
        assert_eq!(collapsed(&SpanRecorder::disabled()), "");
    }

    fn lane(kind: TaskKind, node: usize, slot: u32, start: f64, dur: f64) -> TaskLane {
        TaskLane {
            index: 0,
            kind,
            node,
            slot,
            start_s: start,
            dur_s: dur,
            local_bytes: 0,
            remote_bytes: 0,
            emit_records: 4,
            emit_bytes: 40,
            wall_ns: 0,
            speculative: false,
            phases: Vec::new(),
        }
    }

    #[test]
    fn utilization_renders_one_row_per_node() {
        let h = JobHistory {
            name: "j".into(),
            map_s: 10.0,
            tasks: vec![
                lane(TaskKind::Map, 0, 0, 0.0, 10.0),
                lane(TaskKind::Map, 1, 0, 0.0, 5.0),
            ],
            ..JobHistory::default()
        };
        let text = utilization(&h, 10);
        assert!(text.contains("node   0"));
        assert!(text.contains("node   1"));
        // Node 0 is busy the whole makespan; node 1 only half of it.
        let row0 = text.lines().find(|l| l.starts_with("node   0")).unwrap();
        assert!(row0.contains("@@@@@@@@@@"), "fully busy: {row0}");
        let row1 = text.lines().find(|l| l.starts_with("node   1")).unwrap();
        assert!(row1.contains("@@@@@     "), "half busy: {row1}");
        assert_eq!(text, utilization(&h, 10));
        assert_eq!(utilization(&JobHistory::default(), 10), "(no tasks)\n");
    }

    #[test]
    fn shuffle_matrix_conserves_bytes() {
        let h = JobHistory {
            name: "j".into(),
            map_s: 10.0,
            reduce_s: 2.0,
            shuffle_bytes: 80,
            tasks: vec![
                lane(TaskKind::Map, 0, 0, 0.0, 10.0),
                lane(TaskKind::Map, 1, 0, 0.0, 10.0),
                lane(TaskKind::Reduce, 0, 0, 10.0, 2.0),
                lane(TaskKind::Reduce, 1, 0, 10.0, 2.0),
            ],
            ..JobHistory::default()
        };
        let text = shuffle_matrix(&h);
        // 2 maps x 40 emitted bytes spread over 2 reduces = 20 per cell.
        let total: u64 = text
            .lines()
            .filter(|l| l.trim_start().starts_with('m'))
            .flat_map(|l| l.split_whitespace().skip(1))
            .map(|v| v.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 80);
        assert!(text.contains("r0") && text.contains("r1"));
        assert_eq!(shuffle_matrix(&JobHistory::default()), "(no shuffle)\n");
    }
}
